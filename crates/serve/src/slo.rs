//! Committed serving-SLO definitions (`results/SLO.json`).
//!
//! The paper's Y(φ) is a promise about delivered service under guarded
//! operation; `SLO.json` is the equivalent promise for the serving path
//! itself: for each endpoint, the latency threshold and the fraction of
//! requests that must meet it, plus the pinned open-loop request rate the
//! promise is made at (an SLO without its rate is meaningless — any server
//! meets any latency target at 0 rps).
//!
//! Both consumers share this module: `gsu-serve` loads the file at startup
//! to give each endpoint's sliding-window histogram its "good" bound (so
//! `/stats` can render attainment and burn rate), and `gsu-bench loadgen
//! --check` loads it to gate a measured run in CI.
//!
//! The parser is the same hand-rolled scanning used for the other committed
//! JSON artifacts (no serde under the workspace dependency policy); it is
//! strict about the schema tag and the numeric fields so a malformed file
//! fails the gate instead of silently passing.

use std::path::Path;

/// Default location of the committed SLO definitions, relative to the
/// workspace root the daemon runs from.
pub const SLO_PATH: &str = "results/SLO.json";

/// Schema tag expected at the top of the file.
pub const SLO_SCHEMA: &str = "gsu-slo-v1";

/// One endpoint's serving promise.
#[derive(Debug, Clone, PartialEq)]
pub struct SloDef {
    /// Endpoint path the promise covers (e.g. `/eval`).
    pub endpoint: String,
    /// Latency threshold in milliseconds.
    pub threshold_ms: f64,
    /// Fraction of requests that must complete within the threshold
    /// (e.g. `0.95`).
    pub target: f64,
}

/// The committed SLO document.
#[derive(Debug, Clone, PartialEq)]
pub struct SloDoc {
    /// Width of the sliding window attainment is judged over, in seconds.
    pub window_s: u64,
    /// Pinned open-loop arrival rate (requests/second) the promises are
    /// made at; `gsu-bench loadgen --check` drives this rate.
    pub rate_rps: f64,
    /// Per-endpoint promises.
    pub slos: Vec<SloDef>,
}

impl SloDoc {
    /// The promise covering `endpoint`, if any.
    pub fn for_endpoint(&self, endpoint: &str) -> Option<&SloDef> {
        self.slos.iter().find(|s| s.endpoint == endpoint)
    }
}

/// Parses an `SLO.json` document.
///
/// # Errors
///
/// A description of the first structural problem found (wrong schema tag,
/// missing or non-numeric field, no endpoints).
pub fn parse_slo(text: &str) -> Result<SloDoc, String> {
    if !text.contains(&format!("\"schema\":\"{SLO_SCHEMA}\"")) {
        return Err(format!("missing schema tag {SLO_SCHEMA:?}"));
    }
    let window_s = number_field(text, "window_s").ok_or("missing numeric field \"window_s\"")?;
    let rate_rps = number_field(text, "rate_rps").ok_or("missing numeric field \"rate_rps\"")?;
    if !(window_s >= 1.0 && window_s.fract() == 0.0) {
        return Err(format!(
            "window_s must be a positive integer, got {window_s}"
        ));
    }
    if !(rate_rps > 0.0 && rate_rps.is_finite()) {
        return Err(format!("rate_rps must be positive, got {rate_rps}"));
    }

    // Each per-endpoint object is delimited by braces inside the "slos"
    // array; the document has no nested objects below that level.
    let slos_body = text
        .split_once("\"slos\":[")
        .map(|(_, rest)| rest)
        .ok_or("missing \"slos\" array")?;
    let mut slos = Vec::new();
    for obj in objects(slos_body) {
        let endpoint =
            string_field(obj, "endpoint").ok_or("slo entry missing string field \"endpoint\"")?;
        let threshold_ms = number_field(obj, "threshold_ms")
            .ok_or("slo entry missing numeric field \"threshold_ms\"")?;
        let target =
            number_field(obj, "target").ok_or("slo entry missing numeric field \"target\"")?;
        if !(threshold_ms > 0.0 && threshold_ms.is_finite()) {
            return Err(format!("threshold_ms must be positive, got {threshold_ms}"));
        }
        if !(target > 0.0 && target < 1.0) {
            return Err(format!("target must be in (0, 1), got {target}"));
        }
        slos.push(SloDef {
            endpoint,
            threshold_ms,
            target,
        });
    }
    if slos.is_empty() {
        return Err("no slo entries".to_string());
    }
    Ok(SloDoc {
        window_s: window_s as u64,
        rate_rps,
        slos,
    })
}

/// Loads and parses `path`.
///
/// # Errors
///
/// Read failures and parse failures, with the path in the message.
pub fn load_slo(path: &Path) -> Result<SloDoc, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_slo(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Splits the top-level `{…}` objects out of an array body.
fn objects(body: &str) -> impl Iterator<Item = &str> {
    let end = body.find(']').unwrap_or(body.len());
    let body = &body[..end];
    body.split('{').skip(1).filter_map(|chunk| {
        let close = chunk.find('}')?;
        Some(&chunk[..close])
    })
}

/// Value of `"key":<number>` in `obj`, if present and parsable.
fn number_field(obj: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &obj[obj.find(&needle)? + needle.len()..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Value of `"key":"<string>"` in `obj`, if present (no escape handling:
/// endpoint paths are plain).
fn string_field(obj: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let rest = &obj[obj.find(&needle)? + needle.len()..];
    rest.split('"').next().map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{"schema":"gsu-slo-v1","window_s":60,"rate_rps":40,
  "slos":[
    {"endpoint":"/eval","threshold_ms":250,"target":0.9},
    {"endpoint":"/metrics","threshold_ms":100,"target":0.9}
  ]}"#;

    #[test]
    fn parses_the_committed_shape() {
        let doc = parse_slo(GOOD).unwrap();
        assert_eq!(doc.window_s, 60);
        assert_eq!(doc.rate_rps, 40.0);
        assert_eq!(doc.slos.len(), 2);
        let eval = doc.for_endpoint("/eval").unwrap();
        assert_eq!(eval.threshold_ms, 250.0);
        assert_eq!(eval.target, 0.9);
        assert!(doc.for_endpoint("/nope").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_slo("{}").is_err(), "schema tag required");
        assert!(
            parse_slo(&GOOD.replace("gsu-slo-v1", "gsu-slo-v0")).is_err(),
            "wrong schema version"
        );
        assert!(
            parse_slo(&GOOD.replace("\"target\":0.9", "\"target\":1.5")).is_err(),
            "target out of range"
        );
        assert!(
            parse_slo(&GOOD.replace("\"threshold_ms\":250", "\"threshold_ms\":-1")).is_err(),
            "negative threshold"
        );
        assert!(
            parse_slo(&GOOD.replace("\"rate_rps\":40", "\"rate_rps\":0")).is_err(),
            "zero rate"
        );
        let no_entries = r#"{"schema":"gsu-slo-v1","window_s":60,"rate_rps":40,"slos":[]}"#;
        assert!(parse_slo(no_entries).is_err(), "empty slos array");
    }
}
