//! Minimal hand-rolled HTTP/1.1 plumbing (pure `std`, no TLS).
//!
//! `gsu-serve` speaks exactly the subset Prometheus scrapers, `curl`, health
//! probes, and the `gsu-bench loadgen` client need: body-less `GET`s with an
//! explicit `Content-Length` on every response, and HTTP/1.1 persistent
//! connections — bounded by [`KEEPALIVE_MAX_REQUESTS`] per connection and an
//! [`KEEPALIVE_IDLE_TIMEOUT`] between requests so half-open clients cannot
//! pin a worker. No pipelining: a client must read each response before
//! sending the next request (which is how every client here behaves).
//! Anything fancier (chunked bodies, TLS) belongs to a reverse proxy in
//! front, per the workspace dependency policy (see DESIGN.md).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// How long a connection may sit idle before we give up on it; guards the
/// worker pool against half-open clients.
pub const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Requests served over a single keep-alive connection before the server
/// closes it — bounds how long one client can monopolise a pool worker.
pub const KEEPALIVE_MAX_REQUESTS: usize = 100;

/// How long a keep-alive connection may sit idle *between* requests before
/// the server closes it (deliberately shorter than [`IO_TIMEOUT`]: an idle
/// persistent connection holds a worker hostage, a mid-request stall is the
/// client's own latency problem).
pub const KEEPALIVE_IDLE_TIMEOUT: Duration = Duration::from_secs(2);

/// A parsed request line plus the connection-management headers (all other
/// headers are read and discarded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, …).
    pub method: String,
    /// Path component of the target, percent-decoded.
    pub path: String,
    /// Query pairs in order of appearance, percent-decoded.
    pub query: Vec<(String, String)>,
    /// Whether the client asked to keep the connection open: HTTP/1.1
    /// default unless `Connection: close`, HTTP/1.0 only with an explicit
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A response ready for [`write_response`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }
}

/// Reads and parses one request from `stream` (the header block only; the
/// endpoints are all body-less `GET`s). Returns `Ok(None)` when the client
/// closed the connection cleanly before sending anything — the normal end
/// of a keep-alive exchange, not an error.
///
/// `first` selects the read timeout: [`IO_TIMEOUT`] for the first request
/// on a connection, the shorter [`KEEPALIVE_IDLE_TIMEOUT`] for follow-ups.
///
/// # Errors
///
/// I/O failures, timeouts, and malformed request lines.
pub fn read_request(stream: &mut TcpStream, first: bool) -> std::io::Result<Option<Request>> {
    let read_timeout = if first {
        IO_TIMEOUT
    } else {
        KEEPALIVE_IDLE_TIMEOUT
    };
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(&mut *stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None); // clean EOF before a request line
    }
    let mut request = parse_request_line(&line).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("malformed request line: {line:?}"),
        )
    })?;
    // Drain headers until the blank line; only `Connection:` matters to the
    // routes we serve.
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    request.keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    request.keep_alive = true;
                }
            }
        }
    }
    Ok(Some(request))
}

/// Parses `"GET /path?query HTTP/1.1"`. The HTTP version sets the
/// keep-alive default (1.1: on, anything else: off); `Connection:` headers
/// override it in [`read_request`].
fn parse_request_line(line: &str) -> Option<Request> {
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let version = parts.next()?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Some(Request {
        method,
        path: percent_decode(path),
        query: parse_query(query),
        keep_alive: version.eq_ignore_ascii_case("HTTP/1.1"),
    })
}

/// Splits `a=1&b=2` into decoded pairs; keys without `=` get empty values.
fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Decodes `%XX` escapes and `+`-as-space; invalid escapes pass through
/// verbatim.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex(bytes.get(i + 1)), hex(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex(b: Option<&u8>) -> Option<u8> {
    (*b? as char).to_digit(16).map(|d| d as u8)
}

/// Writes `response` with an exact `Content-Length` and an explicit
/// `Connection: keep-alive` / `Connection: close` header (`close` when
/// `close` is true, so the client knows not to reuse the connection).
///
/// # Errors
///
/// Propagates write failures (a disconnected scraper, typically).
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    close: bool,
) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let connection = if close { "close" } else { "keep-alive" };
    // One buffered write: `write!` straight at the socket would emit each
    // format fragment as its own small segment.
    let payload = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{}",
        response.status,
        reason,
        response.content_type,
        response.body.len(),
        connection,
        response.body
    );
    stream.write_all(payload.as_bytes())?;
    stream.flush()
}

/// Blocking one-shot HTTP GET against `addr` (the smoke test and the
/// integration tests double as the reference client).
///
/// # Errors
///
/// Connection/read failures and responses without a parsable status line.
pub fn http_get(addr: SocketAddr, target: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: gsu-serve\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response without header block",
        )
    })?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "unparsable status line")
        })?;
    Ok((status, body.to_string()))
}

/// A persistent-connection HTTP client: issues sequential `GET`s over one
/// keep-alive connection, reconnecting transparently when the server closes
/// it (per-connection request cap, idle timeout) or the first write after a
/// long pause hits a dead socket. This is the transport `gsu-bench loadgen`
/// drives; [`http_get`] remains the one-shot (`Connection: close`) client.
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    keep_alive: bool,
    reader: Option<BufReader<TcpStream>>,
    connects: u64,
}

impl HttpClient {
    /// A client for `addr`. With `keep_alive` false every request opens a
    /// fresh connection and sends `Connection: close` — the mode loadgen
    /// uses to quantify the keep-alive win.
    pub fn new(addr: SocketAddr, keep_alive: bool) -> Self {
        HttpClient {
            addr,
            keep_alive,
            reader: None,
            connects: 0,
        }
    }

    /// Connections opened so far (1 for a fully-reused keep-alive session;
    /// grows as the server rotates the connection).
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Issues `GET target` and returns `(status, body)`.
    ///
    /// # Errors
    ///
    /// Connection failures and malformed responses. A failure on a *reused*
    /// connection is retried once on a fresh one (the server may have
    /// closed it between requests); a failure on a fresh connection is
    /// returned as-is.
    pub fn get(&mut self, target: &str) -> std::io::Result<(u16, String)> {
        let reused = self.reader.is_some();
        match self.try_get(target) {
            Err(_) if reused => {
                self.reader = None;
                self.try_get(target)
            }
            result => result,
        }
    }

    fn try_get(&mut self, target: &str) -> std::io::Result<(u16, String)> {
        if self.reader.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(IO_TIMEOUT))?;
            stream.set_write_timeout(Some(IO_TIMEOUT))?;
            stream.set_nodelay(true)?;
            self.connects += 1;
            self.reader = Some(BufReader::new(stream));
        }
        let result = self.exchange(target);
        if let Err(_) | Ok((_, _, true)) = &result {
            self.reader = None; // server said close, or the exchange died
        }
        result.map(|(status, body, _)| (status, body))
    }

    /// One request/response over the current connection; the third element
    /// reports whether the server asked to close it.
    fn exchange(&mut self, target: &str) -> std::io::Result<(u16, String, bool)> {
        let reader = self.reader.as_mut().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotConnected, "no connection")
        })?;
        let connection = if self.keep_alive {
            "keep-alive"
        } else {
            "close"
        };
        let request =
            format!("GET {target} HTTP/1.1\r\nHost: gsu-serve\r\nConnection: {connection}\r\n\r\n");
        reader.get_mut().write_all(request.as_bytes())?;
        reader.get_mut().flush()?;

        let mut status_line = String::new();
        if reader.read_line(&mut status_line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "unparsable status line")
            })?;

        let mut content_length: Option<usize> = None;
        let mut server_close = !self.keep_alive;
        loop {
            let mut header = String::new();
            let n = reader.read_line(&mut header)?;
            if n == 0 || header == "\r\n" || header == "\n" {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let name = name.trim();
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().ok();
                } else if name.eq_ignore_ascii_case("connection")
                    && value.eq_ignore_ascii_case("close")
                {
                    server_close = true;
                }
            }
        }
        let len = content_length.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "response without Content-Length",
            )
        })?;
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        Ok((
            status,
            String::from_utf8_lossy(&body).into_owned(),
            server_close,
        ))
    }
}

/// Formats an `f64` as a JSON number (`null` for non-finite values) —
/// mirrors the telemetry crate's internal helper.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parses_paths_and_queries() {
        let r = parse_request_line("GET /eval?phi=7000&x=a%20b HTTP/1.1\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/eval");
        assert_eq!(r.query_value("phi"), Some("7000"));
        assert_eq!(r.query_value("x"), Some("a b"));
        assert_eq!(r.query_value("missing"), None);
    }

    #[test]
    fn bare_paths_and_empty_queries() {
        let r = parse_request_line("GET / HTTP/1.0\n").unwrap();
        assert_eq!(r.path, "/");
        assert!(r.query.is_empty());
        let r = parse_request_line("GET /metrics? HTTP/1.1\n").unwrap();
        assert!(r.query.is_empty());
    }

    #[test]
    fn keep_alive_defaults_follow_the_http_version() {
        assert!(parse_request_line("GET / HTTP/1.1\r\n").unwrap().keep_alive);
        assert!(!parse_request_line("GET / HTTP/1.0\r\n").unwrap().keep_alive);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse_request_line("").is_none());
        assert!(parse_request_line("GET\r\n").is_none());
        assert!(parse_request_line("GET /x").is_none());
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Fb+c"), "a/b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("plain"), "plain");
    }

    #[test]
    fn json_helpers() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
    }
}
