//! Minimal hand-rolled HTTP/1.1 plumbing (pure `std`, no TLS).
//!
//! `gsu-serve` speaks exactly the subset Prometheus scrapers, `curl`, and
//! health probes need: one `GET` per connection, headers parsed and
//! discarded, `Connection: close` responses with an explicit
//! `Content-Length`. Anything fancier (keep-alive, chunked bodies, TLS)
//! belongs to a reverse proxy in front, per the workspace dependency policy
//! (see DESIGN.md).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// How long a connection may sit idle before we give up on it; guards the
/// worker pool against half-open clients.
pub const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A parsed request line (headers are read and discarded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, …).
    pub method: String,
    /// Path component of the target, percent-decoded.
    pub path: String,
    /// Query pairs in order of appearance, percent-decoded.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A response ready for [`write_response`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }
}

/// Reads and parses one request from `stream` (the header block only; the
/// endpoints are all body-less `GET`s).
///
/// # Errors
///
/// I/O failures, timeouts, and malformed request lines.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(&mut *stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    // Drain headers until the blank line; their contents are irrelevant to
    // the routes we serve.
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    parse_request_line(&line).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("malformed request line: {line:?}"),
        )
    })
}

/// Parses `"GET /path?query HTTP/1.1"`.
fn parse_request_line(line: &str) -> Option<Request> {
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    parts.next()?; // the HTTP version; any is accepted
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Some(Request {
        method,
        path: percent_decode(path),
        query: parse_query(query),
    })
}

/// Splits `a=1&b=2` into decoded pairs; keys without `=` get empty values.
fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Decodes `%XX` escapes and `+`-as-space; invalid escapes pass through
/// verbatim.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex(bytes.get(i + 1)), hex(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex(b: Option<&u8>) -> Option<u8> {
    (*b? as char).to_digit(16).map(|d| d as u8)
}

/// Writes `response` with `Connection: close` and an exact
/// `Content-Length`.
///
/// # Errors
///
/// Propagates write failures (a disconnected scraper, typically).
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        reason,
        response.content_type,
        response.body.len(),
        response.body
    )?;
    stream.flush()
}

/// Blocking one-shot HTTP GET against `addr` (the smoke test and the
/// integration tests double as the reference client).
///
/// # Errors
///
/// Connection/read failures and responses without a parsable status line.
pub fn http_get(addr: SocketAddr, target: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: gsu-serve\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response without header block",
        )
    })?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "unparsable status line")
        })?;
    Ok((status, body.to_string()))
}

/// Formats an `f64` as a JSON number (`null` for non-finite values) —
/// mirrors the telemetry crate's internal helper.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parses_paths_and_queries() {
        let r = parse_request_line("GET /eval?phi=7000&x=a%20b HTTP/1.1\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/eval");
        assert_eq!(r.query_value("phi"), Some("7000"));
        assert_eq!(r.query_value("x"), Some("a b"));
        assert_eq!(r.query_value("missing"), None);
    }

    #[test]
    fn bare_paths_and_empty_queries() {
        let r = parse_request_line("GET / HTTP/1.0\n").unwrap();
        assert_eq!(r.path, "/");
        assert!(r.query.is_empty());
        let r = parse_request_line("GET /metrics? HTTP/1.1\n").unwrap();
        assert!(r.query.is_empty());
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse_request_line("").is_none());
        assert!(parse_request_line("GET\r\n").is_none());
        assert!(parse_request_line("GET /x").is_none());
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Fb+c"), "a/b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("plain"), "plain");
    }

    #[test]
    fn json_helpers() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
    }
}
