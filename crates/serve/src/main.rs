//! `gsu-serve` binary: bind, install telemetry, serve until killed.
//!
//! ```text
//! gsu-serve [--addr HOST:PORT] [--workers N]      # serve (default 127.0.0.1:9184)
//! gsu-serve smoke [--workers N]                   # self-test: bind :0, probe every
//!                                                 # endpoint, shut down; exit 0/1
//! ```
//!
//! `GSU_LOG=info|debug` turns on the JSONL event log (stderr).

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::sync::Arc;

use gsu_serve::http::http_get;
use gsu_serve::{validate_exposition, Server, DEFAULT_WORKERS};
use telemetry::Collector;

const DEFAULT_ADDR: &str = "127.0.0.1:9184";

struct Args {
    addr: String,
    workers: usize,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: DEFAULT_ADDR.to_string(),
        workers: DEFAULT_WORKERS,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "smoke" => args.smoke = true,
            "--addr" => {
                args.addr = it.next().ok_or("--addr needs a HOST:PORT value")?;
            }
            "--workers" => {
                let raw = it.next().ok_or("--workers needs a count")?;
                args.workers = raw
                    .parse()
                    .map_err(|_| format!("unparsable --workers value: {raw}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: gsu-serve [smoke] [--addr HOST:PORT] [--workers N]".to_string());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    telemetry::init_log_from_env("GSU_LOG");
    let collector = Collector::install();

    if args.smoke {
        return smoke(collector, args.workers);
    }

    let server = match Server::bind(&args.addr, collector) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("gsu-serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    // Printed (and flushed) before serving so scripts binding :0 can scrape
    // the real port from the first stdout line.
    println!("gsu-serve listening on http://{}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    server.run(args.workers);
    ExitCode::SUCCESS
}

/// Binds an ephemeral port, probes every endpoint through the real TCP
/// stack, and shuts down. The CI smoke gate (scripts/check.sh) runs this
/// when `curl` is unavailable; it is also a quick manual sanity check.
fn smoke(collector: Arc<Collector>, workers: usize) -> ExitCode {
    let server = match Server::bind("127.0.0.1:0", collector) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("smoke: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.run(workers));

    // A Cell so both the `check` closure and the trace round-trip below can
    // bump the count without fighting over a mutable borrow.
    let failures = std::cell::Cell::new(0u32);
    let check = |target: &str, want_status: u16, probe: &dyn Fn(&str) -> Result<(), String>| {
        match http_get(addr, target) {
            Ok((status, body)) if status == want_status => match probe(&body) {
                Ok(()) => println!("smoke: {target} -> {status} ok"),
                Err(why) => {
                    eprintln!("smoke: {target} -> {status} but body invalid: {why}");
                    failures.set(failures.get() + 1);
                }
            },
            Ok((status, body)) => {
                eprintln!(
                    "smoke: {target} -> {status}, want {want_status}; body: {}",
                    body.lines().next().unwrap_or("")
                );
                failures.set(failures.get() + 1);
            }
            Err(e) => {
                eprintln!("smoke: {target} failed: {e}");
                failures.set(failures.get() + 1);
            }
        }
    };

    check("/healthz", 200, &|body| {
        (body.trim() == "ok")
            .then_some(())
            .ok_or_else(|| body.to_string())
    });
    check("/readyz", 200, &|_| Ok(()));
    check("/eval?phi=7000", 200, &|body| {
        (body.contains("\"y\":") && body.contains("\"trace_id\":\""))
            .then_some(())
            .ok_or_else(|| body.to_string())
    });
    check("/eval?phi=bogus", 400, &|body| {
        body.contains("\"param\":\"phi\"")
            .then_some(())
            .ok_or_else(|| body.to_string())
    });
    // Scenario routes, when a catalog is present next to the daemon (the CI
    // smoke runs from the workspace root, where `scenarios/` is committed).
    if std::path::Path::new(gsu_serve::SCENARIOS_DIR).is_dir() {
        check("/eval?scenario=paper-baseline&phi=5000", 200, &|body| {
            (body.contains("\"scenario\":\"paper-baseline\"") && body.contains("\"y\":"))
                .then_some(())
                .ok_or_else(|| body.to_string())
        });
        check("/eval?scenario=no-such&phi=5000", 400, &|body| {
            body.contains("\"param\":\"scenario\"")
                .then_some(())
                .ok_or_else(|| body.to_string())
        });
    }
    check("/metrics", 200, &|body| {
        validate_exposition(body)?;
        body.contains("gsu_build_info{")
            .then_some(())
            .ok_or_else(|| "gsu_build_info missing".to_string())?;
        // Earlier probes served requests, so both the cumulative (_alltime)
        // and the recent-window latency families must be present.
        body.contains("gsu_serve_request_us_alltime_p50 ")
            .then_some(())
            .ok_or_else(|| "gsu_serve_request_us_alltime_p50 missing".to_string())?;
        body.contains("gsu_serve_window_request_us_p99{route=")
            .then_some(())
            .ok_or_else(|| "gsu_serve_window_request_us_p99 missing".to_string())
    });
    check("/trace", 200, &|body| {
        body.starts_with("{\"traceEvents\":")
            .then_some(())
            .ok_or_else(|| "not a trace_event document".to_string())
    });
    check("/trace?id=zzz", 400, &|_| Ok(()));
    check("/stats", 200, &|body| {
        (body.contains("\"schema\":\"gsu-stats-v1\"") && body.contains("\"routes\":["))
            .then_some(())
            .ok_or_else(|| body.to_string())
    });
    check("/requests?n=1", 200, &|body| {
        (body.lines().count() <= 1)
            .then_some(())
            .ok_or_else(|| "more than one line with n=1".to_string())
    });
    check("/requests?n=bogus", 400, &|body| {
        body.contains("\"param\":\"n\"")
            .then_some(())
            .ok_or_else(|| body.to_string())
    });
    check("/version", 200, &|body| {
        body.contains("\"name\":\"gsu-serve\"")
            .then_some(())
            .ok_or_else(|| body.to_string())
    });
    check("/nope", 404, &|_| Ok(()));

    // Round-trip one request through the trace surfaces: the trace id the
    // /eval response returns must resolve to a span tree on /trace?id= and
    // to a wide-event line on /requests.
    match http_get(addr, "/eval?phi=5000") {
        Ok((200, body)) => {
            let trace_id = body
                .split("\"trace_id\":\"")
                .nth(1)
                .and_then(|rest| rest.split('"').next())
                .unwrap_or("")
                .to_string();
            if trace_id.is_empty() {
                eprintln!("smoke: /eval?phi=5000 response has no trace id: {body}");
                failures.set(failures.get() + 1);
            } else {
                check(&format!("/trace?id={trace_id}"), 200, &|body| {
                    (body.contains("serve.eval") && body.contains(&trace_id))
                        .then_some(())
                        .ok_or_else(|| format!("trace {trace_id} not resolved: {body}"))
                });
                check("/requests", 200, &|body| {
                    body.lines()
                        .any(|l| l.contains(&trace_id) && l.contains("\"solves\":["))
                        .then_some(())
                        .ok_or_else(|| format!("no wide event for {trace_id}"))
                });
            }
        }
        Ok((status, body)) => {
            eprintln!("smoke: /eval?phi=5000 -> {status}: {body}");
            failures.set(failures.get() + 1);
        }
        Err(e) => {
            eprintln!("smoke: /eval?phi=5000 failed: {e}");
            failures.set(failures.get() + 1);
        }
    }

    handle.shutdown();
    let _ = serving.join();
    if failures.get() == 0 {
        println!("smoke: all endpoints ok");
        ExitCode::SUCCESS
    } else {
        eprintln!("smoke: {} endpoint(s) failed", failures.get());
        ExitCode::FAILURE
    }
}
