//! `gsu-serve`: the live observability surface of the guarded-operation
//! performability pipeline.
//!
//! A pure-`std` HTTP/1.1 daemon on [`std::net::TcpListener`] whose
//! connection handlers run on workers from [`pool`] (the same work-stealing
//! pool the φ-sweeps use). Endpoints:
//!
//! | route               | body                                                        |
//! |---------------------|-------------------------------------------------------------|
//! | `GET /metrics`      | Prometheus text exposition of the live [`telemetry::Collector`] |
//! | `GET /healthz`      | liveness (`200 ok` whenever the accept loop is up)          |
//! | `GET /readyz`       | readiness (`200` once the `GsuAnalysis` is built)           |
//! | `GET /trace`        | the Chrome `trace_event` document collected so far          |
//! | `GET /trace?id=…`   | the same document restricted to one request's span tree     |
//! | `GET /eval?phi=…`   | a span-instrumented `Y(φ)` evaluation, as JSON              |
//! | `GET /eval?phi=…&mu_new=…` | the same with paper-parameter overrides, memoized per params fingerprint |
//! | `GET /eval?scenario=…&phi=…` | the same against a named `.gsu` catalog scenario   |
//! | `GET /requests`     | recent `/eval` wide-event lines (JSONL, newest last; `?n=` limits) |
//! | `GET /stats`        | windowed per-route latency quantiles and SLO attainment     |
//! | `GET /version`      | build identity (crate version, git hash, profile)           |
//! | `GET /`             | a plain-text endpoint index                                 |
//!
//! `/eval` makes the analysis itself a servable workload: every request runs
//! a real `GsuAnalysis::evaluate` under a `serve.eval` span **inside a fresh
//! trace context**, so traffic shows up in `/metrics` and `/trace` like any
//! other pipeline work — and every response carries its `trace_id`, which
//! `/trace?id=` resolves to exactly that request's span tree. Each `/eval`
//! additionally appends one canonical wide-event line (φ, parameter
//! fingerprint, per-phase wall breakdown, solver flight-recorder diags,
//! status) to a bounded in-memory ring served by `/requests`.
//!
//! Dependency policy: pure `std` + in-workspace crates, hand-rolled
//! HTTP/1.1, no TLS (see DESIGN.md, "Dependency policy").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod slo;

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use gsu_scenario::{ScenarioAnalysis, ScenarioSpec};
use performability::{GsuAnalysis, GsuParams, SweepPoint};
use telemetry::{ArgValue, Collector, FinishedSpan, Level, TraceContext, WindowHistogram};

use http::{fmt_f64, json_escape, Request, Response};

/// Default number of connection-handling pool workers.
pub const DEFAULT_WORKERS: usize = 4;

/// Default size of the `/eval` wide-event ring served by `/requests`;
/// override with the [`REQUEST_LOG_CAP_ENV`] environment variable.
pub const DEFAULT_REQUEST_LOG_CAP: usize = 256;

/// Environment variable overriding [`DEFAULT_REQUEST_LOG_CAP`] (read once at
/// [`Server::bind`] through the sanctioned `telemetry::env_usize` path).
pub const REQUEST_LOG_CAP_ENV: &str = "GSU_REQUEST_LOG_CAP";

/// Route families tracked by per-route sliding-window latency histograms;
/// any other path lands in [`OTHER_ROUTE`].
pub const WINDOW_ROUTES: &[&str] = &[
    "/",
    "/eval",
    "/healthz",
    "/metrics",
    "/readyz",
    "/requests",
    "/stats",
    "/trace",
    "/version",
];

/// Window-histogram family for paths outside [`WINDOW_ROUTES`].
pub const OTHER_ROUTE: &str = "other";

struct ServerState {
    analysis: GsuAnalysis,
    collector: Arc<Collector>,
    start: Instant,
    ready: AtomicBool,
    shutdown: AtomicBool,
    /// Rendered `gsu_lint_findings_total` exposition block, loaded once at
    /// startup from [`LINT_FINDINGS_PATH`]. Handlers must not touch the
    /// filesystem (blocking I/O off the accept path stalls every request
    /// queued behind the scrape), so the findings snapshot is taken before
    /// the listener starts serving; re-run `gsu-lint --emit-telemetry` and
    /// restart to refresh it.
    lint_findings: String,
    /// Capacity of the `/requests` ring (default, or `GSU_REQUEST_LOG_CAP`).
    request_log_cap: usize,
    /// Committed serving SLOs (`results/SLO.json`), when present.
    slo: Option<slo::SloDoc>,
    /// Per-route sliding-window latency histograms (µs); keys are
    /// [`WINDOW_ROUTES`] plus [`OTHER_ROUTE`]. Routes under an SLO get its
    /// threshold as the window's "good" bound, so `/stats` attainment is
    /// counted exactly per request.
    windows: BTreeMap<&'static str, WindowHistogram>,
    /// Connections accepted since start.
    accepted: AtomicU64,
    /// Connections handed to the pool but not yet picked up by a worker.
    queue_depth: AtomicU64,
    /// Connections currently inside a handler.
    inflight: AtomicU64,
    /// Hex fingerprint of the served [`GsuParams`], stamped into every
    /// wide-event line so a log mixes runs against different parameter
    /// assignments detectably.
    params_fingerprint: String,
    /// Bounded ring of canonical `/eval` wide-event JSONL lines.
    requests: Mutex<VecDeque<String>>,
    /// The `.gsu` scenario catalog served by `/eval?scenario=`, keyed by
    /// scenario name.
    scenarios: Mutex<BTreeMap<String, ScenarioSpec>>,
    /// Lazily built per-scenario analyses: scenario pipelines are expensive
    /// to construct (state-space generation), so each is built on first
    /// request and reused.
    scenario_cache: Mutex<HashMap<String, Arc<ScenarioAnalysis>>>,
    /// Lazily built paper analyses for `/eval` parameter overrides
    /// (`mu_new=`, `coverage=`, `theta=`), keyed by the params fingerprint —
    /// the same memoization pattern as `scenario_cache`, so repeated
    /// evaluations against one parameter assignment build its state spaces
    /// and ρ solve once.
    analysis_cache: Mutex<HashMap<String, Arc<GsuAnalysis>>>,
}

/// Default location of the findings file `gsu-lint --emit-telemetry`
/// writes, relative to the daemon's working directory.
pub const LINT_FINDINGS_PATH: &str = "results/lint-findings.jsonl";

/// Default location of the `.gsu` scenario catalog, relative to the
/// daemon's working directory. A missing directory just disables
/// `/eval?scenario=`; a present-but-broken catalog fails `bind`.
pub const SCENARIOS_DIR: &str = "scenarios";

/// A bound (but not yet running) observability daemon.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<ServerState>,
}

/// Remote control for a running [`Server`] — cloneable across threads.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and builds
    /// the paper-baseline [`GsuAnalysis`] that `/eval` serves. `collector`
    /// is the (already installed) sink that `/metrics` and `/trace` render.
    ///
    /// # Errors
    ///
    /// Socket errors, and analysis construction failures (surfaced as
    /// `io::Error` — the daemon is useless without its workload).
    pub fn bind(addr: &str, collector: Arc<Collector>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let params = GsuParams::paper_baseline();
        let analysis = GsuAnalysis::new(params)
            .map_err(|e| std::io::Error::other(format!("building GsuAnalysis: {e}")))?;
        // A missing SLO file just disables attainment reporting; a present
        // but malformed one fails bind (same policy as the scenario
        // catalog: never serve against a silently broken committed file).
        let slo_doc = if Path::new(slo::SLO_PATH).is_file() {
            Some(slo::load_slo(Path::new(slo::SLO_PATH)).map_err(std::io::Error::other)?)
        } else {
            None
        };
        let window_secs = slo_doc
            .as_ref()
            .map_or(telemetry::DEFAULT_WINDOW_SECS, |d| d.window_s);
        let windows = WINDOW_ROUTES
            .iter()
            .chain(std::iter::once(&OTHER_ROUTE))
            .map(|&route| {
                let bound_us = slo_doc
                    .as_ref()
                    .and_then(|d| d.for_endpoint(route))
                    .map(|s| s.threshold_ms * 1000.0);
                (route, WindowHistogram::new(window_secs, bound_us))
            })
            .collect();
        let request_log_cap = telemetry::env_usize(REQUEST_LOG_CAP_ENV, DEFAULT_REQUEST_LOG_CAP);
        let state = Arc::new(ServerState {
            analysis,
            collector,
            start: Instant::now(),
            ready: AtomicBool::new(true),
            shutdown: AtomicBool::new(false),
            lint_findings: lint_exposition(Path::new(LINT_FINDINGS_PATH)),
            request_log_cap,
            slo: slo_doc,
            windows,
            accepted: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            params_fingerprint: params_fingerprint(&params),
            requests: Mutex::new(VecDeque::with_capacity(request_log_cap.min(1024))),
            scenarios: Mutex::new(BTreeMap::new()),
            scenario_cache: Mutex::new(HashMap::new()),
            analysis_cache: Mutex::new(HashMap::new()),
        });
        let server = Server {
            listener,
            addr,
            state,
        };
        if Path::new(SCENARIOS_DIR).is_dir() {
            server.load_scenarios(Path::new(SCENARIOS_DIR))?;
        }
        Ok(server)
    }

    /// Loads (or replaces) the `.gsu` scenario catalog served by
    /// `/eval?scenario=`, returning how many scenarios are now available.
    /// [`Server::bind`] calls this automatically when [`SCENARIOS_DIR`]
    /// exists; tests point it at their own directories.
    ///
    /// # Errors
    ///
    /// Catalog I/O and parse errors (a deployment with a broken committed
    /// catalog should fail loudly, not serve a partial catalog).
    pub fn load_scenarios(&self, dir: &Path) -> std::io::Result<usize> {
        let specs = gsu_scenario::load_dir(dir)
            .map_err(|e| std::io::Error::other(format!("loading scenario catalog: {e}")))?;
        let count = specs.len();
        let mut scenarios = self
            .state
            .scenarios
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *scenarios = specs.into_iter().map(|s| (s.name.clone(), s)).collect();
        drop(scenarios);
        self.state
            .scenario_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        Ok(count)
    }

    /// The bound socket address (the real port, after `:0` resolution).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            state: self.state.clone(),
        }
    }

    /// Serves until [`ServerHandle::shutdown`] is called. Connections are
    /// handled by `workers` pool workers (`0` handles every connection
    /// inline on the accept thread — useful under `GSU_THREADS=1` test
    /// runs).
    pub fn run(self, workers: usize) {
        telemetry::log_event(
            Level::Info,
            "serve",
            "listening",
            &[
                ("addr", ArgValue::Str(self.addr.to_string())),
                ("workers", ArgValue::U64(workers as u64)),
            ],
        );
        let state = self.state;
        if workers == 0 {
            for conn in self.listener.incoming() {
                if state.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(stream) = conn {
                    state.accepted.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter("serve.connections.accepted", 1);
                    handle_connection(&state, stream, Instant::now());
                }
            }
            return;
        }
        // The accept thread occupies one pool slot (it only drains the queue
        // after shutdown), so size the scope at workers + 1 to get the
        // requested number of concurrent handlers.
        let workers_pool = pool::Pool::new(workers + 1);
        workers_pool.scope(|scope| {
            for conn in self.listener.incoming() {
                if state.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                state.accepted.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("serve.connections.accepted", 1);
                // Queue depth counts connections spawned onto the pool but
                // not yet picked up by a worker; the handler decrements it
                // as its first act, and the accept timestamp rides along so
                // that wait becomes the first request's queueing time.
                let depth = state.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
                telemetry::gauge("serve.queue_depth", depth as f64);
                let accepted_at = Instant::now();
                let state = state.clone();
                scope.spawn(move || {
                    let depth = state.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
                    telemetry::gauge("serve.queue_depth", depth as f64);
                    handle_connection(&state, stream, accepted_at);
                });
            }
        });
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ServerHandle {
    /// The server's socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the accept loop to stop, then pokes it with a throwaway
    /// connection so a blocked `accept` observes the flag.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
    }
}

/// Serves one connection: up to [`http::KEEPALIVE_MAX_REQUESTS`] sequential
/// requests when the client asks for keep-alive, one otherwise.
///
/// `accepted_at` is when the accept loop saw the connection; the gap to the
/// first `read_request` is the request's *queueing* time (waiting for a pool
/// worker), split out from service time in the wide events and added to the
/// latency the windowed histograms observe — a saturated pool must show up
/// in the served quantiles, not hide between accept and handler.
fn handle_connection(state: &ServerState, mut stream: TcpStream, accepted_at: Instant) {
    let inflight = state.inflight.fetch_add(1, Ordering::Relaxed) + 1;
    telemetry::gauge("serve.inflight", inflight as f64);
    // Responses are written as a handful of small segments; with Nagle on,
    // the tail segments wait out the peer's delayed ACK (~40ms) on every
    // keep-alive exchange, which would dwarf the real service time.
    let _ = stream.set_nodelay(true);
    let mut queue_us = accepted_at.elapsed().as_micros() as u64;
    for served in 0..http::KEEPALIVE_MAX_REQUESTS {
        // Every request runs under its own root trace context: spans
        // recorded while routing (the eval span and the solver spans inside
        // it) share the request's trace id, and the latency histogram
        // observed below captures that id as its exemplar.
        let ctx = TraceContext::new_root();
        let _attached = ctx.attach();
        let (request, path) = match http::read_request(&mut stream, served == 0) {
            Ok(Some(request)) => {
                let path = request.path.clone();
                (Some(request), path)
            }
            // Clean EOF: the client is done with the connection.
            Ok(None) => break,
            Err(e) => match e.kind() {
                // An idle keep-alive client timing out (or vanishing)
                // between requests is the normal end of a persistent
                // connection, not a reportable request.
                std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::TimedOut
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::UnexpectedEof
                    if served > 0 =>
                {
                    break
                }
                _ => (None, String::from("<unparsed>")),
            },
        };
        // The service clock starts once the request is in hand: on a
        // keep-alive connection the read above blocks for the client's
        // *next* request, and that idle gap is not service time.
        let start = Instant::now();
        // Close after this response unless the client asked to keep the
        // connection and the per-connection budget allows another request.
        let close = request.as_ref().is_none_or(|r| !r.keep_alive)
            || served + 1 == http::KEEPALIVE_MAX_REQUESTS;
        let response = match &request {
            Some(request) => route(state, request, queue_us),
            None => Response::text(400, "bad request: malformed request line\n"),
        };
        let write_ok = http::write_response(&mut stream, &response, close).is_ok();
        let service_us = start.elapsed().as_micros() as u64;
        let total_us = queue_us + service_us;
        telemetry::counter("serve.requests", 1);
        telemetry::counter(&format!("serve.status.{}", response.status), 1);
        telemetry::counter(&format!("http.responses.{}", response.status), 1);
        telemetry::observe("serve.request_us", total_us as f64);
        window_for(state, &path).record(total_us as f64);
        telemetry::log_event(
            Level::Info,
            "serve",
            "request",
            &[
                ("path", ArgValue::Str(path)),
                ("status", ArgValue::U64(u64::from(response.status))),
                ("dur_us", ArgValue::U64(total_us)),
                ("queue_us", ArgValue::U64(queue_us)),
            ],
        );
        if close || !write_ok || request.is_none() {
            break;
        }
        // Follow-up requests on this connection start service the moment
        // their bytes are read; only the first one waited for a worker.
        queue_us = 0;
    }
    let inflight = state.inflight.fetch_sub(1, Ordering::Relaxed) - 1;
    telemetry::gauge("serve.inflight", inflight as f64);
}

/// The sliding-window histogram tracking `path` (exact match on the known
/// route families, [`OTHER_ROUTE`] otherwise).
fn window_for<'a>(state: &'a ServerState, path: &str) -> &'a WindowHistogram {
    state
        .windows
        .get(path)
        .or_else(|| state.windows.get(OTHER_ROUTE))
        .unwrap_or_else(|| unreachable!("the `other` window family always exists"))
}

fn route(state: &ServerState, request: &Request, queue_us: u64) -> Response {
    if request.method != "GET" {
        return Response::text(405, "only GET is served\n");
    }
    match request.path.as_str() {
        "/healthz" => Response::text(200, "ok\n"),
        "/readyz" => {
            if state.ready.load(Ordering::Relaxed) {
                Response::text(200, "ready\n")
            } else {
                Response::text(503, "starting\n")
            }
        }
        "/metrics" => {
            telemetry::gauge("serve.uptime_s", state.start.elapsed().as_secs_f64());
            let mut body = state.collector.snapshot().prometheus_text();
            body.push_str(&build_info_exposition());
            body.push_str(&state.lint_findings);
            body.push_str(&window_exposition(state));
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body,
            }
        }
        "/trace" => match request.query_value("id") {
            None => Response::json(200, state.collector.chrome_trace_json()),
            Some(raw) => match telemetry::parse_trace_id(raw) {
                Some(id) => Response::json(200, state.collector.chrome_trace_json_for(id)),
                None => Response::json(
                    400,
                    format!(
                        "{{\"error\":\"unparsable trace id: {}\",\"param\":\"id\"}}",
                        json_escape(raw)
                    ),
                ),
            },
        },
        "/eval" => eval(state, request, queue_us),
        "/requests" => {
            // `?n=` limits the response to the newest n lines; bad values
            // get the same structured 400 shape as /eval's parameter
            // failures.
            let limit = match request.query_value("n") {
                None => None,
                Some(raw) => match raw.parse::<usize>() {
                    Ok(n) => Some(n),
                    Err(_) => {
                        return Response::json(
                            400,
                            format!(
                                "{{\"error\":\"unparsable n: {}\",\"param\":\"n\"}}",
                                json_escape(raw)
                            ),
                        )
                    }
                },
            };
            let ring = state.requests.lock().unwrap_or_else(|e| e.into_inner());
            let skip = limit.map_or(0, |n| ring.len().saturating_sub(n));
            let mut body = String::new();
            for line in ring.iter().skip(skip) {
                body.push_str(line);
                body.push('\n');
            }
            Response {
                status: 200,
                content_type: "application/x-ndjson",
                body,
            }
        }
        "/stats" => Response::json(200, stats_json(state)),
        "/version" => Response::json(200, version_json()),
        "/" => Response::text(
            200,
            "gsu-serve: guarded-operation performability observability daemon\n\
             GET /metrics    Prometheus exposition of the live collector\n\
             GET /healthz    liveness\n\
             GET /readyz     readiness\n\
             GET /trace      Chrome trace_event JSON (?id=HEX for one request)\n\
             GET /eval?phi=N evaluate the performability index Y(phi)\n\
             GET /eval?phi=N&mu_new=V&coverage=V&theta=V  the same with paper-parameter overrides (memoized per assignment)\n\
             GET /eval?scenario=NAME&phi=N  the same for a .gsu catalog scenario\n\
             GET /requests   recent /eval wide-event lines (JSONL; ?n=K for the newest K)\n\
             GET /stats      windowed latency quantiles and SLO attainment\n\
             GET /version    build identity\n",
        ),
        _ => Response::text(404, "no such route\n"),
    }
}

fn eval(state: &ServerState, request: &Request, queue_us: u64) -> Response {
    let started = Instant::now();
    let trace_id = TraceContext::current().trace_id;
    let scenario_name = request.query_value("scenario").map(str::to_string);
    // Every failure names the offending query parameter — `scenario` and
    // `phi` alike — so clients can distinguish a bad duration from a bad
    // scenario reference without parsing prose.
    let fail = |param: &str, phi: Option<f64>, msg: &str| -> Response {
        record_wide_event(
            state,
            trace_id,
            scenario_name.as_deref(),
            phi,
            400,
            None,
            started.elapsed(),
            queue_us,
            Some(msg),
        );
        Response::json(
            400,
            format!(
                "{{\"error\":\"{}\",\"param\":\"{param}\"}}",
                json_escape(msg)
            ),
        )
    };
    // Resolve the scenario reference first (a cheap catalog lookup) so an
    // unknown name 400s before any φ parsing or expensive model building.
    let scenario_spec = match scenario_name.as_deref() {
        None => None,
        Some(name) => match lookup_scenario(state, name) {
            Ok(spec) => Some(spec),
            Err(msg) => return fail("scenario", None, &msg),
        },
    };
    let Some(raw) = request.query_value("phi") else {
        return fail("phi", None, "missing query parameter phi");
    };
    let Ok(phi) = raw.parse::<f64>() else {
        return fail("phi", None, &format!("unparsable phi: {raw}"));
    };
    if !phi.is_finite() || phi < 0.0 {
        return fail("phi", Some(phi), &format!("phi out of domain: {phi}"));
    }
    // Paper-parameter overrides (`mu_new=`, `coverage=`, `theta=`): only
    // meaningful against the paper model, so they are rejected alongside a
    // scenario reference rather than silently ignored.
    let overridden = match paper_overrides(request) {
        Ok(params) => {
            if params.is_some() && scenario_spec.is_some() {
                return fail(
                    "scenario",
                    Some(phi),
                    "parameter overrides do not apply to catalog scenarios",
                );
            }
            params
        }
        Err((param, msg)) => return fail(param, Some(phi), &msg),
    };
    // The eval span (and every solver span nested inside it) must be dropped
    // — hence recorded — before the wide event reconstructs the request's
    // span tree from the collector.
    let result = {
        let mut span = telemetry::span("serve.eval");
        span.record("phi", phi);
        let result = match scenario_spec {
            None => match overridden {
                None => state
                    .analysis
                    .evaluate(phi)
                    .map_err(|e| ("phi", e.to_string())),
                Some(params) => paper_analysis(state, params)
                    .map_err(|msg| ("params", msg))
                    .and_then(|analysis| {
                        analysis.evaluate(phi).map_err(|e| ("phi", e.to_string()))
                    }),
            },
            Some(spec) => {
                span.record("scenario", spec.name.as_str());
                scenario_analysis(state, spec)
                    .map_err(|msg| ("scenario", msg))
                    .and_then(|analysis| analysis.evaluate(phi).map_err(|e| ("phi", e.to_string())))
            }
        };
        if let Ok(point) = &result {
            span.record("y", point.y);
        }
        result
    };
    match result {
        Ok(point) => {
            record_wide_event(
                state,
                trace_id,
                scenario_name.as_deref(),
                Some(phi),
                200,
                Some(point.y),
                started.elapsed(),
                queue_us,
                None,
            );
            let mut body = format!(
                "{{\"trace_id\":\"{}\"",
                telemetry::format_trace_id(trace_id)
            );
            if let Some(name) = scenario_name.as_deref() {
                let _ = write!(body, ",\"scenario\":\"{}\"", json_escape(name));
            }
            body.push(',');
            body.push_str(&sweep_point_json(&point)[1..]);
            Response::json(200, body)
        }
        Err((param, msg)) => fail(param, Some(phi), &msg),
    }
}

/// Finds a scenario by name in the loaded catalog.
fn lookup_scenario(state: &ServerState, name: &str) -> Result<ScenarioSpec, String> {
    let scenarios = state.scenarios.lock().unwrap_or_else(|e| e.into_inner());
    scenarios.get(name).cloned().ok_or_else(|| {
        if scenarios.is_empty() {
            format!("unknown scenario `{name}` (no catalog loaded)")
        } else {
            format!(
                "unknown scenario `{name}` (catalog has {}: {})",
                scenarios.len(),
                scenarios
                    .keys()
                    .map(String::as_str)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
    })
}

/// Parses the paper-parameter override query values (`mu_new=`, `coverage=`,
/// `theta=`) into a validated [`GsuParams`], or `None` when no override is
/// present. Validation failures name the offending query parameter.
fn paper_overrides(request: &Request) -> Result<Option<GsuParams>, (&'static str, String)> {
    let mut params = GsuParams::paper_baseline();
    let mut any = false;
    for (name, apply) in [
        (
            "mu_new",
            (|p: GsuParams, v: f64| p.with_mu_new(v)) as fn(GsuParams, f64) -> _,
        ),
        ("coverage", |p: GsuParams, v: f64| p.with_coverage(v)),
        ("theta", |p: GsuParams, v: f64| p.with_theta(v)),
    ] {
        let Some(raw) = request.query_value(name) else {
            continue;
        };
        let Ok(value) = raw.parse::<f64>() else {
            return Err((name, format!("unparsable {name}: {raw}")));
        };
        params = apply(params, value).map_err(|e| (name, e.to_string()))?;
        any = true;
    }
    Ok(any.then_some(params))
}

/// Returns the cached paper analysis for an overridden parameter assignment,
/// building (and caching) it on first use — keyed by the params fingerprint,
/// exactly like `scenario_analysis`. Construction runs inside the caller's
/// `serve.eval` span, so cold-start cost is visible in the request's trace.
fn paper_analysis(state: &ServerState, params: GsuParams) -> Result<Arc<GsuAnalysis>, String> {
    let fingerprint = params_fingerprint(&params);
    {
        let cache = state
            .analysis_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(hit) = cache.get(&fingerprint) {
            telemetry::counter("serve.analysis_cache.hits", 1);
            return Ok(hit.clone());
        }
    }
    // Built outside the lock, same as `scenario_analysis`: a slow cold start
    // must not block cached requests. A lost race just builds twice.
    telemetry::counter("serve.analysis_cache.misses", 1);
    let built = Arc::new(
        GsuAnalysis::new(params)
            .map_err(|e| format!("overridden analysis failed to build: {e}"))?,
    );
    let mut cache = state
        .analysis_cache
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    Ok(cache.entry(fingerprint).or_insert(built).clone())
}

/// Returns the cached analysis for a scenario, building (and caching) it on
/// first use. Construction runs inside the caller's `serve.eval` span, so
/// cold-start cost is visible in the request's trace.
fn scenario_analysis(
    state: &ServerState,
    spec: ScenarioSpec,
) -> Result<Arc<ScenarioAnalysis>, String> {
    let name = spec.name.clone();
    {
        let cache = state
            .scenario_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(hit) = cache.get(&name) {
            return Ok(hit.clone());
        }
    }
    // Built outside the lock: a slow cold start must not block requests for
    // other (already cached) scenarios. A lost race just builds twice.
    let built = Arc::new(
        ScenarioAnalysis::new(spec)
            .map_err(|e| format!("scenario `{name}` failed to build: {e}"))?,
    );
    let mut cache = state
        .scenario_cache
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    Ok(cache.entry(name).or_insert(built).clone())
}

/// Builds the canonical wide-event line for one `/eval` request — trace id,
/// parameter fingerprint, outcome, the queueing-time vs service-time split,
/// per-phase wall breakdown, and the flight-recorder diagnostics of every
/// solve the request ran — and appends it to the bounded `/requests` ring.
///
/// `wall` is pure *service* time (request read to response written);
/// `queue_us` is how long the connection waited for a pool worker before
/// service began (0 for keep-alive follow-ups). `wall_us` stays the service
/// wall for compatibility; `service_us` spells the same value explicitly
/// next to `queue_us`.
#[allow(clippy::too_many_arguments)]
fn record_wide_event(
    state: &ServerState,
    trace_id: u64,
    scenario: Option<&str>,
    phi: Option<f64>,
    status: u16,
    y: Option<f64>,
    wall: std::time::Duration,
    queue_us: u64,
    error: Option<&str>,
) {
    let spans = state.collector.trace_spans(trace_id);
    let mut line = format!(
        "{{\"schema\":\"gsu-wide-event-v1\",\"trace_id\":\"{}\",\"params\":\"{}\",\
         \"phi\":{},\"status\":{status},\"wall_us\":{},\"queue_us\":{queue_us},\
         \"service_us\":{}",
        telemetry::format_trace_id(trace_id),
        state.params_fingerprint,
        phi.map_or_else(|| "null".to_string(), fmt_f64),
        wall.as_micros(),
        wall.as_micros()
    );
    if let Some(scenario) = scenario {
        let _ = write!(line, ",\"scenario\":\"{}\"", json_escape(scenario));
    }
    if let Some(y) = y {
        let _ = write!(line, ",\"y\":{}", fmt_f64(y));
    }
    if let Some(error) = error {
        let _ = write!(line, ",\"error\":\"{}\"", json_escape(error));
    }
    let mut phases: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for s in &spans {
        let entry = phases.entry(s.name.as_str()).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += s.dur_us;
    }
    line.push_str(",\"phases\":{");
    for (i, (name, (count, total_us))) in phases.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(
            line,
            "\"{}\":{{\"count\":{count},\"total_us\":{total_us}}}",
            json_escape(name)
        );
    }
    line.push_str("},\"solves\":[");
    let mut first = true;
    for s in &spans {
        if let Some(solve) = solve_json(s) {
            if !first {
                line.push(',');
            }
            first = false;
            line.push_str(&solve);
        }
    }
    line.push_str("]}");

    let mut ring = state.requests.lock().unwrap_or_else(|e| e.into_inner());
    if state.request_log_cap == 0 {
        return; // ring disabled via GSU_REQUEST_LOG_CAP=0
    }
    while ring.len() >= state.request_log_cap {
        ring.pop_front();
    }
    ring.push_back(line);
}

/// Renders one span's `solve.*` flight-recorder args as a JSON object, or
/// `None` for spans that are not solves.
fn solve_json(span: &FinishedSpan) -> Option<String> {
    if !span.args.iter().any(|(k, _)| k == "solve.method") {
        return None;
    }
    let mut out = format!("{{\"span\":\"{}\"", json_escape(&span.name));
    for (key, value) in &span.args {
        let Some(field) = key.strip_prefix("solve.") else {
            continue;
        };
        let _ = write!(out, ",\"{}\":", json_escape(field));
        match value {
            ArgValue::F64(v) => out.push_str(&fmt_f64(*v)),
            ArgValue::U64(v) => out.push_str(&v.to_string()),
            ArgValue::Str(v) => {
                let _ = write!(out, "\"{}\"", json_escape(v));
            }
        }
    }
    out.push('}');
    Some(out)
}

/// Crate version baked into the binary.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Git hash baked in at build time via the `GSU_GIT_HASH` environment
/// variable (`scripts/check.sh` exports it); `"unknown"` otherwise.
pub fn git_hash() -> &'static str {
    option_env!("GSU_GIT_HASH").unwrap_or("unknown")
}

fn profile() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

/// The `gsu_build_info` exposition block: a constant-1 gauge whose labels
/// carry the build identity, the conventional Prometheus idiom for joining
/// metrics against versions.
pub fn build_info_exposition() -> String {
    format!(
        "# HELP gsu_build_info Build identity of the serving binary (value is always 1).\n\
         # TYPE gsu_build_info gauge\n\
         gsu_build_info{{version=\"{VERSION}\",git=\"{}\",profile=\"{}\"}} 1\n",
        git_hash(),
        profile()
    )
}

/// The `/version` response document.
pub fn version_json() -> String {
    format!(
        "{{\"name\":\"gsu-serve\",\"version\":\"{VERSION}\",\"git\":\"{}\",\"profile\":\"{}\"}}",
        git_hash(),
        profile()
    )
}

/// FNV-1a fingerprint of a parameter assignment, as 16 hex digits. Stable
/// across runs of the same build for the same parameters; any field change
/// changes the fingerprint.
pub fn params_fingerprint(params: &GsuParams) -> String {
    let repr = format!("{params:?}");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in repr.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Renders a [`SweepPoint`] as the `/eval` response document.
pub fn sweep_point_json(point: &SweepPoint) -> String {
    format!(
        "{{\"phi\":{},\"y\":{},\"e_w0\":{},\"e_w_phi\":{},\"y_s1\":{},\"y_s2\":{},\"gamma\":{}}}",
        fmt_f64(point.phi),
        fmt_f64(point.y),
        fmt_f64(point.e_w0),
        fmt_f64(point.e_w_phi),
        fmt_f64(point.y_s1),
        fmt_f64(point.y_s2),
        fmt_f64(point.gamma)
    )
}

/// Renders the `gsu_lint_findings_total` exposition block from the findings
/// file `gsu-lint --emit-telemetry` writes. A missing file means lint has
/// not run — the block is omitted entirely; a present-but-empty file yields
/// an explicit zero sample so dashboards can tell "clean" from "never ran".
pub fn lint_exposition(path: &Path) -> String {
    let Ok(text) = std::fs::read_to_string(path) else {
        return String::new();
    };
    let mut out = String::from(
        "# HELP gsu_lint_findings_total Unsuppressed gsu-lint findings by rule and severity.\n\
         # TYPE gsu_lint_findings_total gauge\n",
    );
    match gsu_lint::report::parse_jsonl(&text) {
        Ok(findings) if findings.is_empty() => {
            out.push_str("gsu_lint_findings_total 0\n");
        }
        Ok(findings) => {
            let mut counts: BTreeMap<(String, &'static str), usize> = BTreeMap::new();
            for f in &findings {
                *counts
                    .entry((f.rule.clone(), f.severity.as_str()))
                    .or_insert(0) += 1;
            }
            for ((rule, severity), n) in &counts {
                let _ = writeln!(
                    out,
                    "gsu_lint_findings_total{{rule=\"{rule}\",severity=\"{severity}\"}} {n}"
                );
            }
        }
        Err(e) => {
            // A tampered or truncated findings file must not take /metrics
            // down; surface the problem as a comment the validator skips.
            let _ = writeln!(out, "# gsu-lint findings file invalid: {e}");
        }
    }
    out
}

/// The recent-window exposition block appended to `/metrics`: per-route
/// latency quantiles over the sliding window, under `gsu_serve_window_*`
/// family names disjoint from the cumulative `*_alltime_*` gauges so
/// dashboards cannot mistake one for the other. Routes with no traffic in
/// the window are omitted; an entirely idle window contributes nothing.
fn window_exposition(state: &ServerState) -> String {
    let snaps: Vec<(&str, telemetry::WindowSnapshot)> = state
        .windows
        .iter()
        .map(|(route, w)| (*route, w.snapshot()))
        .filter(|(_, s)| s.count > 0)
        .collect();
    let Some((_, first)) = snaps.first() else {
        return String::new();
    };
    let mut out = format!(
        "# HELP gsu_serve_window_seconds Width of the sliding latency window.\n\
         # TYPE gsu_serve_window_seconds gauge\n\
         gsu_serve_window_seconds {}\n",
        first.window_secs
    );
    for (suffix, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)] {
        let _ = writeln!(out, "# TYPE gsu_serve_window_request_us_{suffix} gauge");
        for (route, snap) in &snaps {
            let _ = writeln!(
                out,
                "gsu_serve_window_request_us_{suffix}{{route=\"{route}\"}} {}",
                snap.quantile(q)
            );
        }
    }
    let _ = writeln!(out, "# TYPE gsu_serve_window_request_total gauge");
    for (route, snap) in &snaps {
        let _ = writeln!(
            out,
            "gsu_serve_window_request_total{{route=\"{route}\"}} {}",
            snap.count
        );
    }
    out
}

/// The `/stats` response: windowed per-route latency quantiles plus, when
/// `results/SLO.json` was loaded, per-endpoint SLO attainment and burn rate.
///
/// Burn rate is the error-budget spend ratio `(1 - attainment) / (1 -
/// target)`: 1.0 means failures arrive exactly as fast as the SLO tolerates,
/// above 1.0 the budget is burning down. Endpoints with no traffic in the
/// window report `null` attainment/burn and count as (vacuously) met.
fn stats_json(state: &ServerState) -> String {
    let window_secs = window_for(state, OTHER_ROUTE).window_secs();
    let mut out = format!(
        "{{\"schema\":\"gsu-stats-v1\",\"uptime_s\":{},\"window_s\":{window_secs},\
         \"connections\":{{\"accepted\":{},\"queue_depth\":{},\"inflight\":{}}},\"routes\":[",
        fmt_f64(state.start.elapsed().as_secs_f64()),
        state.accepted.load(Ordering::Relaxed),
        state.queue_depth.load(Ordering::Relaxed),
        state.inflight.load(Ordering::Relaxed),
    );
    let mut first = true;
    for (route, window) in &state.windows {
        let snap = window.snapshot();
        if snap.count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"route\":\"{route}\",\"count\":{},\"mean_us\":{},\"p50_us\":{},\
             \"p90_us\":{},\"p99_us\":{},\"p999_us\":{},\"max_us\":{}}}",
            snap.count,
            fmt_f64(snap.mean()),
            fmt_f64(snap.quantile(0.50)),
            fmt_f64(snap.quantile(0.90)),
            fmt_f64(snap.quantile(0.99)),
            fmt_f64(snap.quantile(0.999)),
            fmt_f64(snap.max),
        );
    }
    out.push_str("],\"slos\":[");
    if let Some(doc) = &state.slo {
        for (i, def) in doc.slos.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let snap = window_for(state, &def.endpoint).snapshot();
            let attainment = snap.attainment();
            let burn = attainment.map(|a| (1.0 - a) / (1.0 - def.target));
            let met = attainment.is_none_or(|a| a >= def.target);
            let _ = write!(
                out,
                "{{\"endpoint\":\"{}\",\"threshold_ms\":{},\"target\":{},\"count\":{},\
                 \"attainment\":{},\"burn_rate\":{},\"met\":{met}}}",
                json_escape(&def.endpoint),
                fmt_f64(def.threshold_ms),
                fmt_f64(def.target),
                snap.count,
                attainment.map_or_else(|| "null".to_string(), fmt_f64),
                burn.map_or_else(|| "null".to_string(), fmt_f64),
            );
        }
    }
    out.push_str("]}");
    out
}

/// Validates a Prometheus text exposition: every sample line must be
/// `name[{labels}] value` with a parsable value and a legal metric name.
/// Returns the number of samples.
///
/// # Errors
///
/// A description of the first malformed line.
pub fn validate_exposition(body: &str) -> Result<usize, String> {
    let mut samples = 0;
    for (i, line) in body.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator: {line:?}", i + 1))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("line {}: unparsable value: {line:?}", i + 1))?;
        let name = series.split('{').next().unwrap_or("");
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: illegal metric name: {line:?}", i + 1));
        }
        if series.contains('{') && !series.ends_with('}') {
            return Err(format!("line {}: unterminated labels: {line:?}", i + 1));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("exposition contains no samples".to_string());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_validator_accepts_and_rejects() {
        let good = "# TYPE gsu_x counter\ngsu_x 1\ngsu_h_bucket{le=\"+Inf\"} 4\ngsu_g 1.5e-3\n";
        assert_eq!(validate_exposition(good), Ok(3));
        assert!(validate_exposition("").is_err());
        assert!(validate_exposition("gsu_x one\n").is_err());
        assert!(validate_exposition("bad-name 1\n").is_err());
        assert!(validate_exposition("gsu_x{le=\"1\" 2\n").is_err());
    }

    #[test]
    fn lint_exposition_states() {
        let dir = std::env::temp_dir().join(format!("gsu-serve-lint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("lint-findings.jsonl");

        // Missing file: lint never ran, no block at all.
        assert_eq!(lint_exposition(&dir.join("absent.jsonl")), "");

        // Empty file: explicit zero sample.
        std::fs::write(&file, "").unwrap();
        let body = lint_exposition(&file);
        assert!(body.contains("gsu_lint_findings_total 0"), "{body}");
        assert!(validate_exposition(&body).is_ok(), "{body}");

        // Real findings aggregate by (rule, severity).
        let findings = [
            gsu_lint::Finding::new("no-unwrap", "crates/a/src/lib.rs:1", "m", "s"),
            gsu_lint::Finding::new("no-unwrap", "crates/b/src/lib.rs:2", "m", "s"),
            gsu_lint::Finding::new("san-place-bound", "model RMGd / place 'x'", "m", "s"),
        ];
        let doc: String = findings.iter().map(|f| f.to_jsonl() + "\n").collect();
        std::fs::write(&file, doc).unwrap();
        let body = lint_exposition(&file);
        assert!(
            body.contains("gsu_lint_findings_total{rule=\"no-unwrap\",severity=\"deny\"} 2"),
            "{body}"
        );
        assert!(
            body.contains("gsu_lint_findings_total{rule=\"san-place-bound\",severity=\"warn\"} 1"),
            "{body}"
        );
        assert!(validate_exposition(&body).is_ok(), "{body}");

        // A tampered file degrades to a comment, never a broken exposition.
        std::fs::write(&file, "{\"schema\":\"gsu-lint-v0\"}\n").unwrap();
        let body = lint_exposition(&file);
        assert!(body.contains("# gsu-lint findings file invalid"), "{body}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn build_info_and_version_carry_identity() {
        let block = build_info_exposition();
        assert!(validate_exposition(&block).is_ok(), "{block}");
        assert!(block.contains(&format!("version=\"{VERSION}\"")), "{block}");
        assert!(block.contains("profile=\""), "{block}");
        let json = version_json();
        assert!(json.contains("\"name\":\"gsu-serve\""), "{json}");
        assert!(
            json.contains(&format!("\"version\":\"{VERSION}\"")),
            "{json}"
        );
        assert!(json.contains("\"git\":"), "{json}");
    }

    #[test]
    fn params_fingerprint_is_stable_and_sensitive() {
        let base = GsuParams::paper_baseline();
        let fp = params_fingerprint(&base);
        assert_eq!(fp.len(), 16);
        assert!(fp.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(fp, params_fingerprint(&base));
        let tweaked = base.with_coverage(0.5).unwrap();
        assert_ne!(fp, params_fingerprint(&tweaked));
    }

    #[test]
    fn solve_json_renders_flight_recorder_args_only() {
        let now = std::time::Instant::now();
        let mut span = FinishedSpan {
            name: "markov.solve.uniformization".to_string(),
            start_us: 0,
            dur_us: 10,
            tid: 1,
            depth: 2,
            trace_id: 7,
            span_id: 3,
            parent_id: 2,
            args: vec![
                (
                    "solve.method".to_string(),
                    ArgValue::Str("uniformization".into()),
                ),
                ("solve.iterations".to_string(), ArgValue::U64(42)),
                (
                    "solve.uniformization_rate".to_string(),
                    ArgValue::F64(1224.0),
                ),
                ("states".to_string(), ArgValue::U64(9)),
            ],
        };
        let _ = now;
        let json = solve_json(&span).expect("a solve span");
        assert_eq!(
            json,
            "{\"span\":\"markov.solve.uniformization\",\"method\":\"uniformization\",\
             \"iterations\":42,\"uniformization_rate\":1224}"
        );
        // A span without solve.method is not a solve.
        span.args.retain(|(k, _)| k == "states");
        assert!(solve_json(&span).is_none());
    }

    #[test]
    fn sweep_point_json_shape() {
        // φ = 0 is the boundary case where Y is exactly 1 and γ exactly 1.
        let analysis = GsuAnalysis::new(GsuParams::paper_baseline()).unwrap();
        let point = analysis.evaluate(0.0).unwrap();
        let json = sweep_point_json(&point);
        assert!(json.starts_with("{\"phi\":0,\"y\":1,"), "{json}");
        assert!(json.ends_with("\"gamma\":1}"), "{json}");
        for key in ["e_w0", "e_w_phi", "y_s1", "y_s2"] {
            assert!(json.contains(&format!("\"{key}\":")), "{json}");
        }
    }
}
