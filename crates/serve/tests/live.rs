//! End-to-end test of the observability daemon: the acceptance criterion is
//! that `/metrics` answers in Prometheus text format with live counter and
//! histogram values **while a φ-sweep is running in another thread**.
//!
//! One `#[test]` because the telemetry sink is process-global.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gsu_serve::http::http_get;
use gsu_serve::{validate_exposition, Server};
use performability::{GsuAnalysis, GsuParams};
use telemetry::Collector;

#[test]
fn serves_live_metrics_during_a_sweep() {
    let collector = Collector::install();
    let server = Server::bind("127.0.0.1:0", collector.clone()).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.run(2));

    // A φ-sweep hammering the analysis from another thread for the whole
    // duration of the test, so every /metrics scrape observes a collector
    // that is being written to concurrently.
    let stop = Arc::new(AtomicBool::new(false));
    let sweep = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let analysis = GsuAnalysis::new(GsuParams::paper_baseline()).expect("analysis");
            let mut evaluations = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let points = analysis.sweep_grid(8).expect("sweep");
                evaluations += points.len() as u64;
            }
            evaluations
        })
    };

    // Liveness and readiness first.
    let (status, body) = http_get(addr, "/healthz").expect("/healthz");
    assert_eq!((status, body.trim()), (200, "ok"));
    let (status, _) = http_get(addr, "/readyz").expect("/readyz");
    assert_eq!(status, 200);

    // Scrape /metrics repeatedly while the sweep runs: always a valid
    // exposition, and the evaluation counter must be visibly moving.
    let mut last_evaluations = 0.0f64;
    let mut observed_increase = false;
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        let (status, body) = http_get(addr, "/metrics").expect("/metrics");
        assert_eq!(status, 200, "metrics body: {body}");
        let samples = validate_exposition(&body).expect("valid exposition");
        assert!(samples > 0);
        // Absent until the sweep thread's first evaluation lands — treat as 0
        // and keep polling rather than racing the thread start.
        let evaluations = prometheus_value(&body, "gsu_performability_evaluations").unwrap_or(0.0);
        assert!(
            evaluations >= last_evaluations,
            "counter went backwards: {last_evaluations} -> {evaluations}"
        );
        if evaluations > last_evaluations && last_evaluations > 0.0 {
            observed_increase = true;
            break;
        }
        last_evaluations = evaluations;
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        observed_increase,
        "never saw the evaluation counter move between scrapes"
    );

    // Criterion proven; release the CPU before the remaining endpoint checks
    // (this container has one core and the sweep thread hogs it).
    stop.store(true, Ordering::Relaxed);
    let swept = sweep.join().expect("sweep thread");
    assert!(swept > 0, "sweep thread never evaluated anything");

    // The exposition carries the request histogram of the scrapes themselves.
    let (_, body) = http_get(addr, "/metrics").expect("/metrics");
    assert!(
        body.contains("gsu_serve_request_us_bucket{le="),
        "request histogram missing: {body}"
    );
    assert!(body.contains("gsu_serve_request_us_count"));
    assert!(body.contains("gsu_serve_requests"));

    // /eval agrees with a direct evaluation of the same φ, and returns the
    // request's trace id.
    let (status, body) = http_get(addr, "/eval?phi=7000").expect("/eval");
    assert_eq!(status, 200, "eval body: {body}");
    let served_y = json_number(&body, "y").expect("y field");
    let direct = GsuAnalysis::new(GsuParams::paper_baseline())
        .unwrap()
        .evaluate(7000.0)
        .unwrap();
    assert!(
        (served_y - direct.y).abs() < 1e-12,
        "served y = {served_y}, direct y = {}",
        direct.y
    );
    let trace_id = json_string(&body, "trace_id").expect("trace_id field");
    assert_eq!(trace_id.len(), 16, "trace id is 16 hex digits: {trace_id}");

    // /trace?id= resolves that id to exactly this request's span tree: a
    // serve.eval root (parent_id 0) whose descendants all carry the same
    // trace id and link back to spans within the tree.
    let (status, doc) = http_get(addr, &format!("/trace?id={trace_id}")).expect("/trace?id=");
    assert_eq!(status, 200);
    let events = chrome_events(&doc);
    assert!(
        !events.is_empty(),
        "trace {trace_id} resolved nothing: {doc}"
    );
    assert!(
        events
            .iter()
            .all(|e| e.contains(&format!("\"trace_id\":\"{trace_id}\""))),
        "foreign trace id in {doc}"
    );
    let root = events
        .iter()
        .find(|e| e.contains("\"serve.eval\""))
        .expect("serve.eval span in the tree");
    assert!(
        root.contains("\"parent_id\":0"),
        "eval span is the trace root: {root}"
    );
    let span_ids: Vec<u64> = events
        .iter()
        .map(|e| json_number(e, "span_id").expect("span_id") as u64)
        .collect();
    for event in &events {
        let parent = json_number(event, "parent_id").expect("parent_id") as u64;
        assert!(
            parent == 0 || span_ids.contains(&parent),
            "span with dangling parent {parent}: {event}"
        );
    }
    // The solver flight recorder annotated at least one solve span.
    assert!(
        events.iter().any(|e| e.contains("\"solve.method\"")),
        "no solve diagnostics in {doc}"
    );

    // /requests carries the request's canonical wide-event line, with the
    // parameter fingerprint and per-solve iteration counts.
    let (status, log) = http_get(addr, "/requests").expect("/requests");
    assert_eq!(status, 200);
    let line = log
        .lines()
        .find(|l| l.contains(&trace_id))
        .expect("wide-event line for the eval");
    assert!(
        line.starts_with("{\"schema\":\"gsu-wide-event-v1\""),
        "{line}"
    );
    assert!(line.contains("\"phi\":7000"), "{line}");
    assert!(line.contains("\"status\":200"), "{line}");
    assert!(line.contains("\"params\":\""), "{line}");
    assert!(line.contains("\"phases\":{"), "{line}");
    assert!(
        line.contains("\"solves\":[{") && line.contains("\"iterations\":"),
        "wide event without solver iterations: {line}"
    );
    // The queueing-time vs service-time split is spelled out per event.
    assert!(line.contains("\"queue_us\":"), "{line}");
    assert!(line.contains("\"service_us\":"), "{line}");

    // /requests?n= limits to the newest lines; bad values 400 structurally.
    let (status, limited) = http_get(addr, "/requests?n=1").expect("/requests?n=1");
    assert_eq!(status, 200);
    assert_eq!(limited.lines().count(), 1, "{limited}");
    let (status, body) = http_get(addr, "/requests?n=-3").expect("/requests bad n");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"param\":\"n\""), "{body}");

    // /version and the build-info gauge agree on the crate version.
    let (status, version) = http_get(addr, "/version").expect("/version");
    assert_eq!(status, 200);
    assert!(version.contains("\"name\":\"gsu-serve\""), "{version}");
    let (_, metrics) = http_get(addr, "/metrics").expect("/metrics");
    assert!(metrics.contains("gsu_build_info{version=\""), "{metrics}");
    assert!(
        metrics.contains("gsu_http_responses_total{status=\"200\"}"),
        "{metrics}"
    );
    // Cumulative quantile gauges carry the _alltime marker; the windowed
    // families live under distinct gsu_serve_window_* names with a route
    // label, so the two cannot be confused.
    assert!(
        metrics.contains("gsu_serve_request_us_alltime_p50 "),
        "{metrics}"
    );
    assert!(
        !metrics.contains("gsu_serve_request_us_p50 "),
        "unmarked cumulative quantile gauge: {metrics}"
    );
    for suffix in ["p50", "p90", "p99", "p999"] {
        assert!(
            metrics.contains(&format!("gsu_serve_window_request_us_{suffix}{{route=")),
            "windowed {suffix} family missing: {metrics}"
        );
    }
    assert!(
        metrics.contains("gsu_serve_window_request_total{route=\"/metrics\"}"),
        "{metrics}"
    );
    assert!(metrics.contains("gsu_serve_inflight"), "{metrics}");
    assert!(
        metrics.contains("gsu_serve_connections_accepted"),
        "{metrics}"
    );

    // /stats renders the same windowed quantiles as JSON.
    let (status, stats) = http_get(addr, "/stats").expect("/stats");
    assert_eq!(status, 200);
    assert!(stats.starts_with("{\"schema\":\"gsu-stats-v1\""), "{stats}");
    assert!(stats.contains("\"connections\":{\"accepted\":"), "{stats}");
    assert!(stats.contains("\"route\":\"/metrics\""), "{stats}");
    assert!(stats.contains("\"p999_us\":"), "{stats}");

    // Error handling: missing, unparsable, and out-of-domain φ all produce
    // structured bodies naming the offending parameter.
    for target in ["/eval", "/eval?phi=bogus", "/eval?phi=-5"] {
        let (status, body) = http_get(addr, target).expect(target);
        assert_eq!(status, 400, "{target}: {body}");
        assert!(body.contains("\"error\":\""), "{target}: {body}");
        assert!(body.contains("\"param\":\"phi\""), "{target}: {body}");
    }
    let (status, _) = http_get(addr, "/trace?id=nothex!").expect("/trace bad id");
    assert_eq!(status, 400);

    // Trace document and 404 handling.
    let (status, body) = http_get(addr, "/trace").expect("/trace");
    assert_eq!(status, 200);
    assert!(body.starts_with("{\"traceEvents\":"), "trace: {body}");
    let (status, _) = http_get(addr, "/nope").expect("404 route");
    assert_eq!(status, 404);

    // Shut everything down and check the final numbers hang together.
    handle.shutdown();
    serving.join().expect("server thread");

    let snapshot = collector.snapshot();
    let requests = counter_of(&snapshot, "serve.requests");
    assert!(requests >= 10, "requests counted: {requests}");
    assert!(counter_of(&snapshot, "serve.status.200") >= 6);
    assert!(counter_of(&snapshot, "serve.status.400") >= 3);
    let evals = counter_of(&snapshot, "performability.evaluations");
    assert!(
        evals >= swept,
        "collector saw {evals} evaluations, sweep thread alone did {swept}"
    );
    telemetry::clear_sink();
}

fn counter_of(snapshot: &telemetry::Snapshot, name: &str) -> u64 {
    snapshot
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

/// First sample value of `metric` (label-less form) in a Prometheus body.
fn prometheus_value(body: &str, metric: &str) -> Option<f64> {
    body.lines().find_map(|line| {
        let rest = line.strip_prefix(metric)?;
        let rest = rest.strip_prefix(' ')?;
        rest.parse().ok()
    })
}

/// Value of a top-level `"key":number` pair in a flat JSON object.
fn json_number(body: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Value of a top-level `"key":"string"` pair in a flat JSON object.
fn json_string(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Splits a Chrome `trace_event` document into its individual event objects.
/// Good enough for assertions: every event the collector renders starts with
/// `{"name":"` and that byte sequence cannot occur inside one.
fn chrome_events(doc: &str) -> Vec<String> {
    doc.split("{\"name\":\"")
        .skip(1)
        .map(|chunk| format!("{{\"name\":\"{chunk}"))
        .collect()
}
