//! End-to-end test of `/eval` paper-parameter overrides: the overridden
//! analysis is memoized per params fingerprint (the `scenario_cache`
//! pattern), agrees with a direct evaluation, and validation failures name
//! the offending query parameter.

use gsu_serve::http::http_get;
use gsu_serve::Server;
use performability::{GsuAnalysis, GsuParams};
use telemetry::Collector;

#[test]
fn param_override_eval_is_memoized_and_validated() {
    let collector = Collector::install();
    let server = Server::bind("127.0.0.1:0", collector.clone()).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.run(2));

    // An overridden evaluation matches a direct pipeline run on the same
    // parameter assignment.
    let (status, body) = http_get(addr, "/eval?phi=2500&mu_new=0.00005").expect("override eval");
    assert_eq!(status, 200, "{body}");
    let served_y = json_number(&body, "y").expect("y field");
    let params = GsuParams::paper_baseline().with_mu_new(5e-5).unwrap();
    let direct = GsuAnalysis::new(params).unwrap().evaluate(2500.0).unwrap();
    assert!(
        (served_y - direct.y).abs() < 1e-12,
        "served y = {served_y}, direct y = {}",
        direct.y
    );

    // A second request against the same assignment hits the cache: the miss
    // counter stays at one while the hit counter moves.
    let (status, again) = http_get(addr, "/eval?phi=2500&mu_new=0.00005").expect("cached eval");
    assert_eq!(status, 200);
    assert_eq!(json_number(&again, "y"), Some(served_y));
    assert_eq!(
        collector.counter_value("serve.analysis_cache.misses"),
        Some(1)
    );
    assert_eq!(
        collector.counter_value("serve.analysis_cache.hits"),
        Some(1)
    );

    // A different assignment is a fresh build, not a stale cache hit.
    let (status, other) = http_get(addr, "/eval?phi=2500&mu_new=0.0002").expect("second override");
    assert_eq!(status, 200);
    assert_ne!(json_number(&other, "y"), Some(served_y));
    assert_eq!(
        collector.counter_value("serve.analysis_cache.misses"),
        Some(2)
    );

    // Without overrides the prebuilt baseline analysis answers — the cache
    // is never consulted.
    let (status, baseline) = http_get(addr, "/eval?phi=2500").expect("baseline eval");
    assert_eq!(status, 200, "{baseline}");
    assert_eq!(
        collector.counter_value("serve.analysis_cache.misses"),
        Some(2)
    );

    // Validation failures name the offending parameter.
    for (target, param) in [
        ("/eval?phi=2500&mu_new=bogus", "mu_new"),
        ("/eval?phi=2500&coverage=1.5", "coverage"),
        ("/eval?phi=2500&theta=-1", "theta"),
        ("/eval?phi=2500&scenario=tiny&mu_new=0.0001", "scenario"),
    ] {
        let (status, body) = http_get(addr, target).expect(target);
        assert_eq!(status, 400, "{target}: {body}");
        assert!(
            body.contains(&format!("\"param\":\"{param}\"")),
            "{target}: {body}"
        );
    }

    handle.shutdown();
    serving.join().expect("server thread");
    telemetry::clear_sink();
}

/// Value of a top-level `"key":number` pair in a flat JSON object.
fn json_number(body: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}
