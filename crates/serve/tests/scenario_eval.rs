//! End-to-end test of `/eval?scenario=`: catalog loading, lazy analysis
//! caching, agreement with a direct evaluation, and structured 400s that
//! name the offending query parameter (`scenario` vs `phi`).

use gsu_serve::http::http_get;
use gsu_serve::Server;
use telemetry::Collector;

const TINY: &str = "\
scenario \"tiny\"
theta 50
lambda 40
mu_new 0.02
mu_old 0.0000001
coverage 0.95
p_ext 0.1
at exp 200
ckpt exp 200
phi_grid 0 25 50
sim_reps 100
sim_seed 5
";

#[test]
fn scenario_eval_round_trip_and_structured_errors() {
    let dir = std::env::temp_dir().join(format!("gsu-serve-scenarios-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("tiny.gsu"), TINY).unwrap();

    let collector = Collector::install();
    let server = Server::bind("127.0.0.1:0", collector).expect("bind ephemeral port");
    assert_eq!(server.load_scenarios(&dir).expect("load catalog"), 1);
    let addr = server.local_addr();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.run(2));

    // A scenario evaluation answers with the scenario name stamped into the
    // body and a Y value matching a direct evaluation of the same spec.
    let (status, body) = http_get(addr, "/eval?scenario=tiny&phi=25").expect("/eval scenario");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"scenario\":\"tiny\""), "{body}");
    let served_y = json_number(&body, "y").expect("y field");
    let spec = gsu_scenario::parse(TINY).unwrap();
    let direct = gsu_scenario::ScenarioAnalysis::new(spec)
        .unwrap()
        .evaluate(25.0)
        .unwrap();
    assert!(
        (served_y - direct.y).abs() < 1e-12,
        "served y = {served_y}, direct y = {}",
        direct.y
    );

    // A second request hits the cached analysis and must agree exactly.
    let (status, again) = http_get(addr, "/eval?scenario=tiny&phi=25").expect("cached eval");
    assert_eq!(status, 200);
    assert_eq!(json_number(&again, "y"), Some(served_y));

    // Unknown scenario names, and φ failures on a valid scenario, must each
    // name their own parameter in the structured 400 body.
    let (status, body) = http_get(addr, "/eval?scenario=nope&phi=25").expect("unknown scenario");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"param\":\"scenario\""), "{body}");
    assert!(body.contains("unknown scenario `nope`"), "{body}");
    assert!(
        body.contains("tiny"),
        "error should list the catalog: {body}"
    );
    for target in [
        "/eval?scenario=tiny",
        "/eval?scenario=tiny&phi=bogus",
        "/eval?scenario=tiny&phi=-3",
    ] {
        let (status, body) = http_get(addr, target).expect(target);
        assert_eq!(status, 400, "{target}: {body}");
        assert!(body.contains("\"param\":\"phi\""), "{target}: {body}");
    }
    // An unknown scenario outranks a bad φ: the reference is checked first.
    let (status, body) = http_get(addr, "/eval?scenario=nope&phi=bogus").expect("both bad");
    assert_eq!(status, 400);
    assert!(body.contains("\"param\":\"scenario\""), "{body}");

    // The wide-event log carries the scenario name on success and failure.
    let (status, log) = http_get(addr, "/requests").expect("/requests");
    assert_eq!(status, 200);
    assert!(
        log.lines()
            .any(|l| l.contains("\"scenario\":\"tiny\"") && l.contains("\"status\":200")),
        "{log}"
    );
    assert!(
        log.lines()
            .any(|l| l.contains("\"scenario\":\"nope\"") && l.contains("\"status\":400")),
        "{log}"
    );

    handle.shutdown();
    serving.join().expect("server thread");
    telemetry::clear_sink();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Value of a top-level `"key":number` pair in a flat JSON object.
fn json_number(body: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}
