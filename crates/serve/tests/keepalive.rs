//! Keep-alive framing test: one connection serves multiple sequential
//! requests, each response is exactly `Content-Length` bytes with the right
//! `Connection:` header, and both the explicit-`close` and HTTP/1.0 paths
//! still close after one exchange. Also exercises the persistent
//! [`HttpClient`] against a live server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use gsu_serve::http::HttpClient;
use gsu_serve::Server;
use telemetry::Collector;

/// Reads one full response off `reader` and returns
/// `(status, connection_header, body)`.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    let mut connection = String::new();
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header).expect("header line");
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => content_length = value.trim().parse().expect("length"),
                "connection" => connection = value.trim().to_string(),
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("exact body");
    (
        status,
        connection,
        String::from_utf8(body).expect("utf8 body"),
    )
}

#[test]
fn keep_alive_serves_multiple_requests_with_exact_framing() {
    let collector = Collector::install();
    let server = Server::bind("127.0.0.1:0", collector).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.run(2));

    // Three sequential requests over ONE raw connection. If the server
    // mis-framed any response (wrong Content-Length, closed early), the
    // next read_response would desynchronise and fail loudly.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream);
    for i in 0..3 {
        write!(
            reader.get_mut(),
            "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n"
        )
        .expect("write request");
        reader.get_mut().flush().expect("flush");
        let (status, connection, body) = read_response(&mut reader);
        assert_eq!(status, 200, "request {i}");
        assert_eq!(connection, "keep-alive", "request {i}");
        assert_eq!(body, "ok\n", "request {i}");
    }
    // An explicit close is honoured: the response says close and the server
    // hangs up (EOF on the next read).
    write!(
        reader.get_mut(),
        "GET /version HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    reader.get_mut().flush().expect("flush");
    let (status, connection, body) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(connection, "close");
    assert!(body.contains("\"name\":\"gsu-serve\""), "{body}");
    let mut probe = String::new();
    assert_eq!(
        reader.read_line(&mut probe).expect("post-close read"),
        0,
        "server must close after Connection: close"
    );

    // HTTP/1.0 without a keep-alive header defaults to close.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream);
    write!(reader.get_mut(), "GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n").expect("write");
    reader.get_mut().flush().expect("flush");
    let (status, connection, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(connection, "close");

    // The persistent client sees the same framing: many requests, one
    // connection.
    let mut client = HttpClient::new(addr, true);
    for _ in 0..5 {
        let (status, body) = client.get("/healthz").expect("client get");
        assert_eq!((status, body.as_str()), (200, "ok\n"));
    }
    let (status, body) = client.get("/stats").expect("client stats");
    assert_eq!(status, 200);
    assert!(body.starts_with("{\"schema\":\"gsu-stats-v1\""), "{body}");
    assert_eq!(client.connects(), 1, "keep-alive client must reuse");

    // In close mode every request opens a fresh connection.
    let mut oneshot = HttpClient::new(addr, false);
    for _ in 0..3 {
        let (status, _) = oneshot.get("/healthz").expect("close-mode get");
        assert_eq!(status, 200);
    }
    assert_eq!(oneshot.connects(), 3, "close mode must not reuse");

    handle.shutdown();
    serving.join().expect("server thread");
    telemetry::clear_sink();
}
