use std::fmt;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinAlgError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: String,
        /// Shape expected by the operation.
        expected: (usize, usize),
        /// Shape actually supplied.
        found: (usize, usize),
    },
    /// A matrix required to be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A factorization or direct solve hit a (numerically) singular pivot.
    Singular {
        /// Index of the pivot at which elimination broke down.
        pivot: usize,
    },
    /// An iterative method failed to reach the requested tolerance.
    NotConverged {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the final iteration.
        residual: f64,
        /// Tolerance that was requested.
        tolerance: f64,
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// The offending (row, col) pair.
        index: (usize, usize),
        /// The matrix shape.
        shape: (usize, usize),
    },
    /// An input value was invalid (NaN, non-positive where positivity is required, …).
    InvalidValue {
        /// Description of the invalid input.
        context: String,
    },
}

impl fmt::Display for LinAlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinAlgError::DimensionMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            LinAlgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinAlgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinAlgError::NotConverged {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "iteration did not converge after {iterations} steps \
                 (residual {residual:.3e} > tolerance {tolerance:.3e})"
            ),
            LinAlgError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            LinAlgError::InvalidValue { context } => {
                write!(f, "invalid value: {context}")
            }
        }
    }
}

impl std::error::Error for LinAlgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinAlgError::DimensionMismatch {
            context: "mul_vec".to_string(),
            expected: (3, 3),
            found: (3, 2),
        };
        let s = e.to_string();
        assert!(s.contains("mul_vec"));
        assert!(s.contains("3x3"));
        assert!(s.contains("3x2"));
    }

    #[test]
    fn not_converged_shows_residual() {
        let e = LinAlgError::NotConverged {
            iterations: 100,
            residual: 0.5,
            tolerance: 1e-9,
        };
        let s = e.to_string();
        assert!(s.contains("100"));
        assert!(s.contains("5.000e-1"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinAlgError>();
    }
}
