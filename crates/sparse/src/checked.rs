//! Checked-float mode: debug-build tripwires on kernel outputs.
//!
//! The numeric pipeline is supposed to keep every intermediate finite and
//! normal — NaN, infinity, or a denormal leaking out of an SpMV is always a
//! modelling or conditioning bug upstream, never a legitimate value. This
//! module gives `gsu-lint sanitize` (and any debug build) a way to catch the
//! leak *at the kernel that produced it*, with the kernel named in the trip
//! record, instead of ten solver layers later when a probability goes NaN.
//!
//! The mode is off by default and compiles to nothing in release builds:
//! [`check_slice`] is an empty `#[inline]` function unless
//! `debug_assertions` are on **and** [`enable`] has been called. Kernels call
//! it unconditionally on their output slices; the cost in an enabled debug
//! build is one linear scan per kernel invocation.
//!
//! Trips are recorded, not panicked: the sanitizer wants to finish the run,
//! diff the outputs, and then report every tripwire alongside any bitwise
//! mismatch. The trip log is bounded so a kernel in a hot loop cannot grow
//! it without limit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

/// Maximum number of trip records kept; later trips only bump the counter.
const MAX_TRIPS: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRIPS: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Turns checked-float mode on or off. Disabling does not clear recorded
/// trips; use [`take_trips`] to drain them.
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// `true` when trips are being recorded (debug build and [`enable`]d).
pub fn active() -> bool {
    cfg!(debug_assertions) && ENABLED.load(Ordering::Relaxed)
}

/// Drains and returns every trip recorded so far, in trip order.
pub fn take_trips() -> Vec<String> {
    std::mem::take(&mut *TRIPS.lock().unwrap_or_else(PoisonError::into_inner))
}

/// Scans `values` for NaN / infinite / denormal entries and records one trip
/// per offending class, naming `kernel` and the first offending index.
///
/// No-op unless [`active`]. Kernels pass their *output* slice: the goal is
/// to name the operation that manufactured the bad value, so checking inputs
/// would double-report every propagation hop.
#[inline]
pub fn check_slice(kernel: &'static str, values: &[f64]) {
    if !active() {
        return;
    }
    scan(kernel, values);
}

#[cold]
fn record(message: String) {
    let mut trips = TRIPS.lock().unwrap_or_else(PoisonError::into_inner);
    if trips.len() < MAX_TRIPS {
        trips.push(message);
    }
}

fn scan(kernel: &'static str, values: &[f64]) {
    let mut nan = None;
    let mut inf = None;
    let mut denormal = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            nan.get_or_insert(i);
        } else if v.is_infinite() {
            inf.get_or_insert(i);
        } else if v != 0.0 && v.abs() < f64::MIN_POSITIVE {
            denormal.get_or_insert(i);
        }
        if nan.is_some() && inf.is_some() && denormal.is_some() {
            break;
        }
    }
    if let Some(i) = nan {
        record(format!("checked-float: {kernel}: NaN at index {i}"));
    }
    if let Some(i) = inf {
        record(format!("checked-float: {kernel}: Inf at index {i}"));
    }
    if let Some(i) = denormal {
        record(format!("checked-float: {kernel}: denormal at index {i}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trip-log state is process-global; tests that touch it serialise here.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_mode_records_nothing() {
        let _g = GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        enable(false);
        take_trips();
        check_slice("test.kernel", &[f64::NAN, 1.0]);
        assert!(take_trips().is_empty());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn enabled_mode_names_kernel_and_class() {
        let _g = GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        enable(true);
        take_trips();
        check_slice("csr.mul_vec", &[1.0, f64::NAN, f64::INFINITY, 1e-320]);
        enable(false);
        let trips = take_trips();
        assert_eq!(trips.len(), 3);
        assert!(trips[0].contains("csr.mul_vec") && trips[0].contains("NaN at index 1"));
        assert!(trips[1].contains("Inf at index 2"));
        assert!(trips[2].contains("denormal at index 3"));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn trip_log_is_bounded() {
        let _g = GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        enable(true);
        take_trips();
        for _ in 0..(MAX_TRIPS + 50) {
            check_slice("bounded.kernel", &[f64::NAN]);
        }
        enable(false);
        assert_eq!(take_trips().len(), MAX_TRIPS);
    }

    #[test]
    fn clean_slice_never_trips() {
        let _g = GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        enable(true);
        take_trips();
        check_slice("clean.kernel", &[0.0, -1.5, f64::MIN_POSITIVE, 1e300]);
        enable(false);
        assert!(take_trips().is_empty());
    }
}
