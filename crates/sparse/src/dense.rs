//! Dense matrices and LU factorization.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{LinAlgError, Result};

/// A dense row-major matrix of `f64`.
///
/// Dense storage is used where the Markov models are small enough that direct
/// methods dominate: LU-based steady-state solves, and the scaling-and-squaring
/// matrix exponential in the `markov` crate (which must be dense anyway, as
/// `exp(Q·t)` of a sparse generator is generally full).
///
/// # Example
///
/// ```
/// use sparsela::DenseMatrix;
///
/// let a = DenseMatrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let lu = a.lu().unwrap();
/// let x = lu.solve(&[10.0, 12.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        DenseMatrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinAlgError::DimensionMismatch`] when
    /// `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinAlgError::DimensionMismatch {
                context: "DenseMatrix::from_vec".to_string(),
                expected: (rows, cols),
                found: (data.len(), 1),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix-matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinAlgError::DimensionMismatch`] when the inner dimensions
    /// disagree.
    pub fn mul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.rows {
            return Err(LinAlgError::DimensionMismatch {
                context: "DenseMatrix::mul".to_string(),
                expected: (self.cols, self.cols),
                found: (other.rows, other.cols),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (cij, bkj) in crow.iter_mut().zip(orow) {
                    *cij += aik * bkj;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec: length mismatch");
        (0..self.rows)
            .map(|r| crate::vector::dot(self.row(r), x))
            .collect()
    }

    /// Row-vector product `xᵀ · self` returned as a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn vec_mul(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "vec_mul: length mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (yc, v) in y.iter_mut().zip(self.row(r)) {
                *yc += xr * v;
            }
        }
        y
    }

    /// In-place `self ← self + alpha · other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinAlgError::DimensionMismatch`] on shape mismatch.
    pub fn add_scaled(&mut self, alpha: f64, other: &DenseMatrix) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinAlgError::DimensionMismatch {
                context: "DenseMatrix::add_scaled".to_string(),
                expected: (self.rows, self.cols),
                found: (other.rows, other.cols),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// In-place scalar multiplication.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// The induced ∞-norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinAlgError::NotSquare`] for non-square matrices and
    /// [`LinAlgError::Singular`] when a pivot vanishes.
    pub fn lu(&self) -> Result<LuDecomposition> {
        LuDecomposition::new(self)
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.6}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// The result of LU factorization with partial pivoting: `P·A = L·U`.
///
/// Obtained from [`DenseMatrix::lu`]; solves `A·x = b` and `xᵀ·A = bᵀ` in
/// `O(n²)` per right-hand side after the `O(n³)` factorization.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: DenseMatrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 / −1.0), used by `det`.
    perm_sign: f64,
}

impl LuDecomposition {
    fn new(a: &DenseMatrix) -> Result<Self> {
        if a.rows != a.cols {
            return Err(LinAlgError::NotSquare {
                rows: a.rows,
                cols: a.cols,
            });
        }
        let n = a.rows;
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: find the largest entry in column k at or
            // below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val == 0.0 || !pivot_val.is_finite() {
                return Err(LinAlgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let inv_pivot = 1.0 / lu[(k, k)];
            for r in (k + 1)..n {
                let factor = lu[(r, k)] * inv_pivot;
                lu[(r, k)] = factor;
                if factor != 0.0 {
                    for c in (k + 1)..n {
                        let ukc = lu[(k, c)];
                        lu[(r, c)] -= factor * ukc;
                    }
                }
            }
        }

        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinAlgError::DimensionMismatch`] when `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinAlgError::DimensionMismatch {
                context: "LuDecomposition::solve".to_string(),
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        // Apply permutation: y = P·b.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit lower triangle.
        for r in 1..n {
            let mut acc = x[r];
            for (c, &xc) in x.iter().enumerate().take(r) {
                acc -= self.lu[(r, c)] * xc;
            }
            x[r] = acc;
        }
        // Back substitution with upper triangle.
        for r in (0..n).rev() {
            let mut acc = x[r];
            for (c, &xc) in x.iter().enumerate().skip(r + 1) {
                acc -= self.lu[(r, c)] * xc;
            }
            x[r] = acc / self.lu[(r, r)];
        }
        Ok(x)
    }

    /// Solves the transposed system `Aᵀ·x = b` (i.e. the row system
    /// `xᵀ·A = bᵀ`), which is how steady-state equations `π·Q = 0` are posed.
    ///
    /// # Errors
    ///
    /// Returns [`LinAlgError::DimensionMismatch`] when `b.len() != self.dim()`.
    pub fn solve_transpose(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinAlgError::DimensionMismatch {
                context: "LuDecomposition::solve_transpose".to_string(),
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        // Aᵀ = (Pᵀ L U)ᵀ = Uᵀ Lᵀ P. Solve Uᵀ·z = b, then Lᵀ·w = z, then
        // x = Pᵀ·w.
        let mut z = b.to_vec();
        // Uᵀ is lower triangular: forward substitution.
        for r in 0..n {
            let mut acc = z[r];
            for (c, &zc) in z.iter().enumerate().take(r) {
                acc -= self.lu[(c, r)] * zc;
            }
            z[r] = acc / self.lu[(r, r)];
        }
        // Lᵀ is unit upper triangular: back substitution.
        for r in (0..n).rev() {
            let mut acc = z[r];
            for (c, &zc) in z.iter().enumerate().skip(r + 1) {
                acc -= self.lu[(c, r)] * zc;
            }
            z[r] = acc;
        }
        // x[perm[i]] = w[i].
        let mut x = vec![0.0; n];
        for (i, &p) in self.perm.iter().enumerate() {
            x[p] = z[i];
        }
        Ok(x)
    }

    /// The determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_solve_is_identity() {
        let lu = DenseMatrix::identity(3).lu().unwrap();
        let b = vec![1.0, 2.0, 3.0];
        assert_eq!(lu.solve(&b).unwrap(), b);
        assert_eq!(lu.solve_transpose(&b).unwrap(), b);
        assert_eq!(lu.det(), 1.0);
    }

    #[test]
    fn solve_2x2() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = a.lu().unwrap();
        let x = lu.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = a.lu().unwrap();
        let x = lu.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_is_detected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(a.lu(), Err(LinAlgError::Singular { .. })));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinAlgError::NotSquare { .. })));
    }

    #[test]
    fn mul_matches_hand_computation() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul(&b).unwrap();
        assert_eq!(c, DenseMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn mul_shape_mismatch_errors() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 2);
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn vec_mul_is_transpose_mul_vec() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let x = [5.0, 6.0];
        assert_eq!(a.vec_mul(&x), a.transpose().mul_vec(&x));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn norm_inf_max_row() {
        let a = DenseMatrix::from_rows(&[&[1.0, -2.0], &[0.5, 0.25]]);
        assert_eq!(a.norm_inf(), 3.0);
    }

    #[test]
    fn display_shows_entries() {
        let a = DenseMatrix::identity(2);
        let s = a.to_string();
        assert!(s.contains("1.000000"));
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = DenseMatrix::identity(2);
        let b = DenseMatrix::identity(2);
        a.add_scaled(2.0, &b).unwrap();
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(0, 1)], 0.0);
    }

    fn arb_well_conditioned(n: usize) -> impl Strategy<Value = DenseMatrix> {
        proptest::collection::vec(-1.0..1.0f64, n * n).prop_map(move |mut data| {
            // Make strictly diagonally dominant so the matrix is invertible.
            for i in 0..n {
                data[i * n + i] += (n as f64) + 1.0;
            }
            DenseMatrix::from_vec(n, n, data).expect("sized correctly")
        })
    }

    proptest! {
        #[test]
        fn lu_solve_residual_small(
            a in arb_well_conditioned(5),
            b in proptest::collection::vec(-10.0..10.0f64, 5),
        ) {
            let lu = a.lu().unwrap();
            let x = lu.solve(&b).unwrap();
            let r = a.mul_vec(&x);
            for (ri, bi) in r.iter().zip(&b) {
                prop_assert!((ri - bi).abs() < 1e-8);
            }
        }

        #[test]
        fn transpose_solve_residual_small(
            a in arb_well_conditioned(5),
            b in proptest::collection::vec(-10.0..10.0f64, 5),
        ) {
            let lu = a.lu().unwrap();
            let x = lu.solve_transpose(&b).unwrap();
            let r = a.vec_mul(&x); // xᵀ·A
            for (ri, bi) in r.iter().zip(&b) {
                prop_assert!((ri - bi).abs() < 1e-8);
            }
        }

        #[test]
        fn det_of_product_sign_consistency(a in arb_well_conditioned(4)) {
            let lu = a.lu().unwrap();
            // Diagonally dominant with positive diagonal => positive determinant.
            prop_assert!(lu.det() > 0.0);
        }
    }
}
