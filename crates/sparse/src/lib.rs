//! Sparse and dense linear-algebra kernels used by the Markov reward model
//! solvers in this workspace.
//!
//! This crate is deliberately small and dependency-free. It provides exactly
//! the numerical substrate required to solve the reward models produced by
//! the stochastic-activity-network layer:
//!
//! * [`CooMatrix`] — a coordinate-format builder for assembling matrices from
//!   unordered `(row, col, value)` triplets (duplicate entries are summed).
//! * [`CsrMatrix`] — compressed sparse row storage with the matrix-vector
//!   products (`A·x` and `Aᵀ·x`) that drive uniformization and power
//!   iteration.
//! * [`DenseMatrix`] — a small dense matrix with LU factorization
//!   ([`LuDecomposition`]), used for direct steady-state solutions and by the
//!   matrix-exponential transient solver in the `markov` crate.
//! * [`BlockedKernel`] — a transposed, gather-oriented layout of a CSR
//!   matrix built once and applied across all powers of a uniformization
//!   pass, with a fused step-plus-weighted-accumulate and an adaptive
//!   (mass-dropping) scatter variant.
//! * [`iterative`] — Jacobi, Gauss–Seidel, SOR, and Jacobi-preconditioned
//!   BiCGStab iterations for `A·x = b`, with convergence diagnostics.
//! * [`vector`] — the handful of BLAS-1 style kernels (`axpy`, `dot`, norms)
//!   the solvers need.
//!
//! # Example
//!
//! ```
//! use sparsela::{CooMatrix, vector};
//!
//! // Assemble [[2, -1], [-1, 2]] and multiply by [1, 1].
//! let mut coo = CooMatrix::new(2, 2);
//! coo.push(0, 0, 2.0);
//! coo.push(0, 1, -1.0);
//! coo.push(1, 0, -1.0);
//! coo.push(1, 1, 2.0);
//! let csr = coo.to_csr();
//! let y = csr.mul_vec(&[1.0, 1.0]);
//! assert_eq!(y, vec![1.0, 1.0]);
//! assert!((vector::norm_l2(&y) - 2f64.sqrt()).abs() < 1e-15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocked;
pub mod checked;
mod coo;
mod csr;
mod dense;
mod error;
pub mod iterative;
pub mod vector;

pub use blocked::BlockedKernel;
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::{DenseMatrix, LuDecomposition};
pub use error::LinAlgError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, LinAlgError>;
