//! Coordinate-format sparse matrix assembly.

use crate::{CsrMatrix, LinAlgError, Result};

/// A sparse matrix in coordinate (triplet) format, used for assembly.
///
/// Entries may be pushed in any order; duplicates at the same position are
/// summed when converting to [`CsrMatrix`]. This is the natural target when
/// generating a Markov chain from a reachability graph, where the same
/// transition may be produced several times (e.g. two activity cases leading
/// to the same successor state).
///
/// # Example
///
/// ```
/// use sparsela::CooMatrix;
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 1, 2.0);
/// coo.push(0, 1, 3.0); // summed with the previous entry
/// let csr = coo.to_csr();
/// assert_eq!(csr.get(0, 1), 5.0);
/// assert_eq!(csr.nnz(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty matrix with capacity for `cap` entries.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (possibly duplicated) entries pushed so far.
    pub fn raw_len(&self) -> usize {
        self.entries.len()
    }

    /// Adds `value` at `(row, col)`. Zero values are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds — assembly writes out of
    /// bounds only through a programming error.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "CooMatrix::push: index ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Fallible variant of [`push`](Self::push) for externally supplied data.
    ///
    /// # Errors
    ///
    /// Returns [`LinAlgError::IndexOutOfBounds`] when the position is outside
    /// the matrix, and [`LinAlgError::InvalidValue`] when `value` is not
    /// finite.
    pub fn try_push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(LinAlgError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.rows, self.cols),
            });
        }
        if !value.is_finite() {
            return Err(LinAlgError::InvalidValue {
                context: format!("non-finite value {value} at ({row}, {col})"),
            });
        }
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
        Ok(())
    }

    /// Converts to compressed sparse row format, summing duplicates and
    /// dropping entries that cancel to exactly zero.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());

        row_ptr.push(0);
        let mut current_row = 0usize;
        let mut i = 0usize;
        while i < sorted.len() {
            let (r, c, _) = sorted[i];
            // Sum the run of duplicates at (r, c).
            let mut v = 0.0;
            while i < sorted.len() && sorted[i].0 == r && sorted[i].1 == c {
                v += sorted[i].2;
                i += 1;
            }
            if v != 0.0 {
                while current_row < r {
                    row_ptr.push(col_idx.len());
                    current_row += 1;
                }
                col_idx.push(c);
                values.push(v);
            }
        }
        while current_row < self.rows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }

        CsrMatrix::from_raw_parts(self.rows, self.cols, row_ptr, col_idx, values)
    }
}

impl FromIterator<(usize, usize, f64)> for CooMatrix {
    /// Builds a matrix sized to fit the triplets.
    fn from_iter<I: IntoIterator<Item = (usize, usize, f64)>>(iter: I) -> Self {
        let entries: Vec<_> = iter.into_iter().collect();
        let rows = entries.iter().map(|&(r, _, _)| r + 1).max().unwrap_or(0);
        let cols = entries.iter().map(|&(_, c, _)| c + 1).max().unwrap_or(0);
        let mut coo = CooMatrix::new(rows, cols);
        for (r, c, v) in entries {
            coo.push(r, c, v);
        }
        coo
    }
}

impl Extend<(usize, usize, f64)> for CooMatrix {
    fn extend<I: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_matrix_has_no_entries() {
        let coo = CooMatrix::new(3, 4);
        let csr = coo.to_csr();
        assert_eq!(csr.rows(), 3);
        assert_eq!(csr.cols(), 4);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 0, 1.5);
        coo.push(1, 0, 2.5);
        coo.push(0, 0, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.get(1, 0), 4.0);
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, -1.0);
        assert_eq!(coo.to_csr().nnz(), 0);
    }

    #[test]
    fn zero_push_is_skipped() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 0.0);
        assert_eq!(coo.raw_len(), 0);
    }

    #[test]
    fn try_push_rejects_out_of_bounds() {
        let mut coo = CooMatrix::new(2, 2);
        let err = coo.try_push(2, 0, 1.0).unwrap_err();
        assert!(matches!(err, LinAlgError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn try_push_rejects_nan() {
        let mut coo = CooMatrix::new(2, 2);
        let err = coo.try_push(0, 0, f64::NAN).unwrap_err();
        assert!(matches!(err, LinAlgError::InvalidValue { .. }));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_panics_out_of_bounds() {
        CooMatrix::new(1, 1).push(0, 1, 1.0);
    }

    #[test]
    fn from_iterator_sizes_to_fit() {
        let coo: CooMatrix = vec![(0, 2, 1.0), (3, 1, 2.0)].into_iter().collect();
        assert_eq!(coo.rows(), 4);
        assert_eq!(coo.cols(), 3);
    }

    #[test]
    fn extend_appends() {
        let mut coo = CooMatrix::new(2, 2);
        coo.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(coo.raw_len(), 2);
    }

    #[test]
    fn trailing_empty_rows_are_represented() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.rows(), 4);
        assert_eq!(csr.row(3).count(), 0);
    }

    proptest! {
        #[test]
        fn to_csr_preserves_sums(
            triplets in proptest::collection::vec(
                (0usize..6, 0usize..6, -10.0..10.0f64), 0..50)
        ) {
            let mut coo = CooMatrix::new(6, 6);
            for &(r, c, v) in &triplets {
                coo.push(r, c, v);
            }
            let csr = coo.to_csr();
            // Dense reference accumulation.
            let mut dense = [[0.0f64; 6]; 6];
            for &(r, c, v) in &triplets {
                dense[r][c] += v;
            }
            for (r, row) in dense.iter().enumerate() {
                for (c, &want) in row.iter().enumerate() {
                    prop_assert!((csr.get(r, c) - want).abs() < 1e-12);
                }
            }
        }

        #[test]
        fn push_order_does_not_matter(
            triplets in proptest::collection::vec(
                (0usize..5, 0usize..5, -5.0..5.0f64), 1..30)
        ) {
            let mut a = CooMatrix::new(5, 5);
            let mut b = CooMatrix::new(5, 5);
            for &(r, c, v) in &triplets {
                a.push(r, c, v);
            }
            for &(r, c, v) in triplets.iter().rev() {
                b.push(r, c, v);
            }
            let (ca, cb) = (a.to_csr(), b.to_csr());
            for r in 0..5 {
                for c in 0..5 {
                    prop_assert!((ca.get(r, c) - cb.get(r, c)).abs() < 1e-12);
                }
            }
        }
    }
}
