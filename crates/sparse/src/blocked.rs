//! Cache-friendly kernels for the repeated `y ← x·A` of uniformization.
//!
//! [`CsrMatrix::mul_vec_transpose_into`] advances a distribution by
//! *scattering* each source row into the output, which writes all over `y`
//! and re-reads `y` from memory on every update. The power iterations of
//! uniformization apply the **same** matrix thousands of times, so it pays
//! to build a transposed, gather-oriented layout once and reuse it for every
//! step:
//!
//! * [`BlockedKernel`] stores `Aᵀ` in CSR form, processed in fixed-width
//!   row chunks (a SELL-C-style layout with C = [`CHUNK`], σ = 1, no
//!   padding — scalar code needs none). Each output entry is a single
//!   gather-reduce with one sequential write, and the chunked loop keeps
//!   the write region resident in L1 while `x` streams through cache.
//! * [`BlockedKernel::apply_fused`] folds the Fox–Glynn-weighted
//!   accumulation `acc ← acc + w·x` into the same pass over the chunk, so
//!   a uniformization step costs one traversal instead of two.
//! * [`spmv_transpose_adaptive`] is the scatter form with support
//!   tracking: source rows whose mass is below a caller-budgeted drop
//!   tolerance are skipped and their (exactly accounted) mass reported
//!   back, which is what adaptive uniformization needs while the
//!   probability mass is still concentrated on few states.

use crate::CsrMatrix;

/// Output rows per chunk of the blocked layout.
pub const CHUNK: usize = 256;

/// A transposed, gather-oriented layout of a sparse matrix, built once and
/// applied many times.
///
/// For a matrix `A`, the kernel computes `y = Aᵀ·x` (the row-vector product
/// `x·A` that advances probability distributions). Agreement with the
/// reference scatter kernel is property-tested to `1e-12`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedKernel {
    /// Rows of the original matrix (length of `x`).
    rows: usize,
    /// Columns of the original matrix (length of `y`).
    cols: usize,
    /// CSR row pointers of `Aᵀ`: entry `j` delimits the sources feeding
    /// output `j`.
    col_ptr: Vec<usize>,
    /// Source row of each stored entry.
    row_idx: Vec<usize>,
    /// Value of each stored entry.
    values: Vec<f64>,
}

impl BlockedKernel {
    /// Builds the transposed layout from a CSR matrix in `O(nnz)`.
    pub fn from_csr(a: &CsrMatrix) -> Self {
        let rows = a.rows();
        let cols = a.cols();
        let nnz = a.nnz();
        let mut col_ptr = vec![0usize; cols + 1];
        for (_, c, _) in a.iter() {
            col_ptr[c + 1] += 1;
        }
        for j in 0..cols {
            col_ptr[j + 1] += col_ptr[j];
        }
        let mut cursor = col_ptr.clone();
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        for (r, c, v) in a.iter() {
            let k = cursor[c];
            row_idx[k] = r;
            values[k] = v;
            cursor[c] += 1;
        }
        BlockedKernel {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Computes `y = Aᵀ·x` (gather form).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "BlockedKernel::apply: x length");
        assert_eq!(y.len(), self.cols, "BlockedKernel::apply: y length");
        telemetry::work::count_spmv(1);
        for chunk_start in (0..self.cols).step_by(CHUNK) {
            let chunk_end = (chunk_start + CHUNK).min(self.cols);
            for (j, yj) in y[chunk_start..chunk_end].iter_mut().enumerate() {
                let j = chunk_start + j;
                let mut acc = 0.0;
                for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                    acc += self.values[k] * x[self.row_idx[k]];
                }
                *yj = acc;
            }
        }
        crate::checked::check_slice("blocked.apply", y);
    }

    /// Computes `y = Aᵀ·x` and `acc ← acc + weight·x` in one pass.
    ///
    /// This fuses a uniformization step with its Fox–Glynn-weighted
    /// accumulation: both read `x` chunk by chunk, so the second traversal
    /// of the reference implementation disappears. A `weight` of zero skips
    /// the accumulation entirely (steps outside the Poisson window).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or when the matrix is not square (the
    /// fused accumulate only makes sense when `x` and `y` index the same
    /// state space).
    pub fn apply_fused(&self, x: &[f64], y: &mut [f64], weight: f64, acc: &mut [f64]) {
        assert_eq!(
            self.rows, self.cols,
            "BlockedKernel::apply_fused: matrix must be square"
        );
        assert_eq!(x.len(), self.rows, "BlockedKernel::apply_fused: x length");
        assert_eq!(y.len(), self.cols, "BlockedKernel::apply_fused: y length");
        assert_eq!(
            acc.len(),
            self.rows,
            "BlockedKernel::apply_fused: acc length"
        );
        telemetry::work::count_spmv(1);
        let accumulate = weight != 0.0;
        if accumulate {
            telemetry::work::count_axpy(1);
        }
        for chunk_start in (0..self.cols).step_by(CHUNK) {
            let chunk_end = (chunk_start + CHUNK).min(self.cols);
            if accumulate {
                for (aj, xj) in acc[chunk_start..chunk_end]
                    .iter_mut()
                    .zip(&x[chunk_start..chunk_end])
                {
                    *aj += weight * xj;
                }
            }
            for (j, yj) in y[chunk_start..chunk_end].iter_mut().enumerate() {
                let j = chunk_start + j;
                let mut a = 0.0;
                for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                    a += self.values[k] * x[self.row_idx[k]];
                }
                *yj = a;
            }
        }
        crate::checked::check_slice("blocked.apply_fused", y);
        if accumulate {
            crate::checked::check_slice("blocked.apply_fused.acc", acc);
        }
    }
}

/// Result of one adaptive scatter step; see [`spmv_transpose_adaptive`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveStep {
    /// Mass of the source entries that were dropped (exact sum of the
    /// skipped `x` values).
    pub dropped_mass: f64,
    /// Number of source rows that actually contributed to the product.
    pub active_sources: usize,
}

/// Computes `y = Aᵀ·x` in scatter form, skipping source rows whose value is
/// positive but below `drop_tol` and reporting their summed mass back.
///
/// The caller owns the error budget: for a (sub)stochastic `A`, the L1
/// error introduced by one step is exactly the dropped mass (a stochastic
/// matrix does not amplify L1 norms), so dropping at most
/// `budget / expected_steps` per step bounds the total error by `budget`.
/// Entries that are exactly zero are skipped without being counted as
/// dropped. With `drop_tol == 0.0` this is the reference scatter kernel
/// plus support counting.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn spmv_transpose_adaptive(
    a: &CsrMatrix,
    x: &[f64],
    y: &mut [f64],
    drop_tol: f64,
) -> AdaptiveStep {
    assert_eq!(x.len(), a.rows(), "spmv_transpose_adaptive: x length");
    assert_eq!(y.len(), a.cols(), "spmv_transpose_adaptive: y length");
    telemetry::work::count_spmv(1);
    y.fill(0.0);
    let mut dropped_mass = 0.0;
    let mut active_sources = 0usize;
    for (r, &xr) in x.iter().enumerate() {
        if xr == 0.0 {
            continue;
        }
        if xr.abs() < drop_tol {
            dropped_mass += xr;
            continue;
        }
        active_sources += 1;
        for (c, v) in a.row(r) {
            y[c] += v * xr;
        }
    }
    crate::checked::check_slice("blocked.spmv_transpose_adaptive", y);
    AdaptiveStep {
        dropped_mass,
        active_sources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;
    use proptest::prelude::*;

    fn sample() -> CsrMatrix {
        // [[0.5, 0.5, 0],
        //  [0,   0,   1],
        //  [0.2, 0,   0.8]]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 0.5);
        coo.push(0, 1, 0.5);
        coo.push(1, 2, 1.0);
        coo.push(2, 0, 0.2);
        coo.push(2, 2, 0.8);
        coo.to_csr()
    }

    #[test]
    fn apply_matches_reference_kernel() {
        let a = sample();
        let k = BlockedKernel::from_csr(&a);
        assert_eq!(k.nnz(), a.nnz());
        let x = [0.3, 0.3, 0.4];
        let mut want = vec![0.0; 3];
        a.mul_vec_transpose_into(&x, &mut want);
        let mut got = vec![0.0; 3];
        k.apply(&x, &mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-15);
        }
    }

    #[test]
    fn apply_fused_accumulates_and_steps() {
        let a = sample();
        let k = BlockedKernel::from_csr(&a);
        let x = [0.2, 0.5, 0.3];
        let mut y = vec![0.0; 3];
        let mut acc = vec![1.0; 3];
        k.apply_fused(&x, &mut y, 0.25, &mut acc);
        let mut want_y = vec![0.0; 3];
        a.mul_vec_transpose_into(&x, &mut want_y);
        for (g, w) in y.iter().zip(&want_y) {
            assert!((g - w).abs() < 1e-15);
        }
        for (aj, xj) in acc.iter().zip(&x) {
            assert!((aj - (1.0 + 0.25 * xj)).abs() < 1e-15);
        }
    }

    #[test]
    fn apply_fused_zero_weight_skips_accumulation() {
        let a = sample();
        let k = BlockedKernel::from_csr(&a);
        let mut y = vec![0.0; 3];
        let mut acc = vec![0.125; 3];
        k.apply_fused(&[1.0, 0.0, 0.0], &mut y, 0.0, &mut acc);
        assert_eq!(acc, vec![0.125; 3]);
    }

    #[test]
    fn adaptive_with_zero_tolerance_is_exact() {
        let a = sample();
        let x = [0.1, 0.0, 0.9];
        let mut want = vec![0.0; 3];
        a.mul_vec_transpose_into(&x, &mut want);
        let mut got = vec![0.0; 3];
        let step = spmv_transpose_adaptive(&a, &x, &mut got, 0.0);
        assert_eq!(got, want);
        assert_eq!(step.dropped_mass, 0.0);
        assert_eq!(step.active_sources, 2);
    }

    #[test]
    fn adaptive_drops_and_accounts_tiny_mass() {
        let a = sample();
        let tiny = 1e-30;
        let x = [1.0 - tiny, tiny, 0.0];
        let mut y = vec![0.0; 3];
        let step = spmv_transpose_adaptive(&a, &x, &mut y, 1e-20);
        assert_eq!(step.active_sources, 1);
        assert!((step.dropped_mass - tiny).abs() < 1e-45);
        // Row 1's contribution is gone entirely.
        assert_eq!(y[2], 0.0);
    }

    #[test]
    fn rectangular_apply_works() {
        // 2x3 matrix: y = Aᵀx has length 3.
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(1, 1, 3.0);
        let a = coo.to_csr();
        let k = BlockedKernel::from_csr(&a);
        assert_eq!((k.rows(), k.cols()), (2, 3));
        let mut y = vec![0.0; 3];
        k.apply(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![1.0, 3.0, 2.0]);
    }

    proptest! {
        /// The blocked gather kernel agrees with the reference CSR scatter
        /// kernel on random sparse matrices to 1e-12 (ISSUE 8 satellite).
        #[test]
        fn blocked_agrees_with_reference(
            triplets in proptest::collection::vec(
                (0usize..24, 0usize..24, -4.0..4.0f64), 0..160),
            x in proptest::collection::vec(-2.0..2.0f64, 24),
        ) {
            let mut coo = CooMatrix::new(24, 24);
            for &(r, c, v) in &triplets {
                coo.push(r, c, v);
            }
            let a = coo.to_csr();
            let k = BlockedKernel::from_csr(&a);
            let mut want = vec![0.0; 24];
            a.mul_vec_transpose_into(&x, &mut want);
            let mut got = vec![0.0; 24];
            k.apply(&x, &mut got);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-12);
            }
            // The fused variant produces the same product and the exact
            // weighted accumulation.
            let mut fused = vec![0.0; 24];
            let mut acc = vec![0.0; 24];
            k.apply_fused(&x, &mut fused, 0.5, &mut acc);
            for ((f, w), (a_i, x_i)) in fused.iter().zip(&want).zip(acc.iter().zip(&x)) {
                prop_assert!((f - w).abs() < 1e-12);
                prop_assert!((a_i - 0.5 * x_i).abs() < 1e-12);
            }
        }

        /// Adaptive scatter with a tolerance of zero is bitwise the
        /// reference kernel; with a tolerance it never loses more mass than
        /// it reports.
        #[test]
        fn adaptive_accounts_exactly(
            triplets in proptest::collection::vec(
                (0usize..12, 0usize..12, 0.0..1.0f64), 0..60),
            x in proptest::collection::vec(0.0..1.0f64, 12),
            drop_tol in 0.0..0.5f64,
        ) {
            let mut coo = CooMatrix::new(12, 12);
            for &(r, c, v) in &triplets {
                coo.push(r, c, v);
            }
            let a = coo.to_csr();
            let mut exact = vec![0.0; 12];
            a.mul_vec_transpose_into(&x, &mut exact);
            let mut adaptive = vec![0.0; 12];
            let step = spmv_transpose_adaptive(&a, &x, &mut adaptive, drop_tol);
            // Dropped mass bounds the output error: each skipped source row
            // contributes at most (row sum) * x_r, and row sums here are
            // bounded by the matrix's norm.
            let row_norm = a.norm_inf().max(1.0);
            let err: f64 = exact.iter().zip(&adaptive).map(|(e, g)| (e - g).abs()).sum();
            prop_assert!(err <= step.dropped_mass * row_norm + 1e-12);
            prop_assert!(step.active_sources <= 12);
        }
    }
}
