//! Iterative solvers for sparse linear systems `A·x = b`.
//!
//! These are the classical stationary methods (Jacobi, Gauss–Seidel, SOR)
//! that UltraSAN-era tools used for steady-state reward model solution. The
//! `markov` crate builds its steady-state solvers on top of these; they are
//! exposed here so benchmarks can compare them directly (see the
//! `ablation_steady` bench).

use crate::{CsrMatrix, LinAlgError, Result};

/// Telemetry for one finished solve. All calls no-op unless a global
/// telemetry sink is installed, so the hot path pays one atomic load.
fn record_solve(method: &str, conv: &Convergence, opts: &IterOptions) {
    if !telemetry::enabled() {
        return;
    }
    telemetry::counter("solver.solves", 1);
    telemetry::counter("solver.iterations", conv.iterations as u64);
    telemetry::counter(&format!("solver.{method}.solves"), 1);
    telemetry::observe("solver.final_delta", conv.final_delta);
    if conv.final_delta > 0.0 {
        // How far under the tolerance the solve landed (>= 1 on success).
        telemetry::observe(
            "solver.tolerance_headroom",
            opts.tolerance / conv.final_delta,
        );
    }
}

/// Options controlling an iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IterOptions {
    /// Maximum number of sweeps before giving up.
    pub max_iterations: usize,
    /// Convergence tolerance on the ∞-norm of successive iterates'
    /// difference.
    pub tolerance: f64,
    /// Relaxation factor for SOR (ignored by Jacobi / Gauss–Seidel);
    /// `1.0` reduces SOR to Gauss–Seidel.
    pub relaxation: f64,
}

impl Default for IterOptions {
    fn default() -> Self {
        IterOptions {
            max_iterations: 10_000,
            tolerance: 1e-12,
            relaxation: 1.0,
        }
    }
}

/// Convergence report returned together with the solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Convergence {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final ∞-norm difference between successive iterates.
    pub final_delta: f64,
}

/// Solves `A·x = b` by Jacobi iteration, starting from `x0`.
///
/// # Errors
///
/// * [`LinAlgError::NotSquare`] when `A` is not square.
/// * [`LinAlgError::Singular`] when a diagonal entry is zero.
/// * [`LinAlgError::NotConverged`] when the tolerance is not met within the
///   iteration budget.
pub fn jacobi(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &IterOptions,
) -> Result<(Vec<f64>, Convergence)> {
    check_square(a, b, x0)?;
    let n = a.rows();
    let diag = checked_diagonal(a)?;
    let mut span = telemetry::span("sparsela.solve");
    let mut flight = telemetry::SolveDiag::new("jacobi");
    let mut x = x0.to_vec();
    let mut x_next = vec![0.0; n];
    let mut delta = f64::INFINITY;
    for it in 1..=opts.max_iterations {
        for r in 0..n {
            let mut acc = b[r];
            for (c, v) in a.row(r) {
                if c != r {
                    acc -= v * x[c];
                }
            }
            x_next[r] = acc / diag[r];
        }
        delta = crate::vector::diff_norm_inf(&x, &x_next);
        std::mem::swap(&mut x, &mut x_next);
        if telemetry::enabled() {
            flight.push_residual(delta);
        }
        if delta <= opts.tolerance {
            telemetry::work::count_iterations(it as u64);
            let conv = Convergence {
                iterations: it,
                final_delta: delta,
            };
            flight.iterations = it as u64;
            flight.record_on(&mut span);
            record_solve("jacobi", &conv, opts);
            return Ok((x, conv));
        }
    }
    telemetry::work::count_iterations(opts.max_iterations as u64);
    flight.iterations = opts.max_iterations as u64;
    flight.record_on(&mut span);
    telemetry::counter("solver.not_converged", 1);
    Err(LinAlgError::NotConverged {
        iterations: opts.max_iterations,
        residual: delta,
        tolerance: opts.tolerance,
    })
}

/// Solves `A·x = b` by Gauss–Seidel iteration, starting from `x0`.
///
/// # Errors
///
/// Same failure modes as [`jacobi`].
pub fn gauss_seidel(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &IterOptions,
) -> Result<(Vec<f64>, Convergence)> {
    let mut o = opts.clone();
    o.relaxation = 1.0;
    sor(a, b, x0, &o)
}

/// Solves `A·x = b` by successive over-relaxation, starting from `x0`.
///
/// With `opts.relaxation == 1.0` this is exactly Gauss–Seidel.
///
/// # Errors
///
/// Same failure modes as [`jacobi`], plus [`LinAlgError::InvalidValue`] when
/// the relaxation factor is outside `(0, 2)`.
pub fn sor(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &IterOptions,
) -> Result<(Vec<f64>, Convergence)> {
    check_square(a, b, x0)?;
    if !(opts.relaxation > 0.0 && opts.relaxation < 2.0) {
        return Err(LinAlgError::InvalidValue {
            context: format!("SOR relaxation factor {} outside (0, 2)", opts.relaxation),
        });
    }
    let n = a.rows();
    let diag = checked_diagonal(a)?;
    let omega = opts.relaxation;
    let method = if crate::vector::approx_eq(omega, 1.0, 0.0) {
        "gauss_seidel"
    } else {
        "sor"
    };
    let mut span = telemetry::span("sparsela.solve");
    let mut flight = telemetry::SolveDiag::new(method);
    let mut x = x0.to_vec();
    let mut delta = f64::INFINITY;
    for it in 1..=opts.max_iterations {
        delta = 0.0;
        for r in 0..n {
            let mut acc = b[r];
            for (c, v) in a.row(r) {
                if c != r {
                    acc -= v * x[c];
                }
            }
            let gs = acc / diag[r];
            let new = (1.0 - omega) * x[r] + omega * gs;
            delta = delta.max((new - x[r]).abs());
            x[r] = new;
        }
        if telemetry::enabled() {
            flight.push_residual(delta);
        }
        if delta <= opts.tolerance {
            telemetry::work::count_iterations(it as u64);
            let conv = Convergence {
                iterations: it,
                final_delta: delta,
            };
            flight.iterations = it as u64;
            flight.record_on(&mut span);
            record_solve(method, &conv, opts);
            return Ok((x, conv));
        }
    }
    telemetry::work::count_iterations(opts.max_iterations as u64);
    flight.iterations = opts.max_iterations as u64;
    flight.record_on(&mut span);
    telemetry::counter("solver.not_converged", 1);
    Err(LinAlgError::NotConverged {
        iterations: opts.max_iterations,
        residual: delta,
        tolerance: opts.tolerance,
    })
}

/// Solves `A·x = b` by BiCGStab with Jacobi (diagonal) preconditioning,
/// starting from `x0`.
///
/// BiCGStab is the workspace's Krylov option for the ill-conditioned,
/// non-symmetric systems that steady-state and absorbing analyses produce:
/// where the stationary sweeps (Jacobi/Gauss–Seidel/SOR) converge linearly
/// at a rate set by the spectral radius, BiCGStab typically needs far fewer
/// matrix–vector products, and a good initial guess (warm start from a
/// neighbouring parameter point) directly shortens the iteration.
///
/// Convergence is declared on `‖r‖∞ ≤ opts.tolerance` where `r = b − A·x`
/// is the true (unpreconditioned) residual. `opts.relaxation` is ignored.
///
/// # Errors
///
/// * [`LinAlgError::NotSquare`] when `A` is not square.
/// * [`LinAlgError::Singular`] when a diagonal entry is zero (the Jacobi
///   preconditioner is undefined).
/// * [`LinAlgError::NotConverged`] when the tolerance is not met within the
///   iteration budget or the recurrence breaks down.
pub fn bicgstab(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &IterOptions,
) -> Result<(Vec<f64>, Convergence)> {
    check_square(a, b, x0)?;
    let n = a.rows();
    let inv_diag: Vec<f64> = checked_diagonal(a)?.iter().map(|d| 1.0 / d).collect();
    let mut span = telemetry::span("sparsela.solve");
    let mut flight = telemetry::SolveDiag::new("bicgstab");

    let mut x = x0.to_vec();
    let mut r = {
        let mut ax = vec![0.0; n];
        a.mul_vec_into(&x, &mut ax);
        b.iter()
            .zip(&ax)
            .map(|(bi, axi)| bi - axi)
            .collect::<Vec<f64>>()
    };
    let r_shadow = r.clone();
    let mut rho_prev = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut p_hat = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut s_hat = vec![0.0; n];
    let mut t = vec![0.0; n];

    let mut delta = crate::vector::norm_inf(&r);
    if delta <= opts.tolerance {
        let conv = Convergence {
            iterations: 0,
            final_delta: delta,
        };
        flight.record_on(&mut span);
        record_solve("bicgstab", &conv, opts);
        return Ok((x, conv));
    }

    let finish = |x: Vec<f64>,
                  it: usize,
                  delta: f64,
                  flight: &mut telemetry::SolveDiag,
                  span: &mut telemetry::SpanGuard| {
        telemetry::work::count_iterations(it as u64);
        let conv = Convergence {
            iterations: it,
            final_delta: delta,
        };
        flight.iterations = it as u64;
        flight.record_on(span);
        record_solve("bicgstab", &conv, opts);
        Ok((x, conv))
    };

    let mut performed = 0usize;
    for it in 1..=opts.max_iterations {
        performed = it;
        let rho: f64 = crate::vector::dot(&r_shadow, &r);
        if rho == 0.0 || !rho.is_finite() {
            break; // breakdown: shadow residual orthogonal to residual
        }
        let beta = (rho / rho_prev) * (alpha / omega);
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        for i in 0..n {
            p_hat[i] = p[i] * inv_diag[i];
        }
        a.mul_vec_into(&p_hat, &mut v);
        let rv = crate::vector::dot(&r_shadow, &v);
        if rv == 0.0 || !rv.is_finite() {
            break;
        }
        alpha = rho / rv;
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        delta = crate::vector::norm_inf(&s);
        if telemetry::enabled() {
            flight.push_residual(delta);
        }
        if delta <= opts.tolerance {
            crate::vector::axpy(alpha, &p_hat, &mut x);
            return finish(x, it, delta, &mut flight, &mut span);
        }
        for i in 0..n {
            s_hat[i] = s[i] * inv_diag[i];
        }
        a.mul_vec_into(&s_hat, &mut t);
        let tt = crate::vector::dot(&t, &t);
        if tt == 0.0 || !tt.is_finite() {
            break;
        }
        omega = crate::vector::dot(&t, &s) / tt;
        if omega == 0.0 || !omega.is_finite() {
            break;
        }
        for i in 0..n {
            x[i] += alpha * p_hat[i] + omega * s_hat[i];
        }
        for i in 0..n {
            r[i] = s[i] - omega * t[i];
        }
        delta = crate::vector::norm_inf(&r);
        if telemetry::enabled() {
            flight.push_residual(delta);
        }
        if delta <= opts.tolerance {
            return finish(x, it, delta, &mut flight, &mut span);
        }
        rho_prev = rho;
    }
    telemetry::work::count_iterations(performed as u64);
    flight.iterations = performed as u64;
    flight.record_on(&mut span);
    telemetry::counter("solver.not_converged", 1);
    Err(LinAlgError::NotConverged {
        iterations: performed,
        residual: delta,
        tolerance: opts.tolerance,
    })
}

/// Residual `‖A·x − b‖∞` — useful for verifying any solver's output.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn residual_inf(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.mul_vec(x);
    crate::vector::diff_norm_inf(&ax, b)
}

fn check_square(a: &CsrMatrix, b: &[f64], x0: &[f64]) -> Result<()> {
    if a.rows() != a.cols() {
        return Err(LinAlgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if b.len() != a.rows() || x0.len() != a.rows() {
        return Err(LinAlgError::DimensionMismatch {
            context: "iterative solve right-hand side / initial guess".to_string(),
            expected: (a.rows(), 1),
            found: (b.len(), x0.len()),
        });
    }
    Ok(())
}

fn checked_diagonal(a: &CsrMatrix) -> Result<Vec<f64>> {
    let diag = a.diagonal();
    for (i, d) in diag.iter().enumerate() {
        if *d == 0.0 || !d.is_finite() {
            return Err(LinAlgError::Singular { pivot: i });
        }
    }
    Ok(diag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;
    use proptest::prelude::*;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        // Tridiagonal [−1, 2, −1]: symmetric positive definite, so all three
        // methods converge.
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn jacobi_solves_spd_system() {
        let a = laplacian_1d(8);
        let b = vec![1.0; 8];
        let (x, conv) = jacobi(&a, &b, &[0.0; 8], &IterOptions::default()).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-9);
        assert!(conv.iterations > 1);
    }

    #[test]
    fn gauss_seidel_faster_than_jacobi() {
        let a = laplacian_1d(8);
        let b = vec![1.0; 8];
        let opts = IterOptions::default();
        let (_, cj) = jacobi(&a, &b, &[0.0; 8], &opts).unwrap();
        let (_, cg) = gauss_seidel(&a, &b, &[0.0; 8], &opts).unwrap();
        assert!(cg.iterations < cj.iterations);
    }

    #[test]
    fn sor_with_good_omega_beats_gauss_seidel() {
        let a = laplacian_1d(16);
        let b = vec![1.0; 16];
        let mut opts = IterOptions::default();
        let (_, cg) = gauss_seidel(&a, &b, &[0.0; 16], &opts).unwrap();
        opts.relaxation = 1.6;
        let (x, cs) = sor(&a, &b, &[0.0; 16], &opts).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-9);
        assert!(cs.iterations < cg.iterations);
    }

    #[test]
    fn zero_diagonal_is_singular() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a = coo.to_csr();
        let r = gauss_seidel(&a, &[1.0, 1.0], &[0.0, 0.0], &IterOptions::default());
        assert!(matches!(r, Err(LinAlgError::Singular { .. })));
    }

    #[test]
    fn divergent_system_reports_not_converged() {
        // Jacobi diverges when the matrix is not diagonally dominant enough:
        // [[1, 2], [3, 1]] has spectral radius of iteration matrix > 1.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 3.0);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        let opts = IterOptions {
            max_iterations: 50,
            ..Default::default()
        };
        let r = jacobi(&a, &[1.0, 1.0], &[0.0, 0.0], &opts);
        assert!(matches!(r, Err(LinAlgError::NotConverged { .. })));
    }

    #[test]
    fn bad_relaxation_rejected() {
        let a = laplacian_1d(3);
        let opts = IterOptions {
            relaxation: 2.5,
            ..Default::default()
        };
        let r = sor(&a, &[1.0; 3], &[0.0; 3], &opts);
        assert!(matches!(r, Err(LinAlgError::InvalidValue { .. })));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = laplacian_1d(3);
        let r = jacobi(&a, &[1.0; 2], &[0.0; 3], &IterOptions::default());
        assert!(matches!(r, Err(LinAlgError::DimensionMismatch { .. })));
    }

    #[test]
    fn bicgstab_solves_spd_system() {
        let a = laplacian_1d(16);
        let b = vec![1.0; 16];
        let (x, conv) = bicgstab(&a, &b, &[0.0; 16], &IterOptions::default()).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-9);
        assert!(conv.iterations >= 1);
    }

    #[test]
    fn bicgstab_needs_fewer_iterations_than_sweeps() {
        let a = laplacian_1d(32);
        let b = vec![1.0; 32];
        let opts = IterOptions::default();
        let (_, cg) = gauss_seidel(&a, &b, &[0.0; 32], &opts).unwrap();
        let (_, cb) = bicgstab(&a, &b, &[0.0; 32], &opts).unwrap();
        assert!(
            cb.iterations < cg.iterations,
            "bicgstab {} vs gauss-seidel {}",
            cb.iterations,
            cg.iterations
        );
    }

    #[test]
    fn bicgstab_warm_start_shortens_iteration() {
        let a = laplacian_1d(24);
        let b = vec![1.0; 24];
        let opts = IterOptions::default();
        let (x, _) = bicgstab(&a, &b, &[0.0; 24], &opts).unwrap();
        // Continuation scenario: a slightly perturbed right-hand side solved
        // cold vs warm-started from the neighbouring solution.
        let b2: Vec<f64> = (0..24).map(|i| 1.0 + 1e-3 * (i as f64 / 24.0)).collect();
        let (_, cold) = bicgstab(&a, &b2, &[0.0; 24], &opts).unwrap();
        let (_, warm) = bicgstab(&a, &b2, &x, &opts).unwrap();
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn bicgstab_converged_guess_returns_immediately() {
        let a = laplacian_1d(4);
        let b = a.mul_vec(&[1.0, 2.0, 3.0, 4.0]);
        let (x, conv) = bicgstab(&a, &b, &[1.0, 2.0, 3.0, 4.0], &IterOptions::default()).unwrap();
        assert_eq!(conv.iterations, 0);
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn bicgstab_zero_diagonal_is_singular() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a = coo.to_csr();
        let r = bicgstab(&a, &[1.0, 1.0], &[0.0, 0.0], &IterOptions::default());
        assert!(matches!(r, Err(LinAlgError::Singular { .. })));
    }

    #[test]
    fn bicgstab_budget_exhaustion_reports_not_converged() {
        let a = laplacian_1d(32);
        let opts = IterOptions {
            max_iterations: 1,
            tolerance: 1e-15,
            ..Default::default()
        };
        let r = bicgstab(&a, &[1.0; 32], &[0.0; 32], &opts);
        assert!(matches!(r, Err(LinAlgError::NotConverged { .. })));
    }

    proptest! {
        /// BiCGStab agrees with the stationary sweeps on random strictly
        /// diagonally dominant systems (ISSUE 8 satellite).
        #[test]
        fn bicgstab_agrees_with_sweeps(
            offdiag in proptest::collection::vec(-0.2..0.2f64, 36),
            b in proptest::collection::vec(-5.0..5.0f64, 6),
        ) {
            let mut coo = CooMatrix::new(6, 6);
            for r in 0..6 {
                for c in 0..6 {
                    if r == c {
                        coo.push(r, c, 2.0);
                    } else {
                        coo.push(r, c, offdiag[r * 6 + c]);
                    }
                }
            }
            let a = coo.to_csr();
            let opts = IterOptions::default();
            let (xb, _) = bicgstab(&a, &b, &[0.0; 6], &opts).unwrap();
            let (xg, _) = gauss_seidel(&a, &b, &[0.0; 6], &opts).unwrap();
            prop_assert!(crate::vector::diff_norm_inf(&xb, &xg) < 1e-8);
            prop_assert!(residual_inf(&a, &xb, &b) < 1e-8);
        }
    }

    proptest! {
        #[test]
        fn methods_agree_on_dominant_systems(
            offdiag in proptest::collection::vec(-0.2..0.2f64, 16),
            b in proptest::collection::vec(-5.0..5.0f64, 4),
        ) {
            // Build a strictly diagonally dominant 4x4 matrix.
            let mut coo = CooMatrix::new(4, 4);
            for r in 0..4 {
                for c in 0..4 {
                    if r == c {
                        coo.push(r, c, 2.0);
                    } else {
                        coo.push(r, c, offdiag[r * 4 + c]);
                    }
                }
            }
            let a = coo.to_csr();
            let opts = IterOptions::default();
            let (xj, _) = jacobi(&a, &b, &[0.0; 4], &opts).unwrap();
            let (xg, _) = gauss_seidel(&a, &b, &[0.0; 4], &opts).unwrap();
            prop_assert!(crate::vector::diff_norm_inf(&xj, &xg) < 1e-8);
            prop_assert!(residual_inf(&a, &xj, &b) < 1e-8);
        }
    }
}
