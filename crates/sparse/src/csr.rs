//! Compressed sparse row matrices.

use crate::{CooMatrix, DenseMatrix, LinAlgError, Result};

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// CSR is the workhorse representation for the Markov solvers: the
/// uniformization and power-iteration kernels repeatedly compute `xᵀ·A`
/// (equivalently `Aᵀ·x`), which CSR supports with one pass over the data.
///
/// Construct via [`CooMatrix::to_csr`] or [`CsrMatrix::from_dense`].
///
/// # Example
///
/// ```
/// use sparsela::CooMatrix;
///
/// let mut coo = CooMatrix::new(2, 3);
/// coo.push(0, 0, 1.0);
/// coo.push(0, 2, 2.0);
/// coo.push(1, 1, 3.0);
/// let a = coo.to_csr();
/// assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
/// assert_eq!(a.mul_vec_transpose(&[1.0, 1.0]), vec![1.0, 3.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles a CSR matrix from raw parts.
    ///
    /// Intended for use by [`CooMatrix::to_csr`]; asserts structural
    /// invariants in debug builds.
    pub(crate) fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), rows + 1);
        debug_assert_eq!(col_idx.len(), values.len());
        debug_assert_eq!(*row_ptr.last().unwrap_or(&0), col_idx.len());
        debug_assert!(col_idx.iter().all(|&c| c < cols || cols == 0));
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Creates an empty (all-zero) `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds a CSR matrix from a dense row-major matrix, skipping zeros.
    pub fn from_dense(dense: &DenseMatrix) -> Self {
        let mut coo = CooMatrix::new(dense.rows(), dense.cols());
        for r in 0..dense.rows() {
            for c in 0..dense.cols() {
                coo.push(r, c, dense[(r, c)]);
            }
        }
        coo.to_csr()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(row, col)` (zero when not stored).
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "CsrMatrix::get: index ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over `(col, value)` pairs of one row, in ascending column
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> Row<'_> {
        assert!(row < self.rows, "CsrMatrix::row: row {row} out of bounds");
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        Row {
            cols: &self.col_idx[lo..hi],
            vals: &self.values[lo..hi],
            pos: 0,
        }
    }

    /// Iterates over all `(row, col, value)` triplets.
    pub fn iter(&self) -> Triplets<'_> {
        Triplets {
            matrix: self,
            row: 0,
            pos: 0,
        }
    }

    /// Computes `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec: length mismatch");
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Computes `y = A·x` into a caller-provided buffer (overwritten).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mul_vec_into: x length mismatch");
        assert_eq!(y.len(), self.rows, "mul_vec_into: y length mismatch");
        telemetry::work::count_spmv(1);
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yr = acc;
        }
        crate::checked::check_slice("csr.mul_vec", y);
    }

    /// Computes `y = Aᵀ·x` (equivalently the row vector `xᵀ·A`).
    ///
    /// This is the kernel used to advance probability distributions:
    /// `π' = π·P`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn mul_vec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "mul_vec_transpose: length mismatch");
        let mut y = vec![0.0; self.cols];
        self.mul_vec_transpose_into(x, &mut y);
        y
    }

    /// Computes `y = Aᵀ·x` into a caller-provided buffer (overwritten).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn mul_vec_transpose_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "mul_vec_transpose_into: x length");
        assert_eq!(y.len(), self.cols, "mul_vec_transpose_into: y length");
        telemetry::work::count_spmv(1);
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                y[self.col_idx[k]] += self.values[k] * xr;
            }
        }
        crate::checked::check_slice("csr.mul_vec_transpose", y);
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.cols, self.rows, self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(c, r, v);
        }
        coo.to_csr()
    }

    /// Returns `alpha · A` as a new matrix.
    pub fn scaled(&self, alpha: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= alpha;
        }
        out
    }

    /// The main diagonal (length `min(rows, cols)`).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Per-row sums `Σ_c A[r, c]`.
    ///
    /// For a CTMC generator these should all be (numerically) zero; for a
    /// stochastic matrix, one.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.row(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Converts to a dense matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinAlgError::InvalidValue`] if the matrix would exceed
    /// `limit` total entries (guard against accidental densification of a
    /// huge state space).
    pub fn to_dense_checked(&self, limit: usize) -> Result<DenseMatrix> {
        let total = self.rows.saturating_mul(self.cols);
        if total > limit {
            return Err(LinAlgError::InvalidValue {
                context: format!(
                    "refusing to densify {}x{} matrix ({} entries > limit {})",
                    self.rows, self.cols, total, limit
                ),
            });
        }
        Ok(self.densify())
    }

    /// Converts to a dense matrix without a size guard.
    pub fn to_dense(&self) -> DenseMatrix {
        self.densify()
    }

    fn densify(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            d[(r, c)] = v;
        }
        d
    }

    /// Maximum absolute row sum (the induced ∞-norm).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|r| self.row(r).map(|(_, v)| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }
}

/// Iterator over one row of a [`CsrMatrix`]; see [`CsrMatrix::row`].
#[derive(Debug, Clone)]
pub struct Row<'a> {
    cols: &'a [usize],
    vals: &'a [f64],
    pos: usize,
}

impl<'a> Iterator for Row<'a> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos < self.cols.len() {
            let item = (self.cols[self.pos], self.vals[self.pos]);
            self.pos += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.cols.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Row<'_> {}

/// Iterator over all stored triplets of a [`CsrMatrix`]; see
/// [`CsrMatrix::iter`].
#[derive(Debug, Clone)]
pub struct Triplets<'a> {
    matrix: &'a CsrMatrix,
    row: usize,
    pos: usize,
}

impl<'a> Iterator for Triplets<'a> {
    type Item = (usize, usize, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while self.row < self.matrix.rows {
            if self.pos < self.matrix.row_ptr[self.row + 1] {
                let k = self.pos;
                self.pos += 1;
                return Some((self.row, self.matrix.col_idx[k], self.matrix.values[k]));
            }
            self.row += 1;
            if self.row < self.matrix.rows {
                self.pos = self.matrix.row_ptr[self.row];
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 3, 0]]
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(1, 1, 3.0);
        coo.to_csr()
    }

    #[test]
    fn get_reads_stored_and_zero_entries() {
        let a = sample();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(1, 1), 3.0);
    }

    #[test]
    fn identity_behaves() {
        let i = CsrMatrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.mul_vec(&x), x);
        assert_eq!(i.mul_vec_transpose(&x), x);
        assert_eq!(i.nnz(), 4);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = sample();
        assert_eq!(a.mul_vec(&[1.0, 2.0, 3.0]), vec![7.0, 6.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = sample();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn transpose_swaps_shape() {
        let t = sample().transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 0), 2.0);
    }

    #[test]
    fn row_iterator_is_sorted_and_exact() {
        let a = sample();
        let r0: Vec<_> = a.row(0).collect();
        assert_eq!(r0, vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(a.row(0).len(), 2);
        assert_eq!(a.row(1).len(), 1);
    }

    #[test]
    fn triplets_iterate_all() {
        let a = sample();
        let all: Vec<_> = a.iter().collect();
        assert_eq!(all, vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
    }

    #[test]
    fn triplets_skip_empty_leading_rows() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(2, 2, 5.0);
        let a = coo.to_csr();
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(2, 2, 5.0)]);
    }

    #[test]
    fn diagonal_and_row_sums() {
        let a = sample();
        assert_eq!(a.diagonal(), vec![1.0, 3.0]);
        assert_eq!(a.row_sums(), vec![3.0, 3.0]);
    }

    #[test]
    fn scaled_multiplies_values() {
        let a = sample().scaled(2.0);
        assert_eq!(a.get(0, 2), 4.0);
    }

    #[test]
    fn norm_inf_is_max_abs_row_sum() {
        let a = sample();
        assert_eq!(a.norm_inf(), 3.0);
    }

    #[test]
    fn densify_guard_trips() {
        let a = CsrMatrix::zeros(100, 100);
        assert!(a.to_dense_checked(50).is_err());
        assert!(a.to_dense_checked(10_000).is_ok());
    }

    #[test]
    fn dense_roundtrip() {
        let a = sample();
        let d = a.to_dense();
        let back = CsrMatrix::from_dense(&d);
        assert_eq!(a, back);
    }

    #[test]
    fn zero_matrix_products() {
        let z = CsrMatrix::zeros(2, 2);
        assert_eq!(z.mul_vec(&[1.0, 1.0]), vec![0.0, 0.0]);
        assert_eq!(z.mul_vec_transpose(&[1.0, 1.0]), vec![0.0, 0.0]);
    }

    proptest! {
        #[test]
        fn transpose_product_identity(
            triplets in proptest::collection::vec(
                (0usize..5, 0usize..7, -4.0..4.0f64), 0..40),
            x in proptest::collection::vec(-2.0..2.0f64, 5),
        ) {
            let mut coo = CooMatrix::new(5, 7);
            for &(r, c, v) in &triplets {
                coo.push(r, c, v);
            }
            let a = coo.to_csr();
            let via_transpose_matrix = a.transpose().mul_vec(&x);
            let via_kernel = a.mul_vec_transpose(&x);
            for (u, v) in via_transpose_matrix.iter().zip(&via_kernel) {
                prop_assert!((u - v).abs() < 1e-10);
            }
        }

        #[test]
        fn mul_matches_dense(
            triplets in proptest::collection::vec(
                (0usize..4, 0usize..4, -4.0..4.0f64), 0..30),
            x in proptest::collection::vec(-2.0..2.0f64, 4),
        ) {
            let mut coo = CooMatrix::new(4, 4);
            for &(r, c, v) in &triplets {
                coo.push(r, c, v);
            }
            let a = coo.to_csr();
            let d = a.to_dense();
            let ys = a.mul_vec(&x);
            for r in 0..4 {
                let want: f64 = (0..4).map(|c| d[(r, c)] * x[c]).sum();
                prop_assert!((ys[r] - want).abs() < 1e-10);
            }
        }
    }
}
