//! BLAS-1 style vector kernels.
//!
//! All functions panic on length mismatch: these are internal hot-path
//! kernels and a mismatch is always a programming error, never a data error.

/// Computes the dot product `x · y`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
///
/// ```
/// assert_eq!(sparsela::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// In-place `y ← y + alpha * x`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
///
/// ```
/// let mut y = vec![1.0, 1.0];
/// sparsela::vector::axpy(2.0, &[1.0, 3.0], &mut y);
/// assert_eq!(y, vec![3.0, 7.0]);
/// ```
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    telemetry::work::count_axpy(1);
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `x ← alpha * x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// The 1-norm `Σ|xᵢ|`.
pub fn norm_l1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// The Euclidean norm `√(Σxᵢ²)`.
pub fn norm_l2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// The max-norm `max|xᵢ|` (0 for an empty vector).
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// The max-norm of the difference `max|xᵢ − yᵢ|`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn diff_norm_inf(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "diff_norm_inf: length mismatch");
    x.iter().zip(y).fold(0.0, |m, (a, b)| m.max((a - b).abs()))
}

/// Rescales `x` in place so that its entries sum to one.
///
/// Used to keep probability vectors stochastic in the face of floating-point
/// drift. Does nothing when the sum is zero or not finite.
///
/// Returns the sum prior to normalization.
pub fn normalize_l1(x: &mut [f64]) -> f64 {
    let s: f64 = x.iter().sum();
    if s != 0.0 && s.is_finite() {
        let inv = 1.0 / s;
        for xi in x.iter_mut() {
            *xi *= inv;
        }
    }
    s
}

/// Returns `true` when every entry is finite (no NaN / ±∞).
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// Returns `true` when `x` is a probability vector: non-negative entries
/// summing to 1 within `tol`.
pub fn is_stochastic(x: &[f64], tol: f64) -> bool {
    x.iter().all(|&v| v >= -tol) && (x.iter().sum::<f64>() - 1.0).abs() <= tol
}

/// Returns `true` when `a` and `b` differ by at most `tol` (absolute), the
/// workspace's sanctioned alternative to `==`/`!=` between floats. NaN
/// compares unequal to everything, matching IEEE semantics.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[-3.0]), -6.0);
    }

    #[test]
    fn axpy_with_zero_alpha_is_identity() {
        let mut y = vec![1.0, -2.0, 5.5];
        let before = y.clone();
        axpy(0.0, &[9.0, 9.0, 9.0], &mut y);
        assert_eq!(y, before);
    }

    #[test]
    fn norms_of_unit_vectors() {
        let e = [0.0, 1.0, 0.0];
        assert_eq!(norm_l1(&e), 1.0);
        assert_eq!(norm_l2(&e), 1.0);
        assert_eq!(norm_inf(&e), 1.0);
    }

    #[test]
    fn norm_inf_of_empty_is_zero() {
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn normalize_makes_stochastic() {
        let mut x = vec![1.0, 3.0];
        let s = normalize_l1(&mut x);
        assert_eq!(s, 4.0);
        assert!(is_stochastic(&x, 1e-15));
        assert_eq!(x, vec![0.25, 0.75]);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0, 0.0];
        normalize_l1(&mut x);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn stochastic_rejects_negative() {
        assert!(!is_stochastic(&[-0.5, 1.5], 1e-9));
        assert!(is_stochastic(&[0.5, 0.5], 1e-9));
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn dot_is_symmetric(x in proptest::collection::vec(-1e3..1e3f64, 0..20)) {
            let y: Vec<f64> = x.iter().rev().cloned().collect();
            prop_assert!((dot(&x, &y) - dot(&y, &x)).abs() < 1e-9);
        }

        #[test]
        fn cauchy_schwarz(
            x in proptest::collection::vec(-1e3..1e3f64, 1..20),
        ) {
            let y: Vec<f64> = x.iter().map(|v| v * 0.5 + 1.0).collect();
            prop_assert!(dot(&x, &y).abs() <= norm_l2(&x) * norm_l2(&y) + 1e-6);
        }

        #[test]
        fn normalize_yields_probability_vector(
            x in proptest::collection::vec(1e-3..1e3f64, 1..30),
        ) {
            let mut x = x;
            normalize_l1(&mut x);
            prop_assert!(is_stochastic(&x, 1e-12));
        }

        #[test]
        fn triangle_inequality_inf(
            x in proptest::collection::vec(-1e3..1e3f64, 1..20),
        ) {
            let y: Vec<f64> = x.iter().map(|v| -v * 2.0).collect();
            let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
            prop_assert!(norm_inf(&sum) <= norm_inf(&x) + norm_inf(&y) + 1e-9);
        }
    }
}
