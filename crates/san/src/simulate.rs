//! Discrete-event simulation of SAN models.
//!
//! UltraSAN shipped a simulator next to its analytic solvers, for models too
//! large to generate and as an independent check on reward solutions. This
//! module plays that role: it executes any [`SanModel`]
//! trajectory-by-trajectory — timed activities race with exponential
//! samples, instantaneous activities resolve by priority and weight — and
//! estimates the same reward variables the analytic layer solves, without
//! ever generating the state space.
//!
//! The estimator intentionally shares **no code** with the reachability /
//! CTMC path, so agreement between the two is a meaningful end-to-end test
//! (see `estimate_instant_reward` tests and the workspace integration
//! suite).

use crate::model::ActivityKind;
use crate::semantics;
use crate::{Marking, Result, RewardSpec, SanError, SanModel};

/// A deterministic pseudo-random source for SAN simulation (SplitMix64 —
/// kept dependency-free because this crate otherwise needs no RNG).
#[derive(Debug, Clone)]
pub struct SanRng {
    state: u64,
}

impl SanRng {
    /// Creates a generator from a seed.
    pub fn from_seed(seed: u64) -> Self {
        SanRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential draw with the given rate (∞ for rate 0).
    pub fn exp(&mut self, rate: f64) -> f64 {
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        -(1.0 - self.uniform()).ln() / rate
    }

    /// Index drawn from normalized weights.
    fn pick(&mut self, weights: &[(usize, f64)]) -> usize {
        let u = self.uniform();
        let mut acc = 0.0;
        for &(idx, w) in weights {
            acc += w;
            if u < acc {
                return idx;
            }
        }
        weights.last().map(|&(idx, _)| idx).unwrap_or(0)
    }
}

/// Execution limits for a simulated trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationOptions {
    /// Hard cap on fired events per trajectory (guards against immortal
    /// models).
    pub max_events: usize,
    /// Cap on consecutive instantaneous firings (vanishing-loop guard,
    /// mirroring the analytic generator).
    pub max_vanishing_depth: usize,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        SimulationOptions {
            max_events: 10_000_000,
            max_vanishing_depth: 128,
        }
    }
}

/// One simulated trajectory's summary against a reward spec.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Marking at the end of the horizon.
    pub final_marking: Marking,
    /// Rate reward accumulated over `[0, horizon]`.
    pub accumulated_reward: f64,
    /// Rate reward value at the horizon instant.
    pub final_rate: f64,
    /// Number of timed firings.
    pub timed_events: usize,
}

/// Simulates one trajectory over `[0, horizon]`, accumulating the spec's
/// rate reward along the way.
///
/// # Errors
///
/// * [`SanError::VanishingLoop`] when instantaneous activities cycle.
/// * [`SanError::InvalidFunction`] on invalid rates/probabilities.
/// * [`SanError::StateSpaceLimit`] when `max_events` is exceeded (reusing
///   the limit error to mean "simulation budget exhausted").
pub fn simulate_trajectory(
    model: &SanModel,
    spec: &RewardSpec,
    horizon: f64,
    opts: &SimulationOptions,
    rng: &mut SanRng,
) -> Result<Trajectory> {
    let mut marking = model.initial_marking();
    let mut t = 0.0;
    let mut accumulated = 0.0;
    let mut events = 0usize;

    // Resolve any initial vanishing state.
    resolve_instantaneous(model, &mut marking, opts, rng)?;

    loop {
        let enabled = semantics::enabled_timed(model, &marking)?;
        let total_rate: f64 = enabled.iter().map(|&(_, r)| r).sum();
        let dwell = rng.exp(total_rate);
        let rate_now = spec.rate_of(&marking);

        if t + dwell >= horizon || enabled.is_empty() {
            accumulated += rate_now * (horizon - t);
            return Ok(Trajectory {
                final_rate: rate_now,
                final_marking: marking,
                accumulated_reward: accumulated,
                timed_events: events,
            });
        }
        accumulated += rate_now * dwell;
        t += dwell;
        events += 1;
        if events > opts.max_events {
            return Err(SanError::StateSpaceLimit {
                limit: opts.max_events,
            });
        }

        // Select the firing activity proportionally to its rate.
        let weighted: Vec<(usize, f64)> = enabled
            .iter()
            .enumerate()
            .map(|(k, &(_, r))| (k, r / total_rate))
            .collect();
        let (act, _) = enabled[rng.pick(&weighted)];

        // Select a case and fire.
        let cases = semantics::case_distribution(model, act, &marking)?;
        let case = cases[rng.pick(
            &cases
                .iter()
                .enumerate()
                .map(|(k, &(_, p))| (k, p))
                .collect::<Vec<_>>(),
        )]
        .0;
        marking = semantics::fire(model, act, case, &marking)?;
        resolve_instantaneous(model, &mut marking, opts, rng)?;
    }
}

fn resolve_instantaneous(
    model: &SanModel,
    marking: &mut Marking,
    opts: &SimulationOptions,
    rng: &mut SanRng,
) -> Result<()> {
    for _ in 0..opts.max_vanishing_depth {
        let enabled = semantics::enabled_instantaneous(model, marking)?;
        if enabled.is_empty() {
            return Ok(());
        }
        let weighted: Vec<(usize, f64)> = enabled
            .iter()
            .enumerate()
            .map(|(k, &(_, p))| (k, p))
            .collect();
        let (act, _) = enabled[rng.pick(&weighted)];
        let cases = semantics::case_distribution(model, act, marking)?;
        let case = cases[rng.pick(
            &cases
                .iter()
                .enumerate()
                .map(|(k, &(_, p))| (k, p))
                .collect::<Vec<_>>(),
        )]
        .0;
        *marking = semantics::fire(model, act, case, marking)?;
    }
    // Exhausted the depth: find a name for the error.
    let name = model
        .activity_ids()
        .map(|id| model.activity(id))
        .find(|a| matches!(a.kind, ActivityKind::Instantaneous { .. }))
        .map(|a| a.name.clone())
        .unwrap_or_else(|| "<unknown>".to_string());
    Err(SanError::VanishingLoop {
        depth: opts.max_vanishing_depth,
        activity: name,
    })
}

/// Monte-Carlo estimate of an expected reward variable by simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimEstimate {
    /// Sample mean.
    pub mean: f64,
    /// 95% confidence half-width (normal approximation).
    pub half_width_95: f64,
    /// Replications used.
    pub replications: usize,
}

/// Estimates the expected **instant-of-time** rate reward at `t` from
/// `replications` independent trajectories.
///
/// # Errors
///
/// Propagates trajectory failures.
pub fn estimate_instant_reward(
    model: &SanModel,
    spec: &RewardSpec,
    t: f64,
    replications: usize,
    seed: u64,
    opts: &SimulationOptions,
) -> Result<SimEstimate> {
    estimate(model, spec, t, replications, seed, opts, |tr| tr.final_rate)
}

/// Estimates the expected **accumulated** rate reward over `[0, t]`.
///
/// # Errors
///
/// Propagates trajectory failures.
pub fn estimate_accumulated_reward(
    model: &SanModel,
    spec: &RewardSpec,
    t: f64,
    replications: usize,
    seed: u64,
    opts: &SimulationOptions,
) -> Result<SimEstimate> {
    estimate(model, spec, t, replications, seed, opts, |tr| {
        tr.accumulated_reward
    })
}

fn estimate<F: Fn(&Trajectory) -> f64>(
    model: &SanModel,
    spec: &RewardSpec,
    t: f64,
    replications: usize,
    seed: u64,
    opts: &SimulationOptions,
    extract: F,
) -> Result<SimEstimate> {
    let n = replications.max(1);
    let mut sum = 0.0;
    let mut sq = 0.0;
    for i in 0..n {
        let mut rng = SanRng::from_seed(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
        let tr = simulate_trajectory(model, spec, t, opts, &mut rng)?;
        let v = extract(&tr);
        sum += v;
        sq += v * v;
    }
    let mean = sum / n as f64;
    let var = (sq / n as f64 - mean * mean).max(0.0);
    Ok(SimEstimate {
        mean,
        half_width_95: 1.96 * (var / n as f64).sqrt(),
        replications: n,
    })
}

/// Estimates the expected **steady-state** rate reward by a single long
/// trajectory with batch means: the run is split into `batches` equal
/// windows after a warm-up of one window, and the confidence interval is
/// formed over the batch averages (the standard output analysis for
/// steady-state simulation).
///
/// # Errors
///
/// Returns [`SanError::InvalidModel`] when `batches < 2` or the horizon is
/// not positive; propagates trajectory failures.
pub fn estimate_steady_reward(
    model: &SanModel,
    spec: &RewardSpec,
    batch_length: f64,
    batches: usize,
    seed: u64,
    opts: &SimulationOptions,
) -> Result<SimEstimate> {
    if batches < 2 {
        return Err(SanError::InvalidModel {
            context: format!("batch-means needs >= 2 batches, got {batches}"),
        });
    }
    if !batch_length.is_finite() || batch_length <= 0.0 {
        return Err(SanError::InvalidModel {
            context: format!("batch length must be finite and > 0, got {batch_length}"),
        });
    }
    let mut rng = SanRng::from_seed(seed);
    let mut marking = model.initial_marking();
    resolve_instantaneous(model, &mut marking, opts, &mut rng)?;

    // One continuous trajectory; the first window is warm-up and discarded.
    let mut batch_means = Vec::with_capacity(batches);
    let mut events = 0usize;
    for b in 0..=batches {
        let mut t_in_batch = 0.0;
        let mut acc = 0.0;
        while t_in_batch < batch_length {
            let enabled = semantics::enabled_timed(model, &marking)?;
            let total_rate: f64 = enabled.iter().map(|&(_, r)| r).sum();
            let dwell = rng.exp(total_rate);
            let rate_now = spec.rate_of(&marking);
            if t_in_batch + dwell >= batch_length || enabled.is_empty() {
                acc += rate_now * (batch_length - t_in_batch);
                t_in_batch = batch_length;
            } else {
                acc += rate_now * dwell;
                t_in_batch += dwell;
                events += 1;
                if events > opts.max_events {
                    return Err(SanError::StateSpaceLimit {
                        limit: opts.max_events,
                    });
                }
                let weighted: Vec<(usize, f64)> = enabled
                    .iter()
                    .enumerate()
                    .map(|(k, &(_, r))| (k, r / total_rate))
                    .collect();
                let (act, _) = enabled[rng.pick(&weighted)];
                let cases = semantics::case_distribution(model, act, &marking)?;
                let case = cases[rng.pick(
                    &cases
                        .iter()
                        .enumerate()
                        .map(|(k, &(_, p))| (k, p))
                        .collect::<Vec<_>>(),
                )]
                .0;
                marking = semantics::fire(model, act, case, &marking)?;
                resolve_instantaneous(model, &mut marking, opts, &mut rng)?;
            }
        }
        if b > 0 {
            batch_means.push(acc / batch_length);
        }
    }
    let n = batch_means.len() as f64;
    let mean = batch_means.iter().sum::<f64>() / n;
    let var = batch_means
        .iter()
        .map(|m| (m - mean) * (m - mean))
        .sum::<f64>()
        / (n - 1.0);
    Ok(SimEstimate {
        mean,
        half_width_95: 1.96 * (var / n).sqrt(),
        replications: batch_means.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activity, Analyzer, Case};

    fn up_down() -> (SanModel, crate::PlaceId) {
        let mut m = SanModel::new("updown");
        let up = m.add_place("up", 1);
        m.add_activity(Activity::timed("fail", 0.5).with_input_arc(up, 1))
            .unwrap();
        m.add_activity(
            Activity::timed("repair", 1.5)
                .with_enabling(move |mk| mk.tokens(up) == 0)
                .with_output_arc(up, 1),
        )
        .unwrap();
        (m, up)
    }

    #[test]
    fn trajectory_is_deterministic_per_seed() {
        let (m, up) = up_down();
        let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(up) == 1, 1.0);
        let mut a = SanRng::from_seed(3);
        let mut b = SanRng::from_seed(3);
        let ta = simulate_trajectory(&m, &spec, 10.0, &Default::default(), &mut a).unwrap();
        let tb = simulate_trajectory(&m, &spec, 10.0, &Default::default(), &mut b).unwrap();
        assert_eq!(ta, tb);
    }

    #[test]
    fn simulated_availability_matches_analytic() {
        let (m, up) = up_down();
        let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(up) == 1, 1.0);
        let t = 2.0;
        let analytic = Analyzer::generate(&m, &Default::default())
            .unwrap()
            .instant_reward(&spec, t)
            .unwrap();
        let spec2 = RewardSpec::new().rate_when(move |mk| mk.tokens(up) == 1, 1.0);
        let est = estimate_instant_reward(&m, &spec2, t, 4000, 7, &Default::default()).unwrap();
        assert!(
            (est.mean - analytic).abs() < est.half_width_95.max(0.03),
            "simulated {} ± {} vs analytic {analytic}",
            est.mean,
            est.half_width_95
        );
    }

    #[test]
    fn simulated_accumulated_matches_analytic() {
        let (m, up) = up_down();
        let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(up) == 1, 1.0);
        let t = 5.0;
        let analytic = Analyzer::generate(&m, &Default::default())
            .unwrap()
            .accumulated_reward(&spec, t)
            .unwrap();
        let spec2 = RewardSpec::new().rate_when(move |mk| mk.tokens(up) == 1, 1.0);
        let est =
            estimate_accumulated_reward(&m, &spec2, t, 4000, 11, &Default::default()).unwrap();
        assert!(
            (est.mean - analytic).abs() < 2.0 * est.half_width_95.max(0.02),
            "simulated {} ± {} vs analytic {analytic}",
            est.mean,
            est.half_width_95
        );
    }

    #[test]
    fn batch_means_steady_reward_matches_analytic() {
        let (m, up) = up_down();
        let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(up) == 1, 1.0);
        let analytic = Analyzer::generate(&m, &Default::default())
            .unwrap()
            .steady_reward(&spec)
            .unwrap(); // 1.5/2.0 = 0.75
        let spec2 = RewardSpec::new().rate_when(move |mk| mk.tokens(up) == 1, 1.0);
        let est = estimate_steady_reward(&m, &spec2, 200.0, 20, 13, &Default::default()).unwrap();
        assert_eq!(est.replications, 20);
        assert!(
            (est.mean - analytic).abs() < (3.0 * est.half_width_95).max(0.02),
            "batch-means {} ± {} vs analytic {analytic}",
            est.mean,
            est.half_width_95
        );
    }

    #[test]
    fn batch_means_validates_inputs() {
        let (m, _) = up_down();
        let spec = RewardSpec::new();
        assert!(estimate_steady_reward(&m, &spec, 10.0, 1, 1, &Default::default()).is_err());
        assert!(estimate_steady_reward(&m, &spec, 0.0, 5, 1, &Default::default()).is_err());
        assert!(estimate_steady_reward(&m, &spec, f64::NAN, 5, 1, &Default::default()).is_err());
    }

    #[test]
    fn absorbing_model_stops_quietly() {
        // After absorption no activity is enabled; the trajectory coasts to
        // the horizon.
        let mut m = SanModel::new("absorbing");
        let p = m.add_place("p", 1);
        m.add_activity(Activity::timed("die", 10.0).with_input_arc(p, 1))
            .unwrap();
        let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(p) == 0, 1.0);
        let mut rng = SanRng::from_seed(1);
        let tr = simulate_trajectory(&m, &spec, 100.0, &Default::default(), &mut rng).unwrap();
        assert_eq!(tr.final_marking.tokens(p), 0);
        assert!(tr.accumulated_reward > 90.0);
        assert_eq!(tr.timed_events, 1);
    }

    #[test]
    fn cases_split_by_probability() {
        // Branch with 0.3/0.7 cases; over many trajectories the terminal
        // markings should split accordingly.
        let mut m = SanModel::new("branch");
        let src = m.add_place("src", 1);
        let a = m.add_place("a", 0);
        let b = m.add_place("b", 0);
        m.add_activity(
            Activity::timed("go", 100.0)
                .with_input_arc(src, 1)
                .with_case(Case::with_probability(0.3).with_output_arc(a, 1))
                .with_case(Case::with_probability(0.7).with_output_arc(b, 1)),
        )
        .unwrap();
        let spec = RewardSpec::new();
        let mut hits_a = 0;
        let n = 3000;
        for seed in 0..n {
            let mut rng = SanRng::from_seed(seed);
            let tr = simulate_trajectory(&m, &spec, 1.0, &Default::default(), &mut rng).unwrap();
            if tr.final_marking.tokens(a) == 1 {
                hits_a += 1;
            }
        }
        let frac = hits_a as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "case split {frac}");
    }

    #[test]
    fn instantaneous_activities_resolve_during_simulation() {
        let mut m = SanModel::new("vanish");
        let p = m.add_place("p", 1);
        let mid = m.add_place("mid", 0);
        let done = m.add_place("done", 0);
        m.add_activity(
            Activity::timed("slow", 5.0)
                .with_input_arc(p, 1)
                .with_output_arc(mid, 1),
        )
        .unwrap();
        m.add_activity(
            Activity::instantaneous("fast")
                .with_input_arc(mid, 1)
                .with_output_arc(done, 1),
        )
        .unwrap();
        let spec = RewardSpec::new();
        let mut rng = SanRng::from_seed(9);
        let tr = simulate_trajectory(&m, &spec, 50.0, &Default::default(), &mut rng).unwrap();
        assert_eq!(tr.final_marking.tokens(mid), 0);
        assert_eq!(tr.final_marking.tokens(done), 1);
    }

    #[test]
    fn vanishing_loop_detected_in_simulation() {
        let mut m = SanModel::new("loop");
        let p = m.add_place("p", 1);
        let q = m.add_place("q", 0);
        m.add_activity(
            Activity::instantaneous("pq")
                .with_input_arc(p, 1)
                .with_output_arc(q, 1),
        )
        .unwrap();
        m.add_activity(
            Activity::instantaneous("qp")
                .with_input_arc(q, 1)
                .with_output_arc(p, 1),
        )
        .unwrap();
        let spec = RewardSpec::new();
        let mut rng = SanRng::from_seed(2);
        assert!(matches!(
            simulate_trajectory(&m, &spec, 1.0, &Default::default(), &mut rng),
            Err(SanError::VanishingLoop { .. })
        ));
    }

    #[test]
    fn event_budget_enforced() {
        let (m, up) = up_down();
        let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(up) == 1, 1.0);
        let opts = SimulationOptions {
            max_events: 5,
            ..Default::default()
        };
        let mut rng = SanRng::from_seed(4);
        assert!(matches!(
            simulate_trajectory(&m, &spec, 1e9, &opts, &mut rng),
            Err(SanError::StateSpaceLimit { limit: 5 })
        ));
    }
}
