//! End-to-end reward model solution on a SAN.

use std::sync::{Arc, Mutex};

use markov::steady::SteadyMethod;
use markov::transient;

use crate::{Marking, ReachabilityOptions, Result, RewardSpec, SanModel, StateSpace};

/// Convenience front end bundling a generated [`StateSpace`] with solver
/// configuration: the three reward variables of the paper (instant-of-time,
/// accumulated interval-of-time, steady-state) in one call each.
///
/// The stationary distribution is solved at most once per analyzer: every
/// steady-state query shares the cached vector (see
/// [`Analyzer::steady_distribution`]), and a warm-start hint from a
/// neighboring parameter point can be supplied via
/// [`Analyzer::with_steady_hint`] to cut the iteration count of the first
/// solve.
///
/// See the [crate-level example](crate) for usage.
pub struct Analyzer {
    space: StateSpace,
    transient_options: transient::Options,
    steady_method: SteadyMethod,
    steady_hint: Option<Vec<f64>>,
    steady_cache: Mutex<Option<Arc<Vec<f64>>>>,
}

impl Analyzer {
    /// Generates the state space of `model` and wraps it with default solver
    /// options.
    ///
    /// # Errors
    ///
    /// Propagates reachability failures (state-space limit, vanishing loops,
    /// invalid marking functions).
    pub fn generate(model: &SanModel, opts: &ReachabilityOptions) -> Result<Self> {
        Ok(Analyzer::from_state_space(StateSpace::generate(
            model, opts,
        )?))
    }

    /// Wraps an already generated state space.
    pub fn from_state_space(space: StateSpace) -> Self {
        Analyzer {
            space,
            transient_options: transient::Options::default(),
            steady_method: SteadyMethod::Direct,
            steady_hint: None,
            steady_cache: Mutex::new(None),
        }
    }

    /// Replaces the transient solver options.
    pub fn with_transient_options(mut self, options: transient::Options) -> Self {
        self.transient_options = options;
        self
    }

    /// Replaces the steady-state method.
    pub fn with_steady_method(mut self, method: SteadyMethod) -> Self {
        self.steady_method = method;
        self.invalidate_steady_cache();
        self
    }

    /// Seeds the steady-state solver with a warm-start hint — typically the
    /// stationary vector from a neighboring point of a parameter sweep.
    /// Iterative methods start from it; direct methods ignore it. The hint
    /// never affects the answer, only the iteration count.
    pub fn with_steady_hint(mut self, hint: Vec<f64>) -> Self {
        self.steady_hint = Some(hint);
        self.invalidate_steady_cache();
        self
    }

    fn invalidate_steady_cache(&mut self) {
        let mut cache = self.steady_cache.lock().unwrap_or_else(|e| e.into_inner());
        *cache = None;
    }

    /// The underlying state space.
    pub fn state_space(&self) -> &StateSpace {
        &self.space
    }

    /// The state distribution at time `t` starting from the model's initial
    /// distribution.
    ///
    /// # Errors
    ///
    /// Propagates transient-solver failures.
    pub fn distribution_at(&self, t: f64) -> Result<Vec<f64>> {
        Ok(transient::distribution(
            self.space.ctmc(),
            self.space.initial_distribution(),
            t,
            &self.transient_options,
        )?)
    }

    /// Expected **instant-of-time** reward at time `t`.
    ///
    /// # Errors
    ///
    /// Propagates transient-solver failures.
    pub fn instant_reward(&self, spec: &RewardSpec, t: f64) -> Result<f64> {
        let pi = self.distribution_at(t)?;
        Ok(spec.to_structure(&self.space).instant(&pi))
    }

    /// Expected **accumulated interval-of-time** reward over `[0, t]`.
    ///
    /// # Errors
    ///
    /// Propagates transient-solver failures.
    pub fn accumulated_reward(&self, spec: &RewardSpec, t: f64) -> Result<f64> {
        let l = transient::occupancy(
            self.space.ctmc(),
            self.space.initial_distribution(),
            t,
            &self.transient_options,
        )?;
        Ok(spec
            .to_structure(&self.space)
            .accumulated(self.space.ctmc(), &l)?)
    }

    /// The stationary distribution, solved on first use and cached: reward
    /// queries that need π more than once (e.g. a rate and an impulse
    /// variable on the same model) pay for a single solve.
    ///
    /// # Errors
    ///
    /// Propagates steady-state solver failures (e.g. a reducible chain).
    pub fn steady_distribution(&self) -> Result<Arc<Vec<f64>>> {
        {
            let cache = self.steady_cache.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(pi) = cache.as_ref() {
                return Ok(Arc::clone(pi));
            }
        }
        let pi = Arc::new(markov::steady::steady_state_with_hint(
            self.space.ctmc(),
            &self.steady_method,
            self.steady_hint.as_deref(),
        )?);
        let mut cache = self.steady_cache.lock().unwrap_or_else(|e| e.into_inner());
        *cache = Some(Arc::clone(&pi));
        Ok(pi)
    }

    /// Expected **steady-state** reward.
    ///
    /// # Errors
    ///
    /// Propagates steady-state solver failures (e.g. a reducible chain).
    pub fn steady_reward(&self, spec: &RewardSpec) -> Result<f64> {
        let pi = self.steady_distribution()?;
        Ok(spec.to_structure(&self.space).instant(&pi))
    }

    /// The probability that the marking satisfies `predicate` at time `t`.
    ///
    /// # Errors
    ///
    /// Propagates transient-solver failures.
    pub fn probability_at<F: Fn(&Marking) -> bool>(&self, t: f64, predicate: F) -> Result<f64> {
        let pi = self.distribution_at(t)?;
        Ok(self.space.probability_of(&pi, predicate))
    }
}

impl std::fmt::Debug for Analyzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analyzer")
            .field("space", &self.space)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Activity;

    /// Two-state failure/repair SAN used across the tests.
    fn up_down(fail: f64, repair: f64) -> (SanModel, crate::PlaceId) {
        let mut m = SanModel::new("updown");
        let up = m.add_place("up", 1);
        m.add_activity(Activity::timed("fail", fail).with_input_arc(up, 1))
            .unwrap();
        m.add_activity(
            Activity::timed("repair", repair)
                .with_output_arc(up, 1)
                .with_enabling(move |mk| mk.tokens(up) == 0),
        )
        .unwrap();
        (m, up)
    }

    #[test]
    fn steady_availability_closed_form() {
        let (m, up) = up_down(0.1, 1.0);
        let an = Analyzer::generate(&m, &Default::default()).unwrap();
        let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(up) == 1, 1.0);
        let a = an.steady_reward(&spec).unwrap();
        assert!((a - 10.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn transient_availability_closed_form() {
        let (m, up) = up_down(0.5, 1.5);
        let an = Analyzer::generate(&m, &Default::default()).unwrap();
        let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(up) == 1, 1.0);
        let t = 0.8;
        let got = an.instant_reward(&spec, t).unwrap();
        // p_up(t) = µ/(λ+µ) + λ/(λ+µ)·e^{−(λ+µ)t}.
        let want = 1.5 / 2.0 + 0.5 / 2.0 * (-2.0f64 * t).exp();
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn accumulated_uptime_closed_form() {
        let (m, up) = up_down(0.5, 1.5);
        let an = Analyzer::generate(&m, &Default::default()).unwrap();
        let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(up) == 1, 1.0);
        let t = 2.0;
        let got = an.accumulated_reward(&spec, t).unwrap();
        // ∫₀ᵗ p_up = (µ/(λ+µ))·t + (λ/(λ+µ)²)(1 − e^{−(λ+µ)t}).
        let want = 0.75 * t + 0.5 / 4.0 * (1.0 - (-2.0f64 * t).exp());
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn probability_at_complements() {
        let (m, up) = up_down(1.0, 1.0);
        let an = Analyzer::generate(&m, &Default::default()).unwrap();
        let p_up = an
            .probability_at(0.7, move |mk| mk.tokens(up) == 1)
            .unwrap();
        let p_down = an
            .probability_at(0.7, move |mk| mk.tokens(up) == 0)
            .unwrap();
        assert!((p_up + p_down - 1.0).abs() < 1e-12);
    }

    #[test]
    fn steady_distribution_is_cached_and_hint_is_harmless() {
        let (m, up) = up_down(0.1, 1.0);
        let an = Analyzer::generate(&m, &Default::default()).unwrap();
        let first = an.steady_distribution().unwrap();
        let second = an.steady_distribution().unwrap();
        // Same allocation: the second query reused the cached solve.
        assert!(std::sync::Arc::ptr_eq(&first, &second));

        // A warm-start hint (even a sloppy one) must not change the answer.
        let hinted = Analyzer::generate(&m, &Default::default())
            .unwrap()
            .with_steady_method(markov::steady::SteadyMethod::GaussSeidel {
                options: Default::default(),
            })
            .with_steady_hint(vec![0.5, 0.5]);
        let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(up) == 1, 1.0);
        let a = hinted.steady_reward(&spec).unwrap();
        assert!((a - 10.0 / 11.0).abs() < 1e-8);
    }

    #[test]
    fn steady_reward_of_absorbing_unichain_is_point_mass() {
        // Absorbing failure with no repair: the long-run distribution puts
        // all mass on the failed state (unichain semantics).
        let mut m = SanModel::new("absorbing");
        let up = m.add_place("up", 1);
        m.add_activity(Activity::timed("fail", 1.0).with_input_arc(up, 1))
            .unwrap();
        let an = Analyzer::generate(&m, &Default::default()).unwrap();
        let up_spec = RewardSpec::new().rate_when(move |mk| mk.tokens(up) == 1, 1.0);
        assert_eq!(an.steady_reward(&up_spec).unwrap(), 0.0);
    }

    #[test]
    fn steady_reward_of_truly_reducible_chain_errors() {
        // Two absorbing states reached probabilistically: the long-run
        // distribution depends on chance, so the solver must refuse.
        let mut m2 = SanModel::new("competing");
        let live = m2.add_place("live", 1);
        let x = m2.add_place("x", 0);
        let y = m2.add_place("y", 0);
        m2.add_activity(
            Activity::timed("branch", 1.0)
                .with_input_arc(live, 1)
                .with_case(crate::Case::with_probability(0.5).with_output_arc(x, 1))
                .with_case(crate::Case::with_probability(0.5).with_output_arc(y, 1)),
        )
        .unwrap();
        let an = Analyzer::generate(&m2, &Default::default()).unwrap();
        let spec = RewardSpec::new().rate_when(|_| true, 1.0);
        assert!(an.steady_reward(&spec).is_err());
    }
}
