//! Execution semantics: enabling, case selection, and firing.

use crate::model::{Activity, ActivityId, ActivityKind, SanModel};
use crate::{Marking, Result, SanError};

/// Returns `true` when `activity` is enabled in `marking`: all input arcs
/// are covered, all inline enabling predicates hold, and all input gate
/// predicates hold.
pub(crate) fn is_enabled(model: &SanModel, activity: &Activity, marking: &Marking) -> bool {
    activity
        .input_arcs
        .iter()
        .all(|&(p, c)| marking.tokens(p) >= c)
        && activity.enabling.iter().all(|pred| pred(marking))
        && activity
            .input_gates
            .iter()
            .all(|&g| (model.input_gate(g).predicate)(marking))
}

/// Enabled timed activities with their (validated) rates. Timed activities
/// are suppressed while any instantaneous activity is enabled (maximal
/// progress).
pub(crate) fn enabled_timed(model: &SanModel, marking: &Marking) -> Result<Vec<(ActivityId, f64)>> {
    let mut out = Vec::new();
    for id in model.activity_ids() {
        let a = model.activity(id);
        if a.kind != ActivityKind::Timed || !is_enabled(model, a, marking) {
            continue;
        }
        let rate = (a.rate)(marking);
        if !rate.is_finite() || rate < 0.0 {
            return Err(SanError::InvalidFunction {
                context: format!(
                    "activity '{}' returned rate {rate} in marking {marking}",
                    a.name
                ),
            });
        }
        if rate > 0.0 {
            out.push((id, rate));
        }
    }
    Ok(out)
}

/// Enabled instantaneous activities at the highest enabled priority, with
/// their normalized selection probabilities.
pub(crate) fn enabled_instantaneous(
    model: &SanModel,
    marking: &Marking,
) -> Result<Vec<(ActivityId, f64)>> {
    let mut best: Vec<(ActivityId, f64)> = Vec::new();
    let mut best_priority = 0u32;
    for id in model.activity_ids() {
        let a = model.activity(id);
        let (priority, weight) = match a.kind {
            ActivityKind::Instantaneous { priority, weight } => (priority, weight),
            ActivityKind::Timed => continue,
        };
        if !is_enabled(model, a, marking) {
            continue;
        }
        if best.is_empty() || priority > best_priority {
            best_priority = priority;
            best.clear();
            best.push((id, weight));
        } else if priority == best_priority {
            best.push((id, weight));
        }
    }
    let total: f64 = best.iter().map(|&(_, w)| w).sum();
    if total > 0.0 {
        for (_, w) in &mut best {
            *w /= total;
        }
    }
    Ok(best)
}

/// The normalized case distribution of `activity` in `marking`.
///
/// # Errors
///
/// Returns [`SanError::InvalidFunction`] when a case probability is
/// negative/non-finite or all case probabilities are zero.
pub(crate) fn case_distribution(
    model: &SanModel,
    activity: ActivityId,
    marking: &Marking,
) -> Result<Vec<(usize, f64)>> {
    let a = model.activity(activity);
    let mut probs = Vec::with_capacity(a.cases.len());
    let mut total = 0.0;
    for (i, case) in a.cases.iter().enumerate() {
        let p = (case.probability)(marking);
        if !p.is_finite() || p < 0.0 {
            return Err(SanError::InvalidFunction {
                context: format!(
                    "case {i} of activity '{}' returned probability {p} in marking {marking}",
                    a.name
                ),
            });
        }
        total += p;
        probs.push((i, p));
    }
    if total <= 0.0 {
        return Err(SanError::InvalidFunction {
            context: format!(
                "all case probabilities of activity '{}' are zero in marking {marking}",
                a.name
            ),
        });
    }
    probs.retain(|&(_, p)| p > 0.0);
    for (_, p) in &mut probs {
        *p /= total;
    }
    Ok(probs)
}

/// Fires `activity` choosing `case`, producing the successor marking.
///
/// Effect order (UltraSAN semantics): input arc tokens removed, input gate
/// functions applied, case output arcs added, case output gates applied.
///
/// # Errors
///
/// Returns [`SanError::InvalidFunction`] when an input arc cannot be
/// covered — firing a disabled activity is a generator bug surfaced as an
/// error rather than silent corruption.
pub(crate) fn fire(
    model: &SanModel,
    activity: ActivityId,
    case: usize,
    marking: &Marking,
) -> Result<Marking> {
    let a = model.activity(activity);
    let mut next = marking.clone();
    for &(p, c) in &a.input_arcs {
        if !next.remove_tokens(p, c) {
            return Err(SanError::InvalidFunction {
                context: format!(
                    "firing '{}' would drive place {} negative in {marking}",
                    a.name,
                    model.place_name(p)
                ),
            });
        }
    }
    for &g in &a.input_gates {
        (model.input_gate(g).function)(&mut next);
    }
    let case_def = &a.cases[case];
    for &(p, c) in &case_def.output_arcs {
        next.add_tokens(p, c);
    }
    for &g in &case_def.output_gates {
        (model.output_gate(g).function)(&mut next);
    }
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Activity, Case};

    fn model_with_counter() -> (SanModel, crate::PlaceId) {
        let mut m = SanModel::new("t");
        let p = m.add_place("p", 1);
        (m, p)
    }

    #[test]
    fn input_arcs_gate_enabling() {
        let (mut m, p) = model_with_counter();
        let id = m
            .add_activity(Activity::timed("a", 2.0).with_input_arc(p, 1))
            .unwrap();
        let mk = m.initial_marking();
        assert!(is_enabled(&m, m.activity(id), &mk));
        let fired = fire(&m, id, 0, &mk).unwrap();
        assert_eq!(fired.tokens(p), 0);
        assert!(!is_enabled(&m, m.activity(id), &fired));
    }

    #[test]
    fn enabling_predicate_blocks() {
        let (mut m, p) = model_with_counter();
        let id = m
            .add_activity(Activity::timed("a", 2.0).with_enabling(move |mk| mk.tokens(p) >= 5))
            .unwrap();
        assert!(!is_enabled(&m, m.activity(id), &m.initial_marking()));
    }

    #[test]
    fn input_gate_predicate_and_function() {
        let (mut m, p) = model_with_counter();
        let q = m.add_place("q", 0);
        let gate = m.add_input_gate(
            "g",
            move |mk| mk.tokens(p) == 1,
            move |mk| mk.set_tokens(p, 0),
        );
        let id = m
            .add_activity(
                Activity::timed("a", 1.0)
                    .with_input_gate(gate)
                    .with_output_arc(q, 2),
            )
            .unwrap();
        let mk = m.initial_marking();
        assert!(is_enabled(&m, m.activity(id), &mk));
        let fired = fire(&m, id, 0, &mk).unwrap();
        assert_eq!(fired.tokens(p), 0); // input gate function
        assert_eq!(fired.tokens(q), 2); // output arc
    }

    #[test]
    fn timed_rate_validation() {
        let (mut m, p) = model_with_counter();
        m.add_activity(Activity::timed_fn("bad", |_| -1.0).with_input_arc(p, 1))
            .unwrap();
        assert!(matches!(
            enabled_timed(&m, &m.initial_marking()),
            Err(SanError::InvalidFunction { .. })
        ));
    }

    #[test]
    fn zero_rate_means_disabled() {
        let (mut m, p) = model_with_counter();
        m.add_activity(Activity::timed("z", 0.0).with_input_arc(p, 1))
            .unwrap();
        assert!(enabled_timed(&m, &m.initial_marking()).unwrap().is_empty());
    }

    #[test]
    fn instantaneous_priorities_mask_lower() {
        let (mut m, p) = model_with_counter();
        m.add_activity(
            Activity::instantaneous("low")
                .with_priority(1)
                .with_input_arc(p, 1),
        )
        .unwrap();
        let hi = m
            .add_activity(
                Activity::instantaneous("high")
                    .with_priority(2)
                    .with_input_arc(p, 1),
            )
            .unwrap();
        let enabled = enabled_instantaneous(&m, &m.initial_marking()).unwrap();
        assert_eq!(enabled.len(), 1);
        assert_eq!(enabled[0].0, hi);
        assert!((enabled[0].1 - 1.0).abs() < 1e-15);
    }

    #[test]
    fn instantaneous_weights_normalize() {
        let (mut m, p) = model_with_counter();
        m.add_activity(
            Activity::instantaneous("a")
                .with_weight(1.0)
                .with_input_arc(p, 1),
        )
        .unwrap();
        m.add_activity(
            Activity::instantaneous("b")
                .with_weight(3.0)
                .with_input_arc(p, 1),
        )
        .unwrap();
        let enabled = enabled_instantaneous(&m, &m.initial_marking()).unwrap();
        assert_eq!(enabled.len(), 2);
        assert!((enabled[0].1 - 0.25).abs() < 1e-15);
        assert!((enabled[1].1 - 0.75).abs() < 1e-15);
    }

    #[test]
    fn case_distribution_normalizes_and_drops_zero() {
        let (mut m, p) = model_with_counter();
        let id = m
            .add_activity(
                Activity::timed("a", 1.0)
                    .with_input_arc(p, 1)
                    .with_case(Case::with_probability(0.2))
                    .with_case(Case::with_probability(0.0))
                    .with_case(Case::with_probability(0.6)),
            )
            .unwrap();
        let dist = case_distribution(&m, id, &m.initial_marking()).unwrap();
        assert_eq!(dist.len(), 2);
        assert_eq!(dist[0].0, 0);
        assert!((dist[0].1 - 0.25).abs() < 1e-12);
        assert_eq!(dist[1].0, 2);
        assert!((dist[1].1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn all_zero_cases_error() {
        let (mut m, p) = model_with_counter();
        let id = m
            .add_activity(
                Activity::timed("a", 1.0)
                    .with_input_arc(p, 1)
                    .with_case(Case::with_probability(0.0)),
            )
            .unwrap();
        assert!(case_distribution(&m, id, &m.initial_marking()).is_err());
    }

    #[test]
    fn marking_dependent_case_probability() {
        let (mut m, p) = model_with_counter();
        let id = m
            .add_activity(
                Activity::timed("a", 1.0)
                    .with_case(Case::with_probability_fn(move |mk| {
                        if mk.tokens(p) > 0 {
                            1.0
                        } else {
                            0.0
                        }
                    }))
                    .with_case(Case::with_probability_fn(move |mk| {
                        if mk.tokens(p) == 0 {
                            1.0
                        } else {
                            0.0
                        }
                    })),
            )
            .unwrap();
        let d1 = case_distribution(&m, id, &m.initial_marking()).unwrap();
        assert_eq!(d1, vec![(0, 1.0)]);
        let mut empty = m.initial_marking();
        empty.set_tokens(p, 0);
        let d2 = case_distribution(&m, id, &empty).unwrap();
        assert_eq!(d2, vec![(1, 1.0)]);
    }

    #[test]
    fn firing_disabled_activity_is_an_error() {
        let (mut m, p) = model_with_counter();
        let id = m
            .add_activity(Activity::timed("a", 1.0).with_input_arc(p, 2))
            .unwrap();
        assert!(fire(&m, id, 0, &m.initial_marking()).is_err());
    }

    #[test]
    fn output_gate_runs_after_output_arcs() {
        let (mut m, p) = model_with_counter();
        // Gate doubles p after the arc deposits 1 token.
        let og = m.add_output_gate("double", move |mk| {
            let t = mk.tokens(p);
            mk.set_tokens(p, t * 2);
        });
        let id = m
            .add_activity(
                Activity::timed("a", 1.0).with_input_arc(p, 1).with_case(
                    Case::with_probability(1.0)
                        .with_output_arc(p, 1)
                        .with_output_gate(og),
                ),
            )
            .unwrap();
        let fired = fire(&m, id, 0, &m.initial_marking()).unwrap();
        // 1 − 1 (input arc) + 1 (output arc) = 1, then ×2 = 2.
        assert_eq!(fired.tokens(p), 2);
    }
}
