//! Reachability-graph generation with vanishing-marking elimination.
//!
//! The generator explores the tangible markings of a SAN breadth-first.
//! Markings that enable an instantaneous activity (*vanishing* markings)
//! never appear in the final state space: they are resolved on the fly into
//! probability distributions over their tangible successors, exactly as
//! UltraSAN's reduced-base-model generator did. The result is a
//! [`markov::Ctmc`] over tangible markings plus the bookkeeping needed to
//! map reward predicates onto states.

use std::collections::{BTreeMap, HashMap, VecDeque};

use markov::Ctmc;

use crate::model::{ActivityId, SanModel};
use crate::semantics;
use crate::{Marking, Result, SanError};

/// One aggregated activity flow in the tangible chain: completing `activity`
/// in state `from` leads to tangible state `to` at the given rate (after
/// case probabilities and vanishing resolution). Self-flows (`from == to`)
/// are retained here even though they carry no CTMC transition — impulse
/// rewards still accrue on them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityFlow {
    /// Source tangible state.
    pub from: usize,
    /// Destination tangible state (may equal `from`).
    pub to: usize,
    /// The timed activity whose completion produces this flow.
    pub activity: ActivityId,
    /// Effective rate of the flow.
    pub rate: f64,
}

/// Options for [`StateSpace::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReachabilityOptions {
    /// Maximum number of tangible states before generation aborts.
    pub max_states: usize,
    /// Maximum chain length of instantaneous firings while resolving one
    /// vanishing marking (loop guard).
    pub max_vanishing_depth: usize,
}

impl Default for ReachabilityOptions {
    fn default() -> Self {
        ReachabilityOptions {
            max_states: 500_000,
            max_vanishing_depth: 128,
        }
    }
}

/// The tangible state space of a SAN together with its CTMC.
pub struct StateSpace {
    model_name: String,
    states: Vec<Marking>,
    index: HashMap<Marking, usize>,
    ctmc: Ctmc,
    initial_distribution: Vec<f64>,
    /// Total rate of self-loop transitions that were dropped during
    /// generation (a timed firing that leads back to the same tangible
    /// marking is a null event for the CTMC).
    dropped_self_loop_rate: f64,
    /// Per-activity flows, including self-flows, for impulse rewards and
    /// throughput measures.
    flows: Vec<ActivityFlow>,
}

impl StateSpace {
    /// Generates the tangible reachability graph of `model`.
    ///
    /// # Errors
    ///
    /// * [`SanError::StateSpaceLimit`] when more than
    ///   `opts.max_states` tangible markings are reachable.
    /// * [`SanError::VanishingLoop`] when instantaneous activities cycle.
    /// * [`SanError::InvalidFunction`] when a rate or case probability
    ///   evaluates to an invalid value.
    pub fn generate(model: &SanModel, opts: &ReachabilityOptions) -> Result<Self> {
        let mut span = telemetry::span("san.generate");
        span.record("model", model.name());
        let mut states: Vec<Marking> = Vec::new();
        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut transitions: Vec<(usize, usize, f64)> = Vec::new();
        let mut flows: Vec<ActivityFlow> = Vec::new();
        let mut dropped_self_loop_rate = 0.0;

        let intern = |mk: Marking,
                      states: &mut Vec<Marking>,
                      index: &mut HashMap<Marking, usize>,
                      queue: &mut VecDeque<usize>|
         -> usize {
            if let Some(&i) = index.get(&mk) {
                return i;
            }
            let i = states.len();
            states.push(mk.clone());
            index.insert(mk, i);
            queue.push_back(i);
            i
        };

        // Resolve the initial marking (it may itself be vanishing).
        let initial = resolve_vanishing(model, model.initial_marking(), opts, 0)?;
        let mut initial_pairs: Vec<(usize, f64)> = Vec::new();
        for (mk, p) in initial {
            let i = intern(mk, &mut states, &mut index, &mut queue);
            initial_pairs.push((i, p));
        }

        while let Some(si) = queue.pop_front() {
            if states.len() > opts.max_states {
                return Err(SanError::StateSpaceLimit {
                    limit: opts.max_states,
                });
            }
            let marking = states[si].clone();
            for (act, rate) in semantics::enabled_timed(model, &marking)? {
                for (case, case_p) in semantics::case_distribution(model, act, &marking)? {
                    let fired = semantics::fire(model, act, case, &marking)?;
                    for (tangible, q) in resolve_vanishing(model, fired, opts, 0)
                        .map_err(|e| annotate_activity(e, model, act))?
                    {
                        let ti = intern(tangible, &mut states, &mut index, &mut queue);
                        let r = rate * case_p * q;
                        flows.push(ActivityFlow {
                            from: si,
                            to: ti,
                            activity: act,
                            rate: r,
                        });
                        if ti == si {
                            dropped_self_loop_rate += r;
                        } else {
                            transitions.push((si, ti, r));
                        }
                    }
                }
            }
        }

        let n = states.len();
        if telemetry::enabled() {
            let slug = model.name().to_lowercase().replace([' ', '/'], "_");
            telemetry::counter("san.generations", 1);
            telemetry::counter("san.states.generated", n as u64);
            telemetry::counter("san.transitions.generated", transitions.len() as u64);
            telemetry::gauge(&format!("san.states.{slug}"), n as f64);
            telemetry::gauge(&format!("san.transitions.{slug}"), transitions.len() as f64);
            telemetry::gauge(
                &format!("san.dropped_self_loop_rate.{slug}"),
                dropped_self_loop_rate,
            );
            span.record("states", n);
            span.record("transitions", transitions.len());
            span.record("dropped_self_loop_rate", dropped_self_loop_rate);
            if dropped_self_loop_rate > 0.0 {
                telemetry::warning(&format!(
                    "model {}: dropped tangible self-loop rate {dropped_self_loop_rate:.6e} \
                     during reachability generation",
                    model.name()
                ));
            }
        }
        let ctmc = Ctmc::from_transitions(n, transitions)?;
        let mut initial_distribution = vec![0.0; n];
        for (i, p) in initial_pairs {
            initial_distribution[i] += p;
        }

        Ok(StateSpace {
            model_name: model.name().to_string(),
            states,
            index,
            ctmc,
            initial_distribution,
            dropped_self_loop_rate,
            flows,
        })
    }

    /// Name of the model this space was generated from.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// Number of tangible states.
    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// The tangible marking of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_states()`.
    pub fn marking(&self, i: usize) -> &Marking {
        &self.states[i]
    }

    /// The state index of `marking`, if tangible and reachable.
    pub fn state_of(&self, marking: &Marking) -> Option<usize> {
        self.index.get(marking).copied()
    }

    /// The generated CTMC over tangible states.
    pub fn ctmc(&self) -> &Ctmc {
        &self.ctmc
    }

    /// The initial probability distribution over tangible states (a point
    /// mass unless the initial marking was vanishing with probabilistic
    /// resolution).
    pub fn initial_distribution(&self) -> &[f64] {
        &self.initial_distribution
    }

    /// Indices of all states whose marking satisfies `predicate`.
    pub fn states_where<F: Fn(&Marking) -> bool>(&self, predicate: F) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, m)| predicate(m))
            .map(|(i, _)| i)
            .collect()
    }

    /// Total probability of `predicate` under a state distribution `pi`.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != self.n_states()`.
    pub fn probability_of<F: Fn(&Marking) -> bool>(&self, pi: &[f64], predicate: F) -> f64 {
        assert_eq!(pi.len(), self.n_states(), "probability_of: length mismatch");
        self.states
            .iter()
            .zip(pi)
            .filter(|(m, _)| predicate(m))
            .map(|(_, p)| p)
            .sum()
    }

    /// Total rate mass of dropped tangible self-loops (diagnostic).
    pub fn dropped_self_loop_rate(&self) -> f64 {
        self.dropped_self_loop_rate
    }

    /// All per-activity flows of the tangible chain (self-flows included).
    pub fn flows(&self) -> &[ActivityFlow] {
        &self.flows
    }

    /// The expected completion rate (throughput) of `activity` under a
    /// state distribution `pi`: `Σ_flows π_from · rate`.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != self.n_states()`.
    pub fn activity_throughput(&self, pi: &[f64], activity: ActivityId) -> f64 {
        assert_eq!(
            pi.len(),
            self.n_states(),
            "activity_throughput: length mismatch"
        );
        self.flows
            .iter()
            .filter(|f| f.activity == activity)
            .map(|f| pi[f.from] * f.rate)
            .sum()
    }
}

impl std::fmt::Debug for StateSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateSpace")
            .field("model", &self.model_name)
            .field("states", &self.states.len())
            .field("transitions", &self.ctmc.transitions().count())
            .finish()
    }
}

fn annotate_activity(e: SanError, model: &SanModel, act: ActivityId) -> SanError {
    match e {
        SanError::VanishingLoop { depth, .. } => SanError::VanishingLoop {
            depth,
            activity: model.activity_name(act).to_string(),
        },
        other => other,
    }
}

/// Resolves a possibly-vanishing marking into its distribution over tangible
/// markings by exhaustively firing instantaneous activities.
fn resolve_vanishing(
    model: &SanModel,
    marking: Marking,
    opts: &ReachabilityOptions,
    depth: usize,
) -> Result<Vec<(Marking, f64)>> {
    let instantaneous = semantics::enabled_instantaneous(model, &marking)?;
    if instantaneous.is_empty() {
        return Ok(vec![(marking, 1.0)]);
    }
    if depth >= opts.max_vanishing_depth {
        return Err(SanError::VanishingLoop {
            depth,
            activity: String::from("<unknown>"),
        });
    }
    // BTreeMap, not HashMap: the successor list this returns drives the BFS
    // discovery order, and with it the state numbering of the tangible
    // chain. Hash order would renumber states from process to process.
    let mut merged: BTreeMap<Marking, f64> = BTreeMap::new();
    for (act, sel_p) in instantaneous {
        for (case, case_p) in semantics::case_distribution(model, act, &marking)? {
            let fired = semantics::fire(model, act, case, &marking)?;
            for (tangible, q) in resolve_vanishing(model, fired, opts, depth + 1)
                .map_err(|e| annotate_activity(e, model, act))?
            {
                *merged.entry(tangible).or_insert(0.0) += sel_p * case_p * q;
            }
        }
    }
    Ok(merged.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Activity, Case};

    #[test]
    fn birth_death_statespace() {
        // M/M/1/3: 4 tangible states, birth rate 2, death rate 3.
        let mut m = SanModel::new("mm13");
        let q = m.add_place("q", 0);
        m.add_activity(
            Activity::timed("arrive", 2.0)
                .with_output_arc(q, 1)
                .with_enabling(move |mk| mk.tokens(q) < 3),
        )
        .unwrap();
        m.add_activity(Activity::timed("serve", 3.0).with_input_arc(q, 1))
            .unwrap();

        let ss = StateSpace::generate(&m, &Default::default()).unwrap();
        assert_eq!(ss.n_states(), 4);
        assert_eq!(ss.initial_distribution()[0], 1.0);
        // Transition structure: i -> i+1 at 2.0, i -> i-1 at 3.0.
        let s0 = ss
            .state_of(&Marking::from_tokens(vec![0]))
            .expect("empty queue state");
        let s1 = ss.state_of(&Marking::from_tokens(vec![1])).unwrap();
        assert_eq!(ss.ctmc().generator().get(s0, s1), 2.0);
        assert_eq!(ss.ctmc().generator().get(s1, s0), 3.0);
        assert_eq!(ss.dropped_self_loop_rate(), 0.0);
    }

    #[test]
    fn vanishing_markings_are_eliminated() {
        // Timed a: p -> q; instantaneous: q -> r. Tangible states never
        // show a token in q.
        let mut m = SanModel::new("van");
        let p = m.add_place("p", 1);
        let q = m.add_place("q", 0);
        let r = m.add_place("r", 0);
        m.add_activity(
            Activity::timed("slow", 1.0)
                .with_input_arc(p, 1)
                .with_output_arc(q, 1),
        )
        .unwrap();
        m.add_activity(
            Activity::instantaneous("fast")
                .with_input_arc(q, 1)
                .with_output_arc(r, 1),
        )
        .unwrap();

        let ss = StateSpace::generate(&m, &Default::default()).unwrap();
        assert_eq!(ss.n_states(), 2);
        for i in 0..ss.n_states() {
            assert_eq!(ss.marking(i).tokens(q), 0, "state {i} should be tangible");
        }
        let dst = ss.state_of(&Marking::from_tokens(vec![0, 0, 1])).unwrap();
        let src = ss.state_of(&Marking::from_tokens(vec![1, 0, 0])).unwrap();
        assert_eq!(ss.ctmc().generator().get(src, dst), 1.0);
    }

    #[test]
    fn vanishing_chain_splits_probability() {
        // Timed -> vanishing with two cases 0.3/0.7 -> two tangible states.
        let mut m = SanModel::new("split");
        let p = m.add_place("p", 1);
        let mid = m.add_place("mid", 0);
        let a = m.add_place("a", 0);
        let b = m.add_place("b", 0);
        m.add_activity(
            Activity::timed("t", 5.0)
                .with_input_arc(p, 1)
                .with_output_arc(mid, 1),
        )
        .unwrap();
        m.add_activity(
            Activity::instantaneous("branch")
                .with_input_arc(mid, 1)
                .with_case(Case::with_probability(0.3).with_output_arc(a, 1))
                .with_case(Case::with_probability(0.7).with_output_arc(b, 1)),
        )
        .unwrap();

        let ss = StateSpace::generate(&m, &Default::default()).unwrap();
        assert_eq!(ss.n_states(), 3);
        let src = ss
            .state_of(&Marking::from_tokens(vec![1, 0, 0, 0]))
            .unwrap();
        let sa = ss
            .state_of(&Marking::from_tokens(vec![0, 0, 1, 0]))
            .unwrap();
        let sb = ss
            .state_of(&Marking::from_tokens(vec![0, 0, 0, 1]))
            .unwrap();
        assert!((ss.ctmc().generator().get(src, sa) - 1.5).abs() < 1e-12);
        assert!((ss.ctmc().generator().get(src, sb) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn vanishing_initial_marking() {
        let mut m = SanModel::new("vinit");
        let p = m.add_place("p", 1);
        let q = m.add_place("q", 0);
        m.add_activity(
            Activity::instantaneous("init")
                .with_input_arc(p, 1)
                .with_output_arc(q, 1),
        )
        .unwrap();
        m.add_activity(Activity::timed("tick", 1.0).with_input_arc(q, 1))
            .unwrap();

        let ss = StateSpace::generate(&m, &Default::default()).unwrap();
        assert_eq!(ss.n_states(), 2);
        let init_state = ss.state_of(&Marking::from_tokens(vec![0, 1])).unwrap();
        assert_eq!(ss.initial_distribution()[init_state], 1.0);
    }

    #[test]
    fn instantaneous_loop_is_detected() {
        let mut m = SanModel::new("loop");
        let p = m.add_place("p", 1);
        let q = m.add_place("q", 0);
        m.add_activity(
            Activity::instantaneous("pq")
                .with_input_arc(p, 1)
                .with_output_arc(q, 1),
        )
        .unwrap();
        m.add_activity(
            Activity::instantaneous("qp")
                .with_input_arc(q, 1)
                .with_output_arc(p, 1),
        )
        .unwrap();
        assert!(matches!(
            StateSpace::generate(&m, &Default::default()),
            Err(SanError::VanishingLoop { .. })
        ));
    }

    #[test]
    fn state_limit_enforced() {
        // Unbounded counter.
        let mut m = SanModel::new("unbounded");
        let p = m.add_place("p", 0);
        m.add_activity(Activity::timed("up", 1.0).with_output_arc(p, 1))
            .unwrap();
        let opts = ReachabilityOptions {
            max_states: 100,
            ..Default::default()
        };
        assert!(matches!(
            StateSpace::generate(&m, &opts),
            Err(SanError::StateSpaceLimit { limit: 100 })
        ));
    }

    #[test]
    fn self_loops_are_dropped_and_reported() {
        // Timed activity with a case that returns to the same marking.
        let mut m = SanModel::new("selfloop");
        let p = m.add_place("p", 1);
        let q = m.add_place("q", 0);
        m.add_activity(
            Activity::timed("maybe", 4.0)
                .with_case(Case::with_probability(0.5)) // no effect: self-loop
                .with_case(Case::with_probability(0.5).with_output_arc(q, 1))
                .with_enabling(move |mk| mk.tokens(q) == 0 && mk.tokens(p) == 1),
        )
        .unwrap();
        let ss = StateSpace::generate(&m, &Default::default()).unwrap();
        assert_eq!(ss.n_states(), 2);
        assert!((ss.dropped_self_loop_rate() - 2.0).abs() < 1e-12);
        let src = ss.state_of(&Marking::from_tokens(vec![1, 0])).unwrap();
        assert!((ss.ctmc().exit_rate(src) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn states_where_and_probability_of() {
        let mut m = SanModel::new("mm12");
        let q = m.add_place("q", 0);
        m.add_activity(
            Activity::timed("in", 1.0)
                .with_output_arc(q, 1)
                .with_enabling(move |mk| mk.tokens(q) < 2),
        )
        .unwrap();
        m.add_activity(Activity::timed("out", 1.0).with_input_arc(q, 1))
            .unwrap();
        let ss = StateSpace::generate(&m, &Default::default()).unwrap();
        let busy = ss.states_where(|mk| mk.tokens(q) > 0);
        assert_eq!(busy.len(), 2);
        let uniform = vec![1.0 / 3.0; 3];
        assert!((ss.probability_of(&uniform, |mk| mk.tokens(q) > 0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn generation_is_deterministic() {
        let build = || {
            let mut m = SanModel::new("det");
            let q = m.add_place("q", 0);
            m.add_activity(
                Activity::timed("in", 1.5)
                    .with_output_arc(q, 1)
                    .with_enabling(move |mk| mk.tokens(q) < 5),
            )
            .unwrap();
            m.add_activity(Activity::timed("out", 2.5).with_input_arc(q, 1))
                .unwrap();
            StateSpace::generate(&m, &Default::default()).unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a.n_states(), b.n_states());
        for i in 0..a.n_states() {
            assert_eq!(a.marking(i), b.marking(i));
        }
        assert_eq!(a.ctmc().generator(), b.ctmc().generator());
    }
}
