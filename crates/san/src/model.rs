//! SAN model specification: places, activities, cases, and gates.

use std::fmt;

use crate::{Marking, Result, SanError};

/// Identifier of a place within a [`SanModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(usize);

impl PlaceId {
    #[cfg(test)]
    pub(crate) fn from_index(i: usize) -> Self {
        PlaceId(i)
    }

    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// Identifier of an activity within a [`SanModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActivityId(usize);

/// Identifier of an input gate within a [`SanModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InputGateId(usize);

/// Identifier of an output gate within a [`SanModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutputGateId(usize);

/// Marking-dependent boolean function (gate predicates, enabling
/// conditions, reward predicates).
pub(crate) type PredicateFn = Box<dyn Fn(&Marking) -> bool + Send + Sync>;
/// Marking transformation (gate functions).
pub(crate) type MarkingFn = Box<dyn Fn(&mut Marking) + Send + Sync>;
/// Marking-dependent non-negative value (rates, case probabilities).
pub(crate) type ValueFn = Box<dyn Fn(&Marking) -> f64 + Send + Sync>;

pub(crate) struct PlaceDef {
    pub name: String,
    pub initial: u32,
}

pub(crate) struct InputGateDef {
    #[allow(dead_code)]
    pub name: String,
    pub predicate: PredicateFn,
    pub function: MarkingFn,
}

pub(crate) struct OutputGateDef {
    #[allow(dead_code)]
    pub name: String,
    pub function: MarkingFn,
}

/// Whether an activity takes time to complete.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActivityKind {
    /// Exponentially timed activity.
    Timed,
    /// Zero-duration activity. Among simultaneously enabled instantaneous
    /// activities the highest `priority` fires; ties are broken
    /// probabilistically by `weight`.
    Instantaneous {
        /// Selection priority (higher fires first).
        priority: u32,
        /// Relative selection weight among equal-priority activities.
        weight: f64,
    },
}

/// One probabilistic outcome of an activity completion.
///
/// Build with [`Case::with_probability`] (constant) or
/// [`Case::with_probability_fn`] (marking-dependent), then attach effects.
/// Case probabilities of an activity are normalized at evaluation time, so
/// constant weights need not sum to exactly one.
pub struct Case {
    pub(crate) probability: ValueFn,
    pub(crate) output_arcs: Vec<(PlaceId, u32)>,
    pub(crate) output_gates: Vec<OutputGateId>,
}

impl Case {
    /// A case selected with constant relative probability `p`.
    pub fn with_probability(p: f64) -> Self {
        Case {
            probability: Box::new(move |_| p),
            output_arcs: Vec::new(),
            output_gates: Vec::new(),
        }
    }

    /// A case whose relative probability depends on the marking.
    pub fn with_probability_fn<F>(f: F) -> Self
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        Case {
            probability: Box::new(f),
            output_arcs: Vec::new(),
            output_gates: Vec::new(),
        }
    }

    /// Adds `count` tokens to `place` when this case is chosen.
    pub fn with_output_arc(mut self, place: PlaceId, count: u32) -> Self {
        self.output_arcs.push((place, count));
        self
    }

    /// Applies an output gate's function when this case is chosen.
    pub fn with_output_gate(mut self, gate: OutputGateId) -> Self {
        self.output_gates.push(gate);
        self
    }
}

impl fmt::Debug for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Case")
            .field("output_arcs", &self.output_arcs)
            .field("output_gates", &self.output_gates.len())
            .finish_non_exhaustive()
    }
}

/// Builder for an activity; pass to [`SanModel::add_activity`].
///
/// An activity is **enabled** when every input arc's place holds enough
/// tokens, every inline enabling predicate holds, and every attached input
/// gate's predicate holds. On completion the input-arc tokens are removed,
/// input-gate functions run, a case is selected, and the case's output arcs
/// and gates are applied.
pub struct Activity {
    pub(crate) name: String,
    pub(crate) kind: ActivityKind,
    pub(crate) rate: ValueFn,
    pub(crate) enabling: Vec<PredicateFn>,
    pub(crate) input_arcs: Vec<(PlaceId, u32)>,
    pub(crate) input_gates: Vec<InputGateId>,
    pub(crate) cases: Vec<Case>,
    /// Effects accumulated from `with_output_arc`/`with_output_gate` before
    /// any explicit case was added; turned into a single default case.
    default_case: Case,
    has_explicit_cases: bool,
}

impl Activity {
    /// A timed activity with a constant exponential rate.
    pub fn timed(name: impl Into<String>, rate: f64) -> Self {
        Self::timed_fn(name, move |_| rate)
    }

    /// A timed activity with a marking-dependent exponential rate.
    pub fn timed_fn<F>(name: impl Into<String>, rate: F) -> Self
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        Activity {
            name: name.into(),
            kind: ActivityKind::Timed,
            rate: Box::new(rate),
            enabling: Vec::new(),
            input_arcs: Vec::new(),
            input_gates: Vec::new(),
            cases: Vec::new(),
            default_case: Case::with_probability(1.0),
            has_explicit_cases: false,
        }
    }

    /// An instantaneous activity (priority 0, weight 1).
    pub fn instantaneous(name: impl Into<String>) -> Self {
        Activity {
            name: name.into(),
            kind: ActivityKind::Instantaneous {
                priority: 0,
                weight: 1.0,
            },
            rate: Box::new(|_| 0.0),
            enabling: Vec::new(),
            input_arcs: Vec::new(),
            input_gates: Vec::new(),
            cases: Vec::new(),
            default_case: Case::with_probability(1.0),
            has_explicit_cases: false,
        }
    }

    /// Sets the selection priority (instantaneous activities only; ignored
    /// for timed ones).
    pub fn with_priority(mut self, priority: u32) -> Self {
        if let ActivityKind::Instantaneous { weight, .. } = self.kind {
            self.kind = ActivityKind::Instantaneous { priority, weight };
        }
        self
    }

    /// Sets the selection weight (instantaneous activities only; ignored for
    /// timed ones).
    pub fn with_weight(mut self, weight: f64) -> Self {
        if let ActivityKind::Instantaneous { priority, .. } = self.kind {
            self.kind = ActivityKind::Instantaneous { priority, weight };
        }
        self
    }

    /// Requires (and on completion consumes) `count` tokens in `place`.
    pub fn with_input_arc(mut self, place: PlaceId, count: u32) -> Self {
        self.input_arcs.push((place, count));
        self
    }

    /// Adds an inline enabling predicate (an input gate with an identity
    /// function).
    pub fn with_enabling<F>(mut self, predicate: F) -> Self
    where
        F: Fn(&Marking) -> bool + Send + Sync + 'static,
    {
        self.enabling.push(Box::new(predicate));
        self
    }

    /// Attaches an input gate (predicate + marking function).
    pub fn with_input_gate(mut self, gate: InputGateId) -> Self {
        self.input_gates.push(gate);
        self
    }

    /// Adds `count` tokens to `place` on completion (shorthand when the
    /// activity has a single implicit case).
    pub fn with_output_arc(mut self, place: PlaceId, count: u32) -> Self {
        self.default_case.output_arcs.push((place, count));
        self
    }

    /// Applies an output gate on completion (shorthand for the single
    /// implicit case).
    pub fn with_output_gate(mut self, gate: OutputGateId) -> Self {
        self.default_case.output_gates.push(gate);
        self
    }

    /// Adds an explicit case. Once any explicit case is present the implicit
    /// default case is discarded, and activity-level `with_output_arc` /
    /// `with_output_gate` calls are rejected by
    /// [`SanModel::add_activity`].
    pub fn with_case(mut self, case: Case) -> Self {
        self.cases.push(case);
        self.has_explicit_cases = true;
        self
    }

    pub(crate) fn name_for_compose(&self) -> &str {
        &self.name
    }

    pub(crate) fn with_name(mut self, name: String) -> Self {
        self.name = name;
        self
    }

    pub(crate) fn finalize(mut self) -> Result<Self> {
        if self.has_explicit_cases {
            if !self.default_case.output_arcs.is_empty()
                || !self.default_case.output_gates.is_empty()
            {
                return Err(SanError::InvalidModel {
                    context: format!(
                        "activity '{}' mixes activity-level outputs with explicit cases",
                        self.name
                    ),
                });
            }
        } else {
            self.cases = vec![std::mem::replace(
                &mut self.default_case,
                Case::with_probability(1.0),
            )];
        }
        if self.cases.is_empty() {
            return Err(SanError::InvalidModel {
                context: format!("activity '{}' has no cases", self.name),
            });
        }
        if let ActivityKind::Instantaneous { weight, .. } = self.kind {
            if !weight.is_finite() || weight <= 0.0 {
                return Err(SanError::InvalidModel {
                    context: format!(
                        "instantaneous activity '{}' has invalid weight {weight}",
                        self.name
                    ),
                });
            }
        }
        Ok(self)
    }
}

impl fmt::Debug for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Activity")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("input_arcs", &self.input_arcs)
            .field("cases", &self.cases.len())
            .finish_non_exhaustive()
    }
}

/// A stochastic activity network model.
///
/// Create places and gates first, then add activities referencing them. See
/// the [crate-level example](crate) for a complete model.
pub struct SanModel {
    name: String,
    pub(crate) places: Vec<PlaceDef>,
    pub(crate) activities: Vec<Activity>,
    pub(crate) input_gates: Vec<InputGateDef>,
    pub(crate) output_gates: Vec<OutputGateDef>,
}

impl SanModel {
    /// Creates an empty model.
    pub fn new(name: impl Into<String>) -> Self {
        SanModel {
            name: name.into(),
            places: Vec::new(),
            activities: Vec::new(),
            input_gates: Vec::new(),
            output_gates: Vec::new(),
        }
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a place holding `initial` tokens in the initial marking.
    pub fn add_place(&mut self, name: impl Into<String>, initial: u32) -> PlaceId {
        self.places.push(PlaceDef {
            name: name.into(),
            initial,
        });
        PlaceId(self.places.len() - 1)
    }

    /// Adds an input gate with an enabling `predicate` and a marking
    /// `function` applied when a connected activity completes.
    pub fn add_input_gate<P, F>(
        &mut self,
        name: impl Into<String>,
        predicate: P,
        function: F,
    ) -> InputGateId
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
        F: Fn(&mut Marking) + Send + Sync + 'static,
    {
        self.input_gates.push(InputGateDef {
            name: name.into(),
            predicate: Box::new(predicate),
            function: Box::new(function),
        });
        InputGateId(self.input_gates.len() - 1)
    }

    /// Adds an output gate with a marking `function` applied when a
    /// connected case is chosen.
    pub fn add_output_gate<F>(&mut self, name: impl Into<String>, function: F) -> OutputGateId
    where
        F: Fn(&mut Marking) + Send + Sync + 'static,
    {
        self.output_gates.push(OutputGateDef {
            name: name.into(),
            function: Box::new(function),
        });
        OutputGateId(self.output_gates.len() - 1)
    }

    /// Adds an activity.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidModel`] when the activity references
    /// places or gates that do not belong to this model, mixes implicit and
    /// explicit cases, or has an invalid weight.
    pub fn add_activity(&mut self, activity: Activity) -> Result<ActivityId> {
        let activity = activity.finalize()?;
        let check_place = |p: PlaceId, what: &str| -> Result<()> {
            if p.0 >= self.places.len() {
                return Err(SanError::InvalidModel {
                    context: format!(
                        "activity '{}': {what} references unknown place #{}",
                        activity.name, p.0
                    ),
                });
            }
            Ok(())
        };
        for &(p, _) in &activity.input_arcs {
            check_place(p, "input arc")?;
        }
        for case in &activity.cases {
            for &(p, _) in &case.output_arcs {
                check_place(p, "output arc")?;
            }
            for g in &case.output_gates {
                if g.0 >= self.output_gates.len() {
                    return Err(SanError::InvalidModel {
                        context: format!(
                            "activity '{}': unknown output gate #{}",
                            activity.name, g.0
                        ),
                    });
                }
            }
        }
        for g in &activity.input_gates {
            if g.0 >= self.input_gates.len() {
                return Err(SanError::InvalidModel {
                    context: format!("activity '{}': unknown input gate #{}", activity.name, g.0),
                });
            }
        }
        self.activities.push(activity);
        Ok(ActivityId(self.activities.len() - 1))
    }

    /// Number of places.
    pub fn n_places(&self) -> usize {
        self.places.len()
    }

    /// Number of activities.
    pub fn n_activities(&self) -> usize {
        self.activities.len()
    }

    /// The name of a place.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to this model.
    pub fn place_name(&self, place: PlaceId) -> &str {
        &self.places[place.0].name
    }

    /// The name of an activity.
    ///
    /// # Panics
    ///
    /// Panics if `activity` does not belong to this model.
    pub fn activity_name(&self, activity: ActivityId) -> &str {
        &self.activities[activity.0].name
    }

    /// The name of the `i`-th place (place-creation order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_places()`.
    pub fn place_name_by_index(&self, i: usize) -> &str {
        &self.places[i].name
    }

    /// The kind (timed / instantaneous) of an activity.
    ///
    /// # Panics
    ///
    /// Panics if `activity` does not belong to this model.
    pub fn activity_kind_of(&self, activity: ActivityId) -> ActivityKind {
        self.activities[activity.0].kind
    }

    /// Looks a place up by name.
    pub fn find_place(&self, name: &str) -> Option<PlaceId> {
        self.places.iter().position(|p| p.name == name).map(PlaceId)
    }

    /// The initial marking (each place at its declared initial token count).
    pub fn initial_marking(&self) -> Marking {
        Marking::from_tokens(self.places.iter().map(|p| p.initial).collect())
    }

    /// `true` when `activity` is enabled in `marking`: all input arcs are
    /// covered, all inline enabling predicates hold, and all input-gate
    /// predicates hold.
    ///
    /// # Panics
    ///
    /// Panics if `activity` does not belong to this model.
    pub fn is_activity_enabled(&self, activity: ActivityId, marking: &Marking) -> bool {
        crate::semantics::is_enabled(self, self.activity(activity), marking)
    }

    /// The timed activities enabled in `marking` with their validated rates
    /// (maximal progress: suppressed while an instantaneous activity is
    /// enabled).
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidFunction`] when a rate evaluates to a
    /// negative or non-finite value.
    pub fn enabled_timed_activities(&self, marking: &Marking) -> Result<Vec<(ActivityId, f64)>> {
        crate::semantics::enabled_timed(self, marking)
    }

    /// The normalized case distribution of `activity` in `marking`, as
    /// `(case index, probability)` pairs with zero-probability cases
    /// dropped.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidFunction`] when a case probability is
    /// negative/non-finite or all case probabilities are zero.
    pub fn case_distribution_of(
        &self,
        activity: ActivityId,
        marking: &Marking,
    ) -> Result<Vec<(usize, f64)>> {
        crate::semantics::case_distribution(self, activity, marking)
    }

    /// Number of cases of an activity (implicit default case counts as one).
    ///
    /// # Panics
    ///
    /// Panics if `activity` does not belong to this model.
    pub fn n_cases_of(&self, activity: ActivityId) -> usize {
        self.activities[activity.0].cases.len()
    }

    pub(crate) fn activity(&self, id: ActivityId) -> &Activity {
        &self.activities[id.0]
    }

    pub(crate) fn input_gate(&self, id: InputGateId) -> &InputGateDef {
        &self.input_gates[id.0]
    }

    pub(crate) fn output_gate(&self, id: OutputGateId) -> &OutputGateDef {
        &self.output_gates[id.0]
    }

    pub(crate) fn activity_ids(&self) -> impl Iterator<Item = ActivityId> {
        (0..self.activities.len()).map(ActivityId)
    }
}

impl fmt::Debug for SanModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SanModel")
            .field("name", &self.name)
            .field("places", &self.places.len())
            .field("activities", &self.activities.len())
            .field("input_gates", &self.input_gates.len())
            .field("output_gates", &self.output_gates.len())
            .finish()
    }
}

impl fmt::Display for SanModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SAN '{}': {} places, {} activities",
            self.name,
            self.places.len(),
            self.activities.len()
        )?;
        for p in &self.places {
            writeln!(f, "  place {} (initial {})", p.name, p.initial)?;
        }
        for a in &self.activities {
            let kind = match a.kind {
                ActivityKind::Timed => "timed".to_string(),
                ActivityKind::Instantaneous { priority, weight } => {
                    format!("instantaneous(prio {priority}, w {weight})")
                }
            };
            writeln!(
                f,
                "  activity {} [{kind}], {} case(s)",
                a.name,
                a.cases.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_lookup() {
        let mut m = SanModel::new("t");
        let a = m.add_place("a", 1);
        let b = m.add_place("b", 2);
        assert_eq!(m.find_place("a"), Some(a));
        assert_eq!(m.find_place("b"), Some(b));
        assert_eq!(m.find_place("c"), None);
        assert_eq!(m.place_name(b), "b");
        assert_eq!(m.n_places(), 2);
    }

    #[test]
    fn initial_marking_matches_declarations() {
        let mut m = SanModel::new("t");
        m.add_place("a", 3);
        m.add_place("b", 0);
        assert_eq!(m.initial_marking().as_slice(), &[3, 0]);
    }

    #[test]
    fn implicit_case_is_synthesized() {
        let mut m = SanModel::new("t");
        let p = m.add_place("p", 0);
        let id = m
            .add_activity(Activity::timed("a", 1.0).with_output_arc(p, 1))
            .unwrap();
        assert_eq!(m.activity(id).cases.len(), 1);
        assert_eq!(m.activity_name(id), "a");
    }

    #[test]
    fn mixing_cases_and_activity_outputs_rejected() {
        let mut m = SanModel::new("t");
        let p = m.add_place("p", 0);
        let act = Activity::timed("a", 1.0)
            .with_output_arc(p, 1)
            .with_case(Case::with_probability(1.0));
        assert!(matches!(
            m.add_activity(act),
            Err(SanError::InvalidModel { .. })
        ));
    }

    #[test]
    fn dangling_references_rejected() {
        let mut m1 = SanModel::new("m1");
        let mut m2 = SanModel::new("m2");
        let p_other = m2.add_place("p", 0);
        assert!(m1
            .add_activity(Activity::timed("a", 1.0).with_input_arc(p_other, 1))
            .is_err());
        assert!(m1
            .add_activity(Activity::timed("b", 1.0).with_output_arc(p_other, 1))
            .is_err());
    }

    #[test]
    fn invalid_weight_rejected() {
        let mut m = SanModel::new("t");
        assert!(m
            .add_activity(Activity::instantaneous("i").with_weight(0.0))
            .is_err());
        assert!(m
            .add_activity(Activity::instantaneous("i").with_weight(f64::NAN))
            .is_err());
    }

    #[test]
    fn priority_and_weight_apply_only_to_instantaneous() {
        let t = Activity::timed("t", 1.0).with_priority(5).with_weight(2.0);
        assert_eq!(t.kind, ActivityKind::Timed);
        let i = Activity::instantaneous("i")
            .with_priority(5)
            .with_weight(2.0);
        assert_eq!(
            i.kind,
            ActivityKind::Instantaneous {
                priority: 5,
                weight: 2.0
            }
        );
    }

    #[test]
    fn display_mentions_components() {
        let mut m = SanModel::new("demo");
        let p = m.add_place("buf", 1);
        m.add_activity(Activity::timed("go", 1.0).with_input_arc(p, 1))
            .unwrap();
        let s = m.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("buf"));
        assert!(s.contains("go"));
    }
}
