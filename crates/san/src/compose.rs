//! Composed models: UltraSAN-style **Join** and **Replicate** operators.
//!
//! UltraSAN built large models by joining submodels over shared places and
//! replicating identical submodels. Because activities carry closures,
//! submodels here are *builder functions* that populate a [`Composer`]
//! through a namespaced [`SubmodelScope`]:
//!
//! * places created through a scope are prefixed with the submodel's name
//!   (`cpu/busy`), preventing accidental capture across submodels;
//! * **shared places** are declared on the composer and accessed by name
//!   from any scope — the join surface;
//! * [`Composer::replicate`] instantiates a builder `n` times with distinct
//!   prefixes (`node0/…`, `node1/…`), passing the replica index so builders
//!   can vary rates per replica if needed.
//!
//! # Example: machine-repairman (3 machines, 1 shared crew)
//!
//! The crew is *held* for the repair duration: an instantaneous activity
//! grabs the crew token when a machine is down, and the timed repair
//! returns it — so repairs are genuinely serialized.
//!
//! ```
//! use san::{compose::Composer, Activity, Analyzer, RewardSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut composer = Composer::new("repairman");
//! let crew = composer.shared_place("crew", 1);
//! composer.replicate("machine", 3, |scope, _i| {
//!     let up = scope.add_place("up", 1);
//!     let down = scope.add_place("down", 0);
//!     let in_repair = scope.add_place("in_repair", 0);
//!     let crew = scope.shared("crew")?;
//!     scope.add_activity(
//!         Activity::timed("fail", 0.1)
//!             .with_input_arc(up, 1)
//!             .with_output_arc(down, 1),
//!     )?;
//!     scope.add_activity(
//!         Activity::instantaneous("grab_crew")
//!             .with_input_arc(down, 1)
//!             .with_input_arc(crew, 1)
//!             .with_output_arc(in_repair, 1),
//!     )?;
//!     scope.add_activity(
//!         Activity::timed("repair", 1.0)
//!             .with_input_arc(in_repair, 1)
//!             .with_output_arc(up, 1)
//!             .with_output_arc(crew, 1),
//!     )?;
//!     Ok(())
//! })?;
//! let model = composer.finish();
//! let analyzer = Analyzer::generate(&model, &Default::default())?;
//! let up0 = model.find_place("machine0/up").unwrap();
//! let avail = RewardSpec::new().rate_when(move |mk| mk.tokens(up0) == 1, 1.0);
//! assert!(analyzer.steady_reward(&avail)? > 0.8);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::model::{Activity, ActivityId, InputGateId, OutputGateId, PlaceId, SanModel};
use crate::{Marking, Result, SanError};

/// Builder for composed SAN models.
pub struct Composer {
    model: SanModel,
    shared: HashMap<String, PlaceId>,
}

impl Composer {
    /// Starts a composition.
    pub fn new(name: impl Into<String>) -> Self {
        Composer {
            model: SanModel::new(name),
            shared: HashMap::new(),
        }
    }

    /// Declares (or retrieves) a shared place visible to every submodel.
    /// Redeclaring an existing name returns the existing place and ignores
    /// `initial`.
    pub fn shared_place(&mut self, name: impl Into<String>, initial: u32) -> PlaceId {
        let name = name.into();
        if let Some(&p) = self.shared.get(&name) {
            return p;
        }
        let p = self.model.add_place(format!("shared/{name}"), initial);
        self.shared.insert(name, p);
        p
    }

    /// Adds one submodel under `prefix` (the join operator).
    ///
    /// # Errors
    ///
    /// Propagates the builder's failures (including unknown shared places).
    pub fn add_submodel<F>(&mut self, prefix: impl Into<String>, builder: F) -> Result<&mut Self>
    where
        F: FnOnce(&mut SubmodelScope<'_>) -> Result<()>,
    {
        let mut scope = SubmodelScope {
            model: &mut self.model,
            shared: &self.shared,
            prefix: prefix.into(),
        };
        builder(&mut scope)?;
        Ok(self)
    }

    /// Instantiates `builder` for replicas `0..count` with prefixes
    /// `{prefix}{i}` (the replicate operator).
    ///
    /// # Errors
    ///
    /// Propagates the builder's failures.
    pub fn replicate<F>(
        &mut self,
        prefix: impl Into<String>,
        count: usize,
        builder: F,
    ) -> Result<&mut Self>
    where
        F: Fn(&mut SubmodelScope<'_>, usize) -> Result<()>,
    {
        let prefix = prefix.into();
        for i in 0..count {
            let mut scope = SubmodelScope {
                model: &mut self.model,
                shared: &self.shared,
                prefix: format!("{prefix}{i}"),
            };
            builder(&mut scope, i)?;
        }
        Ok(self)
    }

    /// Finishes the composition, yielding the flat model.
    pub fn finish(self) -> SanModel {
        self.model
    }
}

impl std::fmt::Debug for Composer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Composer")
            .field("model", &self.model)
            .field("shared", &self.shared.len())
            .finish()
    }
}

/// A namespaced view of the composed model handed to submodel builders.
pub struct SubmodelScope<'a> {
    model: &'a mut SanModel,
    shared: &'a HashMap<String, PlaceId>,
    prefix: String,
}

impl SubmodelScope<'_> {
    /// This scope's namespace prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Adds a place local to this submodel (name is prefixed).
    pub fn add_place(&mut self, name: impl AsRef<str>, initial: u32) -> PlaceId {
        self.model
            .add_place(format!("{}/{}", self.prefix, name.as_ref()), initial)
    }

    /// Resolves a shared place by its composer-level name.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidModel`] for undeclared names.
    pub fn shared(&self, name: &str) -> Result<PlaceId> {
        self.shared
            .get(name)
            .copied()
            .ok_or_else(|| SanError::InvalidModel {
                context: format!(
                    "submodel '{}' references undeclared shared place '{name}'",
                    self.prefix
                ),
            })
    }

    /// Adds an activity (name is prefixed).
    ///
    /// # Errors
    ///
    /// Propagates [`SanModel::add_activity`] failures.
    pub fn add_activity(&mut self, activity: Activity) -> Result<ActivityId> {
        let renamed = format!("{}/{}", self.prefix, activity.name_for_compose());
        self.model.add_activity(activity.with_name(renamed))
    }

    /// Adds an input gate (name is prefixed).
    pub fn add_input_gate<P, F>(
        &mut self,
        name: impl AsRef<str>,
        predicate: P,
        function: F,
    ) -> InputGateId
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
        F: Fn(&mut Marking) + Send + Sync + 'static,
    {
        self.model.add_input_gate(
            format!("{}/{}", self.prefix, name.as_ref()),
            predicate,
            function,
        )
    }

    /// Adds an output gate (name is prefixed).
    pub fn add_output_gate<F>(&mut self, name: impl AsRef<str>, function: F) -> OutputGateId
    where
        F: Fn(&mut Marking) + Send + Sync + 'static,
    {
        self.model
            .add_output_gate(format!("{}/{}", self.prefix, name.as_ref()), function)
    }
}

impl std::fmt::Debug for SubmodelScope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmodelScope")
            .field("prefix", &self.prefix)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Analyzer, RewardSpec, StateSpace};

    /// Machine-repairman with `n` machines and one crew held for the whole
    /// repair (instantaneous grab + timed repair); failure rate λ, repair
    /// rate µ.
    fn repairman(n: usize, lam: f64, mu: f64) -> SanModel {
        let mut composer = Composer::new("repairman");
        composer.shared_place("crew", 1);
        composer
            .replicate("m", n, |scope, _| {
                let up = scope.add_place("up", 1);
                let down = scope.add_place("down", 0);
                let in_repair = scope.add_place("in_repair", 0);
                let crew = scope.shared("crew")?;
                scope.add_activity(
                    Activity::timed("fail", lam)
                        .with_input_arc(up, 1)
                        .with_output_arc(down, 1),
                )?;
                scope.add_activity(
                    Activity::instantaneous("grab")
                        .with_input_arc(down, 1)
                        .with_input_arc(crew, 1)
                        .with_output_arc(in_repair, 1),
                )?;
                scope.add_activity(
                    Activity::timed("repair", mu)
                        .with_input_arc(in_repair, 1)
                        .with_output_arc(up, 1)
                        .with_output_arc(crew, 1),
                )?;
                Ok(())
            })
            .unwrap();
        composer.finish()
    }

    #[test]
    fn replicas_are_namespaced() {
        let m = repairman(3, 0.1, 1.0);
        assert!(m.find_place("m0/up").is_some());
        assert!(m.find_place("m2/in_repair").is_some());
        assert!(m.find_place("shared/crew").is_some());
        assert_eq!(m.n_places(), 10);
        assert_eq!(m.n_activities(), 9);
    }

    #[test]
    fn repairman_steady_state_matches_birth_death() {
        // With the crew held for the repair, the number of non-operational
        // machines is a single-server birth-death chain: up-rate (n−k)·λ,
        // down-rate µ for k ≥ 1.
        let (n, lam, mu) = (3usize, 0.2, 1.5);
        let model = repairman(n, lam, mu);
        let analyzer = Analyzer::generate(&model, &Default::default()).unwrap();

        // Closed form: π_k ∝ Π_{j<k} (n−j)λ/µ.
        let mut weights = vec![1.0];
        for k in 0..n {
            let w = weights[k] * (n - k) as f64 * lam / mu;
            weights.push(w);
        }
        let z: f64 = weights.iter().sum();

        let up_places: Vec<_> = (0..n)
            .map(|i| model.find_place(&format!("m{i}/up")).unwrap())
            .collect();
        for (k, &wk) in weights.iter().enumerate() {
            let ups = up_places.clone();
            let spec = RewardSpec::new().rate_when(
                move |mk| ups.iter().filter(|&&p| mk.tokens(p) == 0).count() == k,
                1.0,
            );
            let got = analyzer.steady_reward(&spec).unwrap();
            let want = wk / z;
            assert!((got - want).abs() < 1e-10, "k={k}: {got} vs {want}");
        }
    }

    #[test]
    fn replica_index_can_vary_rates() {
        let mut composer = Composer::new("hetero");
        composer
            .replicate("unit", 2, |scope, i| {
                let up = scope.add_place("up", 1);
                // Replica 1 fails 10× faster.
                let rate = if i == 0 { 0.1 } else { 1.0 };
                scope.add_activity(Activity::timed("fail", rate).with_input_arc(up, 1))?;
                Ok(())
            })
            .unwrap();
        let model = composer.finish();
        let ss = StateSpace::generate(&model, &Default::default()).unwrap();
        let u0 = model.find_place("unit0/up").unwrap();
        let u1 = model.find_place("unit1/up").unwrap();
        let init = ss
            .state_of(&crate::Marking::from_tokens(vec![1, 1]))
            .unwrap();
        let _ = (u0, u1);
        assert!((ss.ctmc().exit_rate(init) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn join_two_different_submodels_over_a_buffer() {
        // Producer fills a shared buffer; consumer drains it.
        let mut composer = Composer::new("pipeline");
        let buffer = composer.shared_place("buffer", 0);
        composer
            .add_submodel("producer", |scope| {
                let b = scope.shared("buffer")?;
                scope.add_activity(
                    Activity::timed("produce", 1.0)
                        .with_enabling(move |mk| mk.tokens(b) < 3)
                        .with_output_arc(b, 1),
                )?;
                Ok(())
            })
            .unwrap()
            .add_submodel("consumer", |scope| {
                let b = scope.shared("buffer")?;
                scope.add_activity(Activity::timed("consume", 2.0).with_input_arc(b, 1))?;
                Ok(())
            })
            .unwrap();
        let model = composer.finish();
        let analyzer = Analyzer::generate(&model, &Default::default()).unwrap();
        assert_eq!(analyzer.state_space().n_states(), 4);
        // M/M/1/3 with ρ = 0.5: P[empty] = 1/(1+ρ+ρ²+ρ³) = 8/15.
        let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(buffer) == 0, 1.0);
        assert!((analyzer.steady_reward(&spec).unwrap() - 8.0 / 15.0).abs() < 1e-10);
    }

    #[test]
    fn undeclared_shared_place_errors() {
        let mut composer = Composer::new("bad");
        let err = composer.add_submodel("sub", |scope| {
            scope.shared("nope")?;
            Ok(())
        });
        assert!(matches!(err, Err(SanError::InvalidModel { .. })));
    }

    #[test]
    fn shared_place_redeclaration_is_idempotent() {
        let mut composer = Composer::new("idem");
        let a = composer.shared_place("pool", 5);
        let b = composer.shared_place("pool", 99);
        assert_eq!(a, b);
        let model = composer.finish();
        assert_eq!(model.initial_marking().tokens(a), 5);
    }
}
