//! Stochastic activity networks (SANs).
//!
//! This crate implements the subset of the SAN formalism (Meyer, Movaghar &
//! Sanders 1985) that the UltraSAN tool exposed and that the DSN 2002
//! guarded-operation study exercises:
//!
//! * **Places** holding token counts ([`Marking`]);
//! * **Timed activities** with marking-dependent exponential rates;
//! * **Instantaneous activities** with priorities and weights;
//! * **Cases** — probabilistic outcomes of an activity completion, with
//!   marking-dependent case probabilities;
//! * **Input gates** (predicate + marking function) and **output gates**
//!   (marking function), alongside plain input/output arcs;
//! * **Reachability-graph generation** with on-the-fly *vanishing-marking
//!   elimination*, producing a [`markov::Ctmc`] over the tangible markings
//!   ([`StateSpace`]);
//! * **Predicate-rate reward structures** ([`RewardSpec`]) in the UltraSAN
//!   style used by Tables 1 and 2 of the paper, mapped onto the generated
//!   chain;
//! * A convenience [`Analyzer`] that runs the instant-of-time,
//!   interval-of-time, and steady-state reward solutions end to end.
//!
//! # Example: an M/M/1/3 queue as a SAN
//!
//! ```
//! use san::{Activity, Analyzer, RewardSpec, SanModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = SanModel::new("mm1k");
//! let queue = m.add_place("queue", 0);
//!
//! // Arrivals while there is room.
//! let arrive = Activity::timed("arrive", 2.0)
//!     .with_output_arc(queue, 1)
//!     .with_enabling(move |mk| mk.tokens(queue) < 3);
//! m.add_activity(arrive)?;
//!
//! // Services while the queue is non-empty.
//! m.add_activity(Activity::timed("serve", 3.0).with_input_arc(queue, 1))?;
//!
//! let analyzer = Analyzer::generate(&m, &Default::default())?;
//! let utilization = RewardSpec::new().rate_when(move |mk| mk.tokens(queue) > 0, 1.0);
//! let busy = analyzer.steady_reward(&utilization)?;
//! // M/M/1/3 with ρ=2/3: P[busy] = (ρ+ρ²+ρ³)/(1+ρ+ρ²+ρ³).
//! assert!((busy - 38.0 / 65.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod compose;
pub mod dot;
mod error;
mod marking;
mod model;
mod reachability;
mod reward;
mod semantics;
pub mod simulate;
pub mod structural;

pub use analysis::Analyzer;
pub use error::SanError;
pub use marking::Marking;
pub use model::{
    Activity, ActivityId, ActivityKind, Case, InputGateId, OutputGateId, PlaceId, SanModel,
};
pub use reachability::{ReachabilityOptions, StateSpace};
pub use reward::RewardSpec;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, SanError>;
