//! Structural diagnostics on generated state spaces.
//!
//! Model-debugging helpers in the spirit of UltraSAN's structural reports:
//! token bounds per place (is the model safe / k-bounded?), activities that
//! can never fire (dead — usually a mis-specified gate), and reachable
//! markings satisfying a predicate. These operate on the *generated*
//! tangible space, so they are exact for the given initial marking.

use crate::model::ActivityId;
use crate::{SanModel, StateSpace};

/// Token bounds observed for one place across the tangible state space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaceBounds {
    /// Minimum marking over reachable tangible states.
    pub min: u32,
    /// Maximum marking over reachable tangible states.
    pub max: u32,
}

/// Computes per-place token bounds over the reachable tangible markings
/// (indexed by place-creation order).
pub fn place_bounds(space: &StateSpace) -> Vec<PlaceBounds> {
    let n_places = space.marking(0).n_places();
    let mut bounds = vec![
        PlaceBounds {
            min: u32::MAX,
            max: 0
        };
        n_places
    ];
    for i in 0..space.n_states() {
        for (p, &tokens) in space.marking(i).as_slice().iter().enumerate() {
            bounds[p].min = bounds[p].min.min(tokens);
            bounds[p].max = bounds[p].max.max(tokens);
        }
    }
    bounds
}

/// `true` when every place holds at most one token in every reachable
/// tangible marking (a *safe* net — all the GSU models are).
pub fn is_safe(space: &StateSpace) -> bool {
    place_bounds(space).iter().all(|b| b.max <= 1)
}

/// Timed activities that never fire in the tangible chain (no flow has
/// them as source). A dead activity usually indicates an enabling predicate
/// that can never hold or an unreachable input marking.
///
/// Instantaneous activities are not reported: their firings are folded into
/// vanishing resolution and leave no flows.
pub fn dead_timed_activities(model: &SanModel, space: &StateSpace) -> Vec<ActivityId> {
    use std::collections::HashSet;
    let live: HashSet<ActivityId> = space.flows().iter().map(|f| f.activity).collect();
    model
        .activity_ids()
        .filter(|id| {
            matches!(model.activity_kind_of(*id), crate::ActivityKind::Timed) && !live.contains(id)
        })
        .collect()
}

/// A text report of the structural findings.
pub fn report(model: &SanModel, space: &StateSpace) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "structural report for '{}': {} tangible states",
        space.model_name(),
        space.n_states()
    );
    let bounds = place_bounds(space);
    for (i, b) in bounds.iter().enumerate() {
        let _ = writeln!(
            out,
            "  place {:<24} tokens in [{}, {}]",
            model.place_name_by_index(i),
            b.min,
            b.max
        );
    }
    let _ = writeln!(out, "  safe (1-bounded): {}", is_safe(space));
    let dead = dead_timed_activities(model, space);
    if dead.is_empty() {
        let _ = writeln!(out, "  no dead timed activities");
    } else {
        for id in dead {
            let _ = writeln!(out, "  DEAD timed activity: {}", model.activity_name(id));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activity, ReachabilityOptions};

    fn space_of(model: &SanModel) -> StateSpace {
        StateSpace::generate(model, &ReachabilityOptions::default()).unwrap()
    }

    #[test]
    fn bounds_of_bounded_queue() {
        let mut m = SanModel::new("q");
        let q = m.add_place("q", 1);
        m.add_activity(
            Activity::timed("in", 1.0)
                .with_enabling(move |mk| mk.tokens(q) < 3)
                .with_output_arc(q, 1),
        )
        .unwrap();
        m.add_activity(Activity::timed("out", 1.0).with_input_arc(q, 1))
            .unwrap();
        let ss = space_of(&m);
        let b = place_bounds(&ss);
        assert_eq!(b[0], PlaceBounds { min: 0, max: 3 });
        assert!(!is_safe(&ss));
    }

    #[test]
    fn safe_net_detected() {
        let mut m = SanModel::new("safe");
        let p = m.add_place("p", 1);
        let q = m.add_place("q", 0);
        m.add_activity(
            Activity::timed("flip", 1.0)
                .with_input_arc(p, 1)
                .with_output_arc(q, 1),
        )
        .unwrap();
        m.add_activity(
            Activity::timed("flop", 1.0)
                .with_input_arc(q, 1)
                .with_output_arc(p, 1),
        )
        .unwrap();
        assert!(is_safe(&space_of(&m)));
    }

    #[test]
    fn dead_activity_reported() {
        let mut m = SanModel::new("dead");
        let p = m.add_place("p", 1);
        m.add_activity(Activity::timed("live", 1.0).with_input_arc(p, 1))
            .unwrap();
        let dead = m
            .add_activity(Activity::timed("never", 1.0).with_enabling(|_| false))
            .unwrap();
        let ss = space_of(&m);
        assert_eq!(dead_timed_activities(&m, &ss), vec![dead]);
        let rep = report(&m, &ss);
        assert!(rep.contains("DEAD timed activity: never"));
    }

    // The GSU-specific structural assertions (all three paper models are
    // safe and live) are in the workspace integration tests, because
    // `performability` depends on this crate.

    #[test]
    fn report_lists_places() {
        let mut m = SanModel::new("r");
        m.add_place("alpha", 2);
        let rep = report(&m, &space_of(&m));
        assert!(rep.contains("alpha"));
        assert!(rep.contains("[2, 2]"));
    }
}
