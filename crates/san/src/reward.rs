//! UltraSAN-style predicate-rate reward structures on SAN state spaces.

use std::collections::BTreeMap;

use markov::reward::RewardStructure;

use crate::model::PredicateFn;
use crate::{ActivityId, Marking, StateSpace};

type RateValueFn = Box<dyn Fn(&Marking) -> f64 + Send + Sync>;

/// A reward variable specified as a list of **predicate–rate pairs** over
/// markings, exactly as UltraSAN's reward editor did (and as the paper's
/// Tables 1 and 2 list them).
///
/// A state's reward rate is the sum of the rates of all pairs whose
/// predicate holds in that state's marking.
///
/// # Example
///
/// ```
/// use san::{Activity, RewardSpec, SanModel, StateSpace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = SanModel::new("d");
/// let up = m.add_place("up", 1);
/// m.add_activity(Activity::timed("fail", 0.1).with_input_arc(up, 1))?;
/// let ss = StateSpace::generate(&m, &Default::default())?;
///
/// // Table-style spec: predicate MARK(up)==1, rate 1.
/// let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(up) == 1, 1.0);
/// let structure = spec.to_structure(&ss);
/// assert_eq!(structure.rates().iter().filter(|&&r| r == 1.0).count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct RewardSpec {
    pairs: Vec<(PredicateFn, RateValueFn)>,
    // Keyed map iterated when translating onto the tangible chain — a
    // BTreeMap keeps that translation order (and the float accumulation it
    // drives) identical across processes.
    impulses: BTreeMap<ActivityId, f64>,
}

impl RewardSpec {
    /// An empty specification (zero reward everywhere).
    pub fn new() -> Self {
        RewardSpec {
            pairs: Vec::new(),
            impulses: BTreeMap::new(),
        }
    }

    /// Adds a pair with a constant rate.
    pub fn rate_when<P>(mut self, predicate: P, rate: f64) -> Self
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
    {
        self.pairs
            .push((Box::new(predicate), Box::new(move |_| rate)));
        self
    }

    /// Adds a pair with a marking-dependent rate.
    pub fn rate_fn<P, R>(mut self, predicate: P, rate: R) -> Self
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
        R: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        self.pairs.push((Box::new(predicate), Box::new(rate)));
        self
    }

    /// Adds (accumulates) an **impulse reward** earned at every completion
    /// of the given timed activity — e.g. a cost per checkpoint or a count
    /// of acceptance tests. Impulse rewards contribute to accumulated and
    /// steady-rate variables, not to instant-of-time ones.
    pub fn impulse_on(mut self, activity: ActivityId, reward: f64) -> Self {
        *self.impulses.entry(activity).or_insert(0.0) += reward;
        self
    }

    /// Number of predicate-rate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when impulse rewards are present.
    pub fn has_impulses(&self) -> bool {
        !self.impulses.is_empty()
    }

    /// `true` when no pairs have been added.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// For each predicate-rate pair (in insertion order), the number of
    /// reachable tangible states whose marking satisfies the predicate.
    ///
    /// A support of zero usually means the predicate references an
    /// unreachable marking (or a mistyped place) — the pair can never earn
    /// reward, which is almost always a specification bug.
    pub fn pair_support(&self, space: &StateSpace) -> Vec<usize> {
        self.pairs
            .iter()
            .map(|(p, _)| {
                (0..space.n_states())
                    .filter(|&i| p(space.marking(i)))
                    .count()
            })
            .collect()
    }

    /// The activities carrying impulse rewards, in ascending id order.
    pub fn impulse_activities(&self) -> Vec<ActivityId> {
        self.impulses.keys().copied().collect()
    }

    /// The reward rate of a single marking under this spec.
    pub fn rate_of(&self, marking: &Marking) -> f64 {
        self.pairs
            .iter()
            .filter(|(p, _)| p(marking))
            .map(|(_, r)| r(marking))
            .sum()
    }

    /// Maps the spec onto a generated state space, producing a
    /// [`RewardStructure`] usable with the `markov` solvers.
    ///
    /// Impulse rewards are translated onto the tangible chain: a flow
    /// `s → s'` of activity `a` at rate `r` contributes an expected reward
    /// rate `ρ(a)·r` while in `s`. For `s ≠ s'` this becomes a CTMC
    /// transition impulse `ρ(a)·r / q(s,s')`; self-flows (which have no
    /// CTMC transition) are folded into the state's rate reward — the two
    /// are equivalent in expectation.
    pub fn to_structure(&self, space: &StateSpace) -> RewardStructure {
        let mut rates: Vec<f64> = (0..space.n_states())
            .map(|i| self.rate_of(space.marking(i)))
            .collect();
        if self.impulses.is_empty() {
            return RewardStructure::from_rates(rates);
        }
        // Aggregate impulse mass per transition pair (ordered, so the
        // `with_impulse` insertion sequence below is deterministic).
        let mut pair_mass: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for flow in space.flows() {
            let Some(&reward) = self.impulses.get(&flow.activity) else {
                continue;
            };
            if flow.from == flow.to {
                rates[flow.from] += reward * flow.rate;
            } else {
                *pair_mass.entry((flow.from, flow.to)).or_insert(0.0) += reward * flow.rate;
            }
        }
        let mut structure = RewardStructure::from_rates(rates);
        for ((from, to), mass) in pair_mass {
            let q = space.ctmc().generator().get(from, to);
            if q > 0.0 {
                structure = structure.with_impulse(from, to, mass / q);
            }
        }
        structure
    }
}

impl std::fmt::Debug for RewardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RewardSpec")
            .field("pairs", &self.pairs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Activity, SanModel};

    fn two_state_space() -> (StateSpace, crate::PlaceId) {
        let mut m = SanModel::new("d");
        let up = m.add_place("up", 1);
        m.add_activity(Activity::timed("fail", 0.1).with_input_arc(up, 1))
            .unwrap();
        let ss = StateSpace::generate(&m, &Default::default()).unwrap();
        (ss, up)
    }

    #[test]
    fn pairs_sum_when_overlapping() {
        let (ss, up) = two_state_space();
        let spec = RewardSpec::new()
            .rate_when(move |mk| mk.tokens(up) == 1, 1.0)
            .rate_when(|_| true, 0.5);
        let st = spec.to_structure(&ss);
        let up_state = ss
            .state_of(&Marking::from_tokens(vec![1]))
            .expect("up state");
        let down_state = ss.state_of(&Marking::from_tokens(vec![0])).unwrap();
        assert_eq!(st.rates()[up_state], 1.5);
        assert_eq!(st.rates()[down_state], 0.5);
    }

    #[test]
    fn marking_dependent_rate() {
        let (ss, up) = two_state_space();
        let spec = RewardSpec::new().rate_fn(|_| true, move |mk| mk.tokens(up) as f64 * 3.0);
        let st = spec.to_structure(&ss);
        let up_state = ss.state_of(&Marking::from_tokens(vec![1])).unwrap();
        assert_eq!(st.rates()[up_state], 3.0);
    }

    #[test]
    fn empty_spec_is_zero() {
        let (ss, _) = two_state_space();
        let spec = RewardSpec::new();
        assert!(spec.is_empty());
        assert_eq!(spec.len(), 0);
        let st = spec.to_structure(&ss);
        assert!(st.rates().iter().all(|&r| r == 0.0));
    }

    #[test]
    fn impulse_counts_activity_completions() {
        // Pure death 0 -> 1 at rate µ with impulse 1: accumulated reward by
        // time t equals the expected number of completions, 1 − e^{−µt}.
        let mu = 0.4;
        let mut m = SanModel::new("death");
        let up = m.add_place("up", 1);
        let fail = m
            .add_activity(Activity::timed("fail", mu).with_input_arc(up, 1))
            .unwrap();
        let ss = StateSpace::generate(&m, &Default::default()).unwrap();
        let spec = RewardSpec::new().impulse_on(fail, 1.0);
        assert!(spec.has_impulses());
        let structure = spec.to_structure(&ss);
        let t = 2.5;
        let l = markov::transient::occupancy(
            ss.ctmc(),
            ss.initial_distribution(),
            t,
            &Default::default(),
        )
        .unwrap();
        let got = structure.accumulated(ss.ctmc(), &l).unwrap();
        let want = 1.0 - (-mu * t).exp();
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn self_flow_impulses_become_rate_rewards() {
        // An activity whose only case returns to the same marking: the flow
        // is a self-loop, yet its completions must still earn impulses.
        let mut m = SanModel::new("selfloop");
        let p = m.add_place("p", 1);
        let spin = m
            .add_activity(Activity::timed("spin", 3.0).with_enabling(move |mk| mk.tokens(p) == 1))
            .unwrap();
        let ss = StateSpace::generate(&m, &Default::default()).unwrap();
        assert_eq!(ss.n_states(), 1);
        let structure = RewardSpec::new().impulse_on(spin, 2.0).to_structure(&ss);
        // Expected reward rate = impulse · rate = 6 while in the state.
        assert_eq!(structure.rates()[0], 6.0);
    }

    #[test]
    fn throughput_at_steady_state() {
        // M/M/1/2: arrival throughput = λ·(1 − P[full]).
        let (lam, mu) = (1.0, 2.0);
        let mut m = SanModel::new("mm12");
        let q = m.add_place("q", 0);
        let arrive = m
            .add_activity(
                Activity::timed("arrive", lam)
                    .with_enabling(move |mk| mk.tokens(q) < 2)
                    .with_output_arc(q, 1),
            )
            .unwrap();
        m.add_activity(Activity::timed("serve", mu).with_input_arc(q, 1))
            .unwrap();
        let ss = StateSpace::generate(&m, &Default::default()).unwrap();
        let pi = markov::steady::steady_state(ss.ctmc(), &Default::default()).unwrap();
        let rho = lam / mu;
        let z = 1.0 + rho + rho * rho;
        let p_full = rho * rho / z;
        let got = ss.activity_throughput(&pi, arrive);
        assert!((got - lam * (1.0 - p_full)).abs() < 1e-10);
    }

    #[test]
    fn rate_of_single_marking() {
        let spec = RewardSpec::new().rate_when(|mk: &Marking| mk.total_tokens() > 0, 2.0);
        assert_eq!(spec.rate_of(&Marking::from_tokens(vec![1])), 2.0);
        assert_eq!(spec.rate_of(&Marking::from_tokens(vec![0])), 0.0);
    }
}
