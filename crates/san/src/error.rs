use std::fmt;

use markov::MarkovError;

/// Errors produced by SAN specification and analysis.
#[derive(Debug)]
pub enum SanError {
    /// The model specification is malformed (dangling ids, empty cases,
    /// invalid probabilities or rates, …).
    InvalidModel {
        /// Description of the violation.
        context: String,
    },
    /// Reachability analysis exceeded the configured state budget.
    StateSpaceLimit {
        /// Configured maximum number of tangible states.
        limit: usize,
    },
    /// A cycle (or over-deep chain) of instantaneous activities was found
    /// while eliminating vanishing markings; such models have no
    /// well-defined CTMC semantics under this generator.
    VanishingLoop {
        /// Depth at which the resolution gave up.
        depth: usize,
        /// Name of the activity in progress when the loop was detected.
        activity: String,
    },
    /// A marking-dependent function returned an invalid value (negative
    /// rate, case probabilities that do not normalize, NaN, …).
    InvalidFunction {
        /// Description of the bad evaluation.
        context: String,
    },
    /// The generated chain could not be analysed.
    Markov(MarkovError),
}

impl fmt::Display for SanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanError::InvalidModel { context } => write!(f, "invalid SAN model: {context}"),
            SanError::StateSpaceLimit { limit } => {
                write!(
                    f,
                    "state space exceeded the configured limit of {limit} tangible states"
                )
            }
            SanError::VanishingLoop { depth, activity } => write!(
                f,
                "instantaneous-activity loop detected at depth {depth} (while firing {activity})"
            ),
            SanError::InvalidFunction { context } => {
                write!(f, "invalid marking-dependent evaluation: {context}")
            }
            SanError::Markov(e) => write!(f, "markov analysis failed: {e}"),
        }
    }
}

impl std::error::Error for SanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SanError::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MarkovError> for SanError {
    fn from(e: MarkovError) -> Self {
        SanError::Markov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let cases = vec![
            SanError::InvalidModel {
                context: "empty case list".into(),
            },
            SanError::StateSpaceLimit { limit: 10 },
            SanError::VanishingLoop {
                depth: 64,
                activity: "at".into(),
            },
            SanError::InvalidFunction {
                context: "rate was NaN".into(),
            },
            SanError::Markov(MarkovError::Reducible { components: 2 }),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn markov_source_is_chained() {
        use std::error::Error;
        let e = SanError::Markov(MarkovError::Reducible { components: 2 });
        assert!(e.source().is_some());
    }
}
