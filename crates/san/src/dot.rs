//! Graphviz (DOT) export of SAN models and state spaces.
//!
//! The paper communicates its models as diagrams (Figures 6–8); this module
//! produces the equivalent renderable artifacts for any model built with
//! this crate — places as circles, timed activities as hollow bars,
//! instantaneous activities as filled bars, following SAN drawing
//! conventions — plus the tangible reachability graph with transition
//! rates.
//!
//! ```console
//! cargo run --release -p gsu-bench --bin export_dot
//! dot -Tsvg results/rmgd_model.dot -o rmgd.svg
//! ```

use std::fmt::Write as _;

use crate::model::ActivityKind;
use crate::{SanModel, StateSpace};

/// Renders the structure of a model as a DOT digraph.
///
/// Input arcs and enabling conditions draw as edges into the activity;
/// output arcs/gates as edges out of it (gates are not expanded — their
/// effects are opaque closures — but their presence is annotated on the
/// activity label).
pub fn model_to_dot(model: &SanModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(model.name()));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");

    for (i, place) in model.places.iter().enumerate() {
        let tokens = if place.initial > 0 {
            format!("\\n●{}", place.initial)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  p{i} [shape=circle, label=\"{}{}\"];",
            escape(&place.name),
            tokens
        );
    }

    for (ai, activity) in model.activities.iter().enumerate() {
        let (shape, style) = match activity.kind {
            ActivityKind::Timed => ("rectangle", "filled, rounded"),
            ActivityKind::Instantaneous { .. } => ("rectangle", "filled"),
        };
        let fill = match activity.kind {
            ActivityKind::Timed => "white",
            ActivityKind::Instantaneous { .. } => "black",
        };
        let font = match activity.kind {
            ActivityKind::Timed => "black",
            ActivityKind::Instantaneous { .. } => "white",
        };
        let gates = if activity.input_gates.is_empty() && activity.enabling.is_empty() {
            ""
        } else {
            "\\n[gated]"
        };
        let _ = writeln!(
            out,
            "  a{ai} [shape={shape}, style=\"{style}\", fillcolor={fill}, fontcolor={font}, \
             width=0.15, label=\"{}{}\"];",
            escape(&activity.name),
            gates
        );
        for &(p, mult) in &activity.input_arcs {
            let label = if mult > 1 {
                format!(" [label=\"{mult}\"]")
            } else {
                String::new()
            };
            let _ = writeln!(out, "  p{} -> a{ai}{label};", p.index());
        }
        for (ci, case) in activity.cases.iter().enumerate() {
            let case_tag = if activity.cases.len() > 1 {
                format!(" [label=\"case {ci}\"]")
            } else {
                String::new()
            };
            for &(p, _mult) in &case.output_arcs {
                let _ = writeln!(out, "  a{ai} -> p{}{case_tag};", p.index());
            }
            if !case.output_gates.is_empty() && case.output_arcs.is_empty() {
                // Make gate-only effects visible as a dashed self-edge.
                let _ = writeln!(out, "  a{ai} -> a{ai} [style=dashed, label=\"gate\"];");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a generated tangible state space as a DOT digraph with markings
/// as node labels and rates as edge labels.
pub fn state_space_to_dot(space: &StateSpace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}-states\" {{", escape(space.model_name()));
    let _ = writeln!(out, "  node [shape=box, fontname=\"Courier\"];");
    for i in 0..space.n_states() {
        let initial = if space.initial_distribution()[i] > 0.0 {
            ", peripheries=2"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  s{i} [label=\"{}\"{initial}];",
            escape(&space.marking(i).to_string())
        );
    }
    for (from, to, rate) in space.ctmc().transitions() {
        let _ = writeln!(out, "  s{from} -> s{to} [label=\"{rate:.4}\"];");
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activity, Case, ReachabilityOptions};

    fn sample() -> SanModel {
        let mut m = SanModel::new("dot-sample");
        let q = m.add_place("queue", 1);
        let done = m.add_place("done", 0);
        m.add_activity(
            Activity::timed("serve", 2.0)
                .with_input_arc(q, 1)
                .with_case(Case::with_probability(0.5).with_output_arc(done, 1))
                .with_case(Case::with_probability(0.5).with_output_arc(q, 1)),
        )
        .unwrap();
        m.add_activity(
            Activity::instantaneous("flush")
                .with_input_arc(done, 2)
                .with_output_arc(q, 1),
        )
        .unwrap();
        m
    }

    #[test]
    fn model_dot_is_wellformed() {
        let dot = model_to_dot(&sample());
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("queue"));
        assert!(dot.contains("serve"));
        assert!(dot.contains("flush"));
        assert!(dot.contains("case 0"));
        // Multiplicity 2 input arc labelled.
        assert!(dot.contains("label=\"2\""));
        // Initial token shown.
        assert!(dot.contains("●1"));
    }

    #[test]
    fn statespace_dot_lists_all_states_and_rates() {
        let mut m = SanModel::new("two");
        let p = m.add_place("p", 1);
        m.add_activity(Activity::timed("go", 3.5).with_input_arc(p, 1))
            .unwrap();
        let ss = StateSpace::generate(&m, &ReachabilityOptions::default()).unwrap();
        let dot = state_space_to_dot(&ss);
        assert!(dot.contains("s0"));
        assert!(dot.contains("s1"));
        assert!(dot.contains("3.5000"));
        assert!(dot.contains("peripheries=2")); // initial state marked
    }

    #[test]
    fn quotes_are_escaped() {
        let mut m = SanModel::new("has \"quotes\"");
        m.add_place("p\"lace", 0);
        let dot = model_to_dot(&m);
        assert!(dot.contains("has \\\"quotes\\\""));
        assert!(dot.contains("p\\\"lace"));
    }
}
