//! Markings: token assignments to places.

use std::fmt;

use crate::model::PlaceId;

/// A marking assigns a token count to every place of a
/// [`SanModel`](crate::SanModel).
///
/// Markings are the states of the underlying stochastic process; they are
/// hashable so the reachability generator can index them.
///
/// # Example
///
/// ```
/// use san::{Marking, SanModel};
///
/// let mut m = SanModel::new("demo");
/// let p = m.add_place("p", 2);
/// let marking = m.initial_marking();
/// assert_eq!(marking.tokens(p), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Marking {
    tokens: Vec<u32>,
}

impl Marking {
    /// Creates a marking from raw token counts (one entry per place, in
    /// place-creation order).
    pub fn from_tokens(tokens: Vec<u32>) -> Self {
        Marking { tokens }
    }

    /// Number of places covered by this marking.
    pub fn n_places(&self) -> usize {
        self.tokens.len()
    }

    /// Token count of `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to the model this marking was
    /// created for.
    pub fn tokens(&self, place: PlaceId) -> u32 {
        self.tokens[place.index()]
    }

    /// Sets the token count of `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range.
    pub fn set_tokens(&mut self, place: PlaceId, count: u32) {
        self.tokens[place.index()] = count;
    }

    /// Adds `count` tokens to `place`, saturating at `u32::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range.
    pub fn add_tokens(&mut self, place: PlaceId, count: u32) {
        let t = &mut self.tokens[place.index()];
        *t = t.saturating_add(count);
    }

    /// Removes `count` tokens from `place`.
    ///
    /// Returns `false` (and leaves the marking unchanged) when fewer than
    /// `count` tokens are present.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range.
    pub fn remove_tokens(&mut self, place: PlaceId, count: u32) -> bool {
        let t = &mut self.tokens[place.index()];
        if *t >= count {
            *t -= count;
            true
        } else {
            false
        }
    }

    /// Raw token vector, indexed by place-creation order.
    pub fn as_slice(&self) -> &[u32] {
        &self.tokens
    }

    /// Total number of tokens across all places.
    pub fn total_tokens(&self) -> u64 {
        self.tokens.iter().map(|&t| t as u64).sum()
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> PlaceId {
        PlaceId::from_index(i)
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Marking::from_tokens(vec![0, 1, 2]);
        assert_eq!(m.tokens(pid(2)), 2);
        m.set_tokens(pid(0), 7);
        assert_eq!(m.tokens(pid(0)), 7);
        assert_eq!(m.n_places(), 3);
        assert_eq!(m.total_tokens(), 10);
    }

    #[test]
    fn add_saturates() {
        let mut m = Marking::from_tokens(vec![u32::MAX - 1]);
        m.add_tokens(pid(0), 5);
        assert_eq!(m.tokens(pid(0)), u32::MAX);
    }

    #[test]
    fn remove_fails_gracefully() {
        let mut m = Marking::from_tokens(vec![1]);
        assert!(!m.remove_tokens(pid(0), 2));
        assert_eq!(m.tokens(pid(0)), 1);
        assert!(m.remove_tokens(pid(0), 1));
        assert_eq!(m.tokens(pid(0)), 0);
    }

    #[test]
    fn display_lists_tokens() {
        let m = Marking::from_tokens(vec![1, 0, 3]);
        assert_eq!(m.to_string(), "(1, 0, 3)");
    }

    #[test]
    fn equality_and_hash() {
        use std::collections::HashSet;
        let a = Marking::from_tokens(vec![1, 2]);
        let b = Marking::from_tokens(vec![1, 2]);
        let c = Marking::from_tokens(vec![2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }
}
