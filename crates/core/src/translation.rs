//! The successive model translation (paper §3.3 and §4).
//!
//! The paper's central methodological contribution is to avoid solving the
//! performability index on a monolithic model. Instead the design-oriented
//! formulation is translated, step by step, into an aggregate of constituent
//! reward variables:
//!
//! 1. **Sample-path decomposition at φ** (§4.1): the process `X` over
//!    `[0, θ]` is cut at the pre-designated G-OP duration φ into `X'` (over
//!    `[0, φ]`) and `X''` (over `[φ, θ]`, shifted to `[0, θ−φ]` since
//!    surviving processes are "as clean as at time zero"). `S1` and `S2`
//!    become Cartesian products of sample-path subsets (Eqs. 12–13), so
//!    `P(S1) = P(X'_φ ∈ A'1) · P(X''_{θ−φ} ∈ A''1)` (Eq. 14).
//! 2. **Analytic manipulation of `Y_S2`** (§4.2): the double integral of
//!    Eq. 9 is expanded (Eq. 15), its minuend rearranged into `∫h` and
//!    `∫τh` terms (Eq. 16), and its subtrahend — whose integration area
//!    crosses the φ boundary — is split by **swapping the order of
//!    integration** (Fig. 5, Eq. 20) into a part bounded by φ (solvable in
//!    `X'`) and a product of marginals (solvable in `X'` and `X''`
//!    separately), with the `(2−(ρ1+ρ2))·∫∫τhf` term neglected because
//!    `ρ1+ρ2 ≈ 2` while `2θ` is 10³–10⁴ hours (Eq. 19).
//!
//! This module contains the resulting *evaluation-oriented* formulas as pure
//! functions of the constituent measures, plus numerical-integration
//! utilities used by the test suite to verify the coordinate-swap identity
//! on synthetic densities.

/// Equation 8: the `S1` contribution to `E[W_φ]` for `φ > 0`,
///
/// ```text
/// Y_S1 = ((ρ1+ρ2)·φ + 2(θ−φ)) · P(X'_φ ∈ A'1) · P(X''_{θ−φ} ∈ A''1)
/// ```
pub fn y_s1(theta: f64, phi: f64, rho_sum: f64, p_a1_gop: f64, p_a1_norm_rem: f64) -> f64 {
    (rho_sum * phi + 2.0 * (theta - phi)) * p_a1_gop * p_a1_norm_rem
}

/// Equation 16: the minuend of the `Y_S2` expansion,
///
/// ```text
/// ∫₀^φ (2θ − (2−(ρ1+ρ2))τ)·h(τ) dτ  =  2θ·∫h − (2−(ρ1+ρ2))·∫τh
/// ```
pub fn s2_minuend(theta: f64, rho_sum: f64, i_h: f64, i_tau_h: f64) -> f64 {
    2.0 * theta * i_h - (2.0 - rho_sum) * i_tau_h
}

/// Equation 21: the subtrahend after the coordinate swap (and after
/// neglecting the `(2−(ρ1+ρ2))·∫∫τ·h·f` term per Eq. 19),
///
/// ```text
/// ≈ 2θ·∫₀^φ∫_τ^φ h(τ)f(x) dx dτ  +  2θ·(∫₀^φ h)·(∫_φ^θ f)
/// ```
pub fn s2_subtrahend(theta: f64, i_hf: f64, i_h: f64, i_f: f64) -> f64 {
    2.0 * theta * i_hf + 2.0 * theta * i_h * i_f
}

/// Equation 15: `Y_S2 = γ · (minuend − subtrahend)`.
pub fn y_s2(gamma: f64, minuend: f64, subtrahend: f64) -> f64 {
    gamma * (minuend - subtrahend)
}

/// Equation 5: `E[W₀] = 2θ · P(S1 when φ = 0)`.
pub fn e_w0(theta: f64, p_s1_phi0: f64) -> f64 {
    2.0 * theta * p_s1_phi0
}

/// Equation 1: the performability index
/// `Y = (E[W_I] − E[W₀]) / (E[W_I] − E[W_φ])` with `E[W_I] = 2θ` (Eq. 2).
///
/// Returns `None` when the denominator is not positive (a perfectly
/// reliable system accrues the ideal worth and the index is undefined).
pub fn performability_index(theta: f64, e_w0: f64, e_w_phi: f64) -> Option<f64> {
    let ideal = 2.0 * theta;
    let denom = ideal - e_w_phi;
    if denom <= 0.0 {
        return None;
    }
    Some((ideal - e_w0) / denom)
}

/// Numerical double integral `∫₀^φ ∫_τ^hi h(τ)·f(x) dx dτ` by composite
/// Simpson quadrature; used by tests (and by the Monte-Carlo cross-checks)
/// to validate the coordinate-swap identity of Eq. 20 on closed-form
/// densities.
pub fn double_integral_h_f<H, F>(h: H, f: F, phi: f64, hi: f64, steps: usize) -> f64
where
    H: Fn(f64) -> f64,
    F: Fn(f64) -> f64,
{
    assert!(
        steps >= 2 && steps.is_multiple_of(2),
        "steps must be even and >= 2"
    );
    // Outer integral over τ with inner tail ∫_τ^hi f.
    simpson(|tau| h(tau) * simpson(&f, tau, hi, steps), 0.0, phi, steps)
}

/// Composite Simpson quadrature of `g` over `[a, b]` with an even number of
/// `steps`.
pub fn simpson<G: Fn(f64) -> f64>(g: G, a: f64, b: f64, steps: usize) -> f64 {
    assert!(
        steps >= 2 && steps.is_multiple_of(2),
        "steps must be even and >= 2"
    );
    if b <= a {
        return 0.0;
    }
    let h = (b - a) / steps as f64;
    let mut acc = g(a) + g(b);
    for i in 1..steps {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        acc += w * g(a + i as f64 * h);
    }
    acc * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simpson_integrates_polynomials_exactly() {
        // Simpson is exact for cubics.
        let got = simpson(|x| x * x * x - 2.0 * x + 1.0, 0.0, 2.0, 2);
        let want = 4.0 - 4.0 + 2.0;
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn simpson_empty_interval_is_zero() {
        assert_eq!(simpson(|x| x, 1.0, 1.0, 4), 0.0);
        assert_eq!(simpson(|x| x, 2.0, 1.0, 4), 0.0);
    }

    #[test]
    fn y_s1_at_phi_zero_reduces_to_w0_form() {
        // With φ=0 the Y_S1 expression degenerates to 2θ·P(S1).
        let theta = 100.0;
        let v = y_s1(theta, 0.0, 1.9, 1.0, 0.8);
        assert!((v - 2.0 * theta * 0.8).abs() < 1e-12);
    }

    #[test]
    fn index_above_one_iff_less_degradation() {
        let theta = 10.0;
        // E[W0] = 12, E[Wφ] = 16: degradation 8 vs 4 => Y = 2.
        assert!((performability_index(theta, 12.0, 16.0).unwrap() - 2.0).abs() < 1e-12);
        // Equal worth => Y = 1.
        assert!((performability_index(theta, 12.0, 12.0).unwrap() - 1.0).abs() < 1e-12);
        // Perfect system => undefined.
        assert!(performability_index(theta, 12.0, 20.0).is_none());
    }

    /// The Fig. 5 / Eq. 20 identity on closed-form densities:
    /// ∫₀^φ∫_τ^θ h·f = ∫₀^φ∫_τ^φ h·f + (∫₀^φ h)(∫_φ^θ f).
    fn check_coordinate_swap(lh: f64, lf: f64, phi: f64, theta: f64) {
        let h = move |t: f64| lh * (-lh * t).exp();
        let f = move |x: f64| lf * (-lf * x).exp();
        let steps = 512;

        let lhs = double_integral_h_f(h, f, phi, theta, steps);
        let first = double_integral_h_f(h, f, phi, phi, steps);
        let i_h = simpson(h, 0.0, phi, steps);
        let i_f = simpson(f, phi, theta, steps);
        let rhs = first + i_h * i_f;
        assert!(
            (lhs - rhs).abs() < 1e-6 * lhs.abs().max(1e-3),
            "swap identity violated: {lhs} vs {rhs} (λh={lh}, λf={lf}, φ={phi}, θ={theta})"
        );
    }

    #[test]
    fn coordinate_swap_identity_exponentials() {
        check_coordinate_swap(0.3, 0.1, 2.0, 10.0);
        check_coordinate_swap(1.0, 2.0, 0.5, 3.0);
        check_coordinate_swap(0.01, 0.5, 5.0, 8.0);
    }

    /// Cross-check against the fully closed form for exponential h and f:
    /// note the identity holds for ANY integrable h, f — exponentials just
    /// give us exact values.
    #[test]
    fn double_integral_matches_closed_form() {
        let (lh, lf, phi, theta) = (0.4, 0.2, 3.0, 9.0);
        let h = move |t: f64| lh * (-lh * t).exp();
        let f = move |x: f64| lf * (-lf * x).exp();
        // ∫₀^φ h(τ)·(e^{−lf·τ} − e^{−lf·θ}) dτ
        let closed = lh / (lh + lf) * (1.0 - (-(lh + lf) * phi).exp())
            - (-lf * theta).exp() * (1.0 - (-lh * phi).exp());
        let got = double_integral_h_f(h, f, phi, theta, 1024);
        assert!((got - closed).abs() < 1e-8, "{got} vs {closed}");
    }

    proptest! {
        #[test]
        fn coordinate_swap_identity_random(
            lh in 0.05..2.0f64,
            lf in 0.05..2.0f64,
            split in 0.1..0.9f64,
        ) {
            let theta = 6.0;
            check_coordinate_swap(lh, lf, split * theta, theta);
        }

        #[test]
        fn index_is_monotone_in_e_wphi(
            w0 in 0.0..19.0f64,
            w1 in 0.0..19.9f64,
            w2 in 0.0..19.9f64,
        ) {
            // Larger E[Wφ] (less degradation) gives larger Y.
            let theta = 10.0;
            let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
            let y_lo = performability_index(theta, w0, lo).unwrap();
            let y_hi = performability_index(theta, w0, hi).unwrap();
            prop_assert!(y_hi >= y_lo - 1e-12);
        }
    }
}
