//! `RMGp` — the guarded-operation performance-overhead SAN reward model
//! (paper Figure 7).
//!
//! This model computes the steady-state forward-progress fractions `ρ1`
//! (of the active new version `P1new`) and `ρ2` (of `P2`) under the MDCD
//! protocol. Failure behaviour is deliberately omitted and the ideal
//! execution-environment assumptions preserved (paper §5.1): the
//! message-passing events that drive checkpointing and AT are orders of
//! magnitude more frequent than fault manifestations, so the overhead
//! process reaches steady state long before any dependability event
//! (paper §3.3) — which is what licenses treating `ρ_{t,i}` as the
//! steady-state quantities `ρ_i`.
//!
//! The MDCD rules represented:
//!
//! * `P1new` is always potentially contaminated ⇒ each of its **external**
//!   messages undergoes an AT (duration `1/α`) that blocks `P1new`
//!   (place `P1nExt`);
//! * `P2` establishes a checkpoint (duration `1/β`, place `P1nInt`) when it
//!   receives a message from `P1new` while its dirty bit is clear — the
//!   receipt makes its clean state potentially contaminated; otherwise the
//!   checkpoint is skipped (`P2SkipCKPT` in the paper — here the skip is the
//!   absence of a state change);
//! * `P2`'s **external** messages undergo an AT (place `P2Ext`) only while
//!   its dirty bit is set; a passed AT clears the dirty bit;
//! * the shadow `P1old` checkpoints when it receives a message from a dirty
//!   `P2` while its own dirty bit is clear (place `P2Int`) — this costs
//!   `P1old` time but does not reduce mission worth, since `P1old` is not
//!   servicing the mission.
//!
//! The reward structures are exactly the paper's Table 2 predicate-rate
//! pairs (see [`one_minus_rho1_spec`] and [`one_minus_rho2_spec`]).

use san::{Activity, Case, Marking, PlaceId, RewardSpec, SanModel};

use crate::GsuParams;

/// The places of the overhead model.
#[derive(Debug, Clone, Copy)]
pub struct RmgpPlaces {
    /// `P1new` ready to make forward progress.
    pub p1n_ready: PlaceId,
    /// `P1new` blocked on an AT of its own external message.
    pub p1n_ext: PlaceId,
    /// `P2` blocked establishing a checkpoint for a `P1new` internal message.
    pub p1n_int: PlaceId,
    /// `P2` ready to make forward progress.
    pub p2_ready: PlaceId,
    /// `P2` blocked on an AT of its own external message.
    pub p2_ext: PlaceId,
    /// `P1old` blocked establishing a checkpoint for a `P2` internal message.
    pub p2_int: PlaceId,
    /// `P1old` ready.
    pub p1o_ready: PlaceId,
    /// `P2`'s dirty bit (`P2DB` in the paper).
    pub p2_db: PlaceId,
    /// `P1old`'s dirty bit (`P1oDB` in the paper).
    pub p1o_db: PlaceId,
}

/// A built overhead model plus its place handles.
#[derive(Debug)]
pub struct Rmgp {
    /// The SAN.
    pub model: SanModel,
    /// Handles to the places, for reward predicates.
    pub places: RmgpPlaces,
}

/// Builds `RMGp` for the given parameters.
pub fn build(params: &GsuParams) -> san::Result<Rmgp> {
    let lambda = params.lambda;
    let p_ext = params.p_ext;
    let alpha = params.alpha;
    let beta = params.beta;

    let mut m = SanModel::new("RMGp");
    let p1n_ready = m.add_place("P1nReady", 1);
    let p1n_ext = m.add_place("P1nExt", 0);
    let p1n_int = m.add_place("P1nInt", 0);
    let p2_ready = m.add_place("P2Ready", 1);
    let p2_ext = m.add_place("P2Ext", 0);
    let p2_int = m.add_place("P2Int", 0);
    let p1o_ready = m.add_place("P1oReady", 1);
    let p2_db = m.add_place("P2DB", 0);
    let p1o_db = m.add_place("P1oDB", 0);

    // --- P1new's message cycle ---------------------------------------------
    // External message (prob p_ext): P1new blocks on its AT.
    // Internal message (prob 1−p_ext): if P2 is ready and clean, P2 blocks
    // on a checkpoint; a busy or already-dirty P2 skips checkpointing.
    let og_start_p2_ckpt = m.add_output_gate("p2_ckpt_or_skip", move |mk| {
        if mk.tokens(p2_ready) == 1 && mk.tokens(p2_db) == 0 {
            mk.set_tokens(p2_ready, 0);
            mk.set_tokens(p1n_int, 1);
        }
    });
    m.add_activity(
        Activity::timed("P1nMsg", lambda)
            .with_input_arc(p1n_ready, 1)
            .with_case(Case::with_probability(p_ext).with_output_arc(p1n_ext, 1))
            .with_case(
                Case::with_probability(1.0 - p_ext)
                    .with_output_arc(p1n_ready, 1)
                    .with_output_gate(og_start_p2_ckpt),
            ),
    )?;
    m.add_activity(
        Activity::timed("P1nAT", alpha)
            .with_input_arc(p1n_ext, 1)
            .with_output_arc(p1n_ready, 1),
    )?;
    // Checkpoint completion: P2 resumes, now considered potentially
    // contaminated.
    let og_p2_dirty = m.add_output_gate("set_p2_db", move |mk| mk.set_tokens(p2_db, 1));
    m.add_activity(
        Activity::timed("P2_CKPT", beta)
            .with_input_arc(p1n_int, 1)
            .with_output_arc(p2_ready, 1)
            .with_output_gate(og_p2_dirty),
    )?;

    // --- P2's message cycle -------------------------------------------------
    // External message: AT only while dirty (P2SkipAT otherwise).
    // Internal message: may trigger P1old's checkpoint when P2 is dirty and
    // P1old clean.
    let og_p2_ext = m.add_output_gate("p2_ext_or_skip", move |mk| {
        if mk.tokens(p2_db) == 1 {
            mk.set_tokens(p2_ready, 0);
            mk.set_tokens(p2_ext, 1);
        }
    });
    let og_p1o_ckpt = m.add_output_gate("p1o_ckpt_or_skip", move |mk| {
        if mk.tokens(p2_db) == 1 && mk.tokens(p1o_db) == 0 && mk.tokens(p1o_ready) == 1 {
            mk.set_tokens(p1o_ready, 0);
            mk.set_tokens(p2_int, 1);
        }
    });
    m.add_activity(
        Activity::timed("P2Msg", lambda)
            .with_enabling(move |mk| mk.tokens(p2_ready) == 1)
            .with_case(Case::with_probability(p_ext).with_output_gate(og_p2_ext))
            .with_case(Case::with_probability(1.0 - p_ext).with_output_gate(og_p1o_ckpt)),
    )?;
    // A passed AT restores confidence in P2.
    let og_p2_clean = m.add_output_gate("clear_p2_db", move |mk| mk.set_tokens(p2_db, 0));
    m.add_activity(
        Activity::timed("P2AT", alpha)
            .with_input_arc(p2_ext, 1)
            .with_output_arc(p2_ready, 1)
            .with_output_gate(og_p2_clean),
    )?;
    let og_p1o_dirty = m.add_output_gate("set_p1o_db", move |mk| mk.set_tokens(p1o_db, 1));
    m.add_activity(
        Activity::timed("P1o_CKPT", beta)
            .with_input_arc(p2_int, 1)
            .with_output_arc(p1o_ready, 1)
            .with_output_gate(og_p1o_dirty),
    )?;

    Ok(Rmgp {
        model: m,
        places: RmgpPlaces {
            p1n_ready,
            p1n_ext,
            p1n_int,
            p2_ready,
            p2_ext,
            p2_int,
            p1o_ready,
            p2_db,
            p1o_db,
        },
    })
}

/// The paper's Table 2 reward structure for `1 − ρ1`:
/// predicate `MARK(P1nExt) == 1`, rate 1.
pub fn one_minus_rho1_spec(places: &RmgpPlaces) -> RewardSpec {
    let p1n_ext = places.p1n_ext;
    RewardSpec::new().rate_when(move |mk: &Marking| mk.tokens(p1n_ext) == 1, 1.0)
}

/// The paper's Table 2 reward structure for `1 − ρ2`: predicate
/// `(MARK(P1nInt)==1 && MARK(P2DB)==0) || (MARK(P2Ext)==1 && MARK(P2DB)==1)`,
/// rate 1.
pub fn one_minus_rho2_spec(places: &RmgpPlaces) -> RewardSpec {
    let p1n_int = places.p1n_int;
    let p2_ext = places.p2_ext;
    let p2_db = places.p2_db;
    RewardSpec::new().rate_when(
        move |mk: &Marking| {
            (mk.tokens(p1n_int) == 1 && mk.tokens(p2_db) == 0)
                || (mk.tokens(p2_ext) == 1 && mk.tokens(p2_db) == 1)
        },
        1.0,
    )
}

/// A solved `RMGp` steady state: the overhead measures plus the stationary
/// vector they were read from, for warm-starting neighboring solves.
#[derive(Debug, Clone, PartialEq)]
pub struct RhoSolution {
    /// Forward-progress fraction of `P1new`.
    pub rho1: f64,
    /// Forward-progress fraction of `P2`.
    pub rho2: f64,
    /// The stationary distribution over the `RMGp` state space — pass it as
    /// the `hint` of [`solve_rho_continued`] at a nearby parameter point
    /// (parameter continuation) to cut the solver's iteration count.
    pub pi: Vec<f64>,
}

/// Solves the steady-state overhead measures, returning `(ρ1, ρ2)`.
///
/// # Errors
///
/// Propagates SAN generation and steady-state solver failures.
pub fn solve_rho(params: &GsuParams) -> san::Result<(f64, f64)> {
    let s = solve_rho_continued(params, None)?;
    Ok((s.rho1, s.rho2))
}

/// [`solve_rho`] with an optional warm-start `hint` — the stationary vector
/// from a neighboring parameter point ([`RhoSolution::pi`]). Both reward
/// measures are read from a single cached stationary solve.
///
/// # Errors
///
/// Propagates SAN generation and steady-state solver failures.
pub fn solve_rho_continued(params: &GsuParams, hint: Option<&[f64]>) -> san::Result<RhoSolution> {
    let rmgp = build(params)?;
    let mut analyzer = san::Analyzer::generate(&rmgp.model, &Default::default())?
        .with_steady_method(markov::steady::SteadyMethod::Auto);
    if let Some(h) = hint {
        analyzer = analyzer.with_steady_hint(h.to_vec());
    }
    let overhead1 = analyzer.steady_reward(&one_minus_rho1_spec(&rmgp.places))?;
    let overhead2 = analyzer.steady_reward(&one_minus_rho2_spec(&rmgp.places))?;
    let pi = analyzer.steady_distribution()?.as_ref().clone();
    Ok(RhoSolution {
        rho1: 1.0 - overhead1,
        rho2: 1.0 - overhead2,
        pi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use san::StateSpace;

    fn baseline() -> GsuParams {
        GsuParams::paper_baseline()
    }

    #[test]
    fn state_space_is_a_small_unichain() {
        // The chain is a unichain, not irreducible: the initial clean-dirty-
        // bit states are transient (P1oDB is set once and never cleared).
        let rmgp = build(&baseline()).unwrap();
        let ss = StateSpace::generate(&rmgp.model, &Default::default()).unwrap();
        assert!(ss.n_states() <= 40, "got {}", ss.n_states());
        let pi = markov::steady::steady_state(ss.ctmc(), &Default::default()).unwrap();
        assert!(sparsela::vector::is_stochastic(&pi, 1e-9));
    }

    #[test]
    fn rho_values_match_paper_ballpark_at_baseline() {
        // Paper (§6, Fig. 9/10 captions): α=β=6000 yields ρ1=0.98, ρ2=0.95.
        let (rho1, rho2) = solve_rho(&baseline()).unwrap();
        assert!((rho1 - 0.98).abs() < 0.005, "rho1 = {rho1}");
        assert!((rho2 - 0.95).abs() < 0.02, "rho2 = {rho2}");
    }

    #[test]
    fn rho_drops_with_slower_safeguards() {
        // Paper: α=β=2500 yields ρ1=0.95, ρ2=0.90.
        let p = baseline().with_overhead_rates(2500.0, 2500.0).unwrap();
        let (rho1, rho2) = solve_rho(&p).unwrap();
        assert!((rho1 - 0.95).abs() < 0.01, "rho1 = {rho1}");
        assert!((rho2 - 0.90).abs() < 0.04, "rho2 = {rho2}");
        let (b1, b2) = solve_rho(&baseline()).unwrap();
        assert!(rho1 < b1);
        assert!(rho2 < b2);
    }

    #[test]
    fn rho1_closed_form_cycle() {
        // P1new alternates: send (mean 1/λ), then with prob p_ext an AT of
        // mean 1/α. Renewal-reward: 1−ρ1 = (p_ext/α)/(1/λ + p_ext/α).
        let p = baseline();
        let (rho1, _) = solve_rho(&p).unwrap();
        let want = 1.0 - (p.p_ext / p.alpha) / (1.0 / p.lambda + p.p_ext / p.alpha);
        assert!((rho1 - want).abs() < 1e-9, "{rho1} vs {want}");
    }

    #[test]
    fn instant_safeguards_mean_no_overhead() {
        let p = baseline().with_overhead_rates(1e9, 1e9).unwrap();
        let (rho1, rho2) = solve_rho(&p).unwrap();
        assert!(rho1 > 0.999_99);
        assert!(rho2 > 0.999_99);
    }

    #[test]
    fn overheads_are_probabilities() {
        for (a, b) in [(6000.0, 6000.0), (2500.0, 2500.0), (1000.0, 9000.0)] {
            let p = baseline().with_overhead_rates(a, b).unwrap();
            let (rho1, rho2) = solve_rho(&p).unwrap();
            assert!((0.0..=1.0).contains(&rho1));
            assert!((0.0..=1.0).contains(&rho2));
        }
    }
}
