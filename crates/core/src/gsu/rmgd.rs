//! `RMGd` — the guarded-operation dependability SAN reward model (paper
//! Figure 6).
//!
//! This model represents the stochastic process `X'` over the pre-designated
//! guarded-operation interval `[0, φ]`: the MDCD protocol escorts the active
//! new version `P1new` while `P1old` shadows it; acceptance tests validate
//! external messages of potentially contaminated processes; error detection
//! triggers recovery back to normal mode with `P1old` and `P2` in mission
//! operation (still inside this model, because the constituent measure
//! `∫₀^φ∫_τ^φ h(τ)f(x) dxdτ` — "detected, then the recovered system fails
//! again by φ" — spans both modes).
//!
//! Following the paper, the model tracks the *actual* contamination of each
//! process (`P1Nctn`, `P1Octn`, `P2ctn`) separately from the *perceived*
//! potential contamination (`dirty_bit` of P2), which lets it enumerate the
//! three subtle scenarios of §5.1 without extra machinery:
//!
//! 1. a process considered potentially contaminated is actually clean — its
//!    external message passes the AT and resets `dirty_bit`;
//! 2. a process is actually contaminated but the error is not manifested in
//!    the validated message — after the AT passes, the state is *wrongly*
//!    judged non-contaminated (the `ext_pass` case leaves `P2ctn` set while
//!    clearing `dirty_bit`);
//! 3. a process considered non-contaminated sends an external message
//!    **without undergoing AT** — if it was actually contaminated the
//!    erroneous message slips out and the system fails (`ext_slip`).
//!
//! Acceptance tests are represented instantaneously (their duration is
//! orders of magnitude below inter-fault times — paper §5.1); their
//! *duration* matters only for the overhead model `RMGp`.
//!
//! The state sets of the translated measures (paper §4.2) are expressed over
//! the `detected`/`failure` places:
//!
//! * `A'1` — no error occurred: `detected == 0 && failure == 0`;
//! * `A'2` — no error *detected*: `detected == 0`;
//! * `A'3` — error detected, system alive: `detected == 1 && failure == 0`;
//! * `A'4 ⊂ A'2` — failed with no detection: `detected == 0 && failure == 1`.

use san::{Activity, Case, Marking, PlaceId, SanModel};

use crate::GsuParams;

/// The places of the guarded-operation dependability model.
#[derive(Debug, Clone, Copy)]
pub struct RmgdPlaces {
    /// Actual contamination of the new version `P1new`.
    pub p1n_ctn: PlaceId,
    /// Actual contamination of the shadow old version `P1old`.
    pub p1o_ctn: PlaceId,
    /// Actual contamination of `P2`.
    pub p2_ctn: PlaceId,
    /// Perceived potential contamination of `P2` (the paper's `dirty_bit`).
    pub dirty_bit: PlaceId,
    /// An error has been detected (recovery happened; normal mode follows).
    pub detected: PlaceId,
    /// System failure (absorbing).
    pub failure: PlaceId,
}

impl RmgdPlaces {
    /// `A'1`: no error has occurred.
    pub fn in_a1(&self, mk: &Marking) -> bool {
        mk.tokens(self.detected) == 0 && mk.tokens(self.failure) == 0
    }

    /// `A'2`: no error has been detected (includes undetected failures).
    pub fn in_a2(&self, mk: &Marking) -> bool {
        mk.tokens(self.detected) == 0
    }

    /// `A'3`: an error has occurred and been successfully detected.
    pub fn in_a3(&self, mk: &Marking) -> bool {
        mk.tokens(self.detected) == 1 && mk.tokens(self.failure) == 0
    }

    /// `A'4`: failed without successful detection.
    pub fn in_a4(&self, mk: &Marking) -> bool {
        mk.tokens(self.detected) == 0 && mk.tokens(self.failure) == 1
    }

    /// Detected and subsequently failed (the `∫∫ h·f` measure's target set).
    pub fn detected_then_failed(&self, mk: &Marking) -> bool {
        mk.tokens(self.detected) == 1 && mk.tokens(self.failure) == 1
    }
}

/// A built guarded-operation dependability model plus its place handles.
#[derive(Debug)]
pub struct Rmgd {
    /// The SAN.
    pub model: SanModel,
    /// Handles to the places, for reward predicates.
    pub places: RmgdPlaces,
}

/// Builds `RMGd` for the given parameters.
pub fn build(params: &GsuParams) -> san::Result<Rmgd> {
    let lambda = params.lambda;
    let p_ext = params.p_ext;
    let c = params.coverage;
    let mu_new = params.mu_new;
    let mu_old = params.mu_old;

    let mut m = SanModel::new("RMGd");
    let p1n_ctn = m.add_place("P1Nctn", 0);
    let p1o_ctn = m.add_place("P1Octn", 0);
    let p2_ctn = m.add_place("P2ctn", 0);
    let dirty_bit = m.add_place("dirty_bit", 0);
    let detected = m.add_place("detected", 0);
    let failure = m.add_place("failure", 0);

    let live = move |mk: &Marking| mk.tokens(failure) == 0;
    let gop = move |mk: &Marking| mk.tokens(failure) == 0 && mk.tokens(detected) == 0;
    let recovered = move |mk: &Marking| mk.tokens(failure) == 0 && mk.tokens(detected) == 1;

    // --- Output gates -----------------------------------------------------
    // Failure is absorbing; the gate canonicalizes the irrelevant
    // contamination/dirty markings so each failure mode (detected vs. not)
    // collapses into a single state.
    let og_fail = m.add_output_gate("fail", move |mk| {
        mk.set_tokens(failure, 1);
        mk.set_tokens(p1n_ctn, 0);
        mk.set_tokens(p1o_ctn, 0);
        mk.set_tokens(p2_ctn, 0);
        mk.set_tokens(dirty_bit, 0);
    });
    // Successful detection: the MDCD rollback / roll-forward brings the
    // system into a validity-consistent global state (paper §2), so P1new is
    // retired and both P1old and P2 resume from validated (clean) states;
    // contamination that entered through logged messages is discarded with
    // the rolled-back state.
    let og_detect = m.add_output_gate("detected", move |mk| {
        mk.set_tokens(detected, 1);
        mk.set_tokens(p1n_ctn, 0);
        mk.set_tokens(p1o_ctn, 0);
        mk.set_tokens(p2_ctn, 0);
        mk.set_tokens(dirty_bit, 0);
    });
    // P1Nok_ext / P2ok_ext of the paper: a passed AT restores confidence.
    let og_pass_at = m.add_output_gate("ok_ext", move |mk| {
        mk.set_tokens(dirty_bit, 0);
    });
    // Internal message from P1new: P2 becomes potentially contaminated
    // (dirty bit set), and actually contaminated iff the sender was.
    let og_p1n_internal = m.add_output_gate("p1n_internal", move |mk| {
        if mk.tokens(p1n_ctn) == 1 {
            mk.set_tokens(p2_ctn, 1);
        }
        mk.set_tokens(dirty_bit, 1);
    });
    // Internal message from P2 during G-OP: consumed by both P1new and the
    // shadow P1old, contaminating them iff P2 is contaminated.
    let og_p2_internal_gop = m.add_output_gate("p2_internal_gop", move |mk| {
        if mk.tokens(p2_ctn) == 1 {
            mk.set_tokens(p1n_ctn, 1);
            mk.set_tokens(p1o_ctn, 1);
        }
    });
    // Normal-mode propagation after recovery.
    let og_p2_internal_norm = m.add_output_gate("p2_internal_norm", move |mk| {
        mk.set_tokens(p1o_ctn, 1);
    });
    let og_p1o_internal_norm = m.add_output_gate("p1o_internal_norm", move |mk| {
        mk.set_tokens(p2_ctn, 1);
    });

    // --- Fault manifestations ---------------------------------------------
    m.add_activity(
        Activity::timed("P1Nfm", mu_new)
            .with_enabling(move |mk| gop(mk) && mk.tokens(p1n_ctn) == 0)
            .with_output_arc(p1n_ctn, 1),
    )?;
    // The shadow old version executes throughout; its (rare) faults matter
    // after recovery.
    m.add_activity(
        Activity::timed("P1Ofm", mu_old)
            .with_enabling(move |mk| live(mk) && mk.tokens(p1o_ctn) == 0)
            .with_output_arc(p1o_ctn, 1),
    )?;
    m.add_activity(
        Activity::timed("P2fm", mu_old)
            .with_enabling(move |mk| live(mk) && mk.tokens(p2_ctn) == 0)
            .with_output_arc(p2_ctn, 1),
    )?;

    // --- P1new message sending under G-OP ----------------------------------
    // P1new is permanently considered potentially contaminated, so every
    // external message undergoes an AT (coverage c). Internal messages make
    // P2 potentially contaminated (checkpoint + dirty bit).
    m.add_activity(
        Activity::timed("P1Nmsg", lambda)
            .with_enabling(gop)
            .with_case(
                // Erroneous external message, detected by the AT.
                Case::with_probability_fn(move |mk| {
                    if mk.tokens(p1n_ctn) == 1 {
                        p_ext * c
                    } else {
                        0.0
                    }
                })
                .with_output_gate(og_detect),
            )
            .with_case(
                // Erroneous external message, AT coverage miss: failure.
                Case::with_probability_fn(move |mk| {
                    if mk.tokens(p1n_ctn) == 1 {
                        p_ext * (1.0 - c)
                    } else {
                        0.0
                    }
                })
                .with_output_gate(og_fail),
            )
            .with_case(
                // Correct external message passes the AT; confidence in the
                // message lineage is restored (dirty bit reset).
                Case::with_probability_fn(
                    move |mk| {
                        if mk.tokens(p1n_ctn) == 0 {
                            p_ext
                        } else {
                            0.0
                        }
                    },
                )
                .with_output_gate(og_pass_at),
            )
            .with_case(Case::with_probability(1.0 - p_ext).with_output_gate(og_p1n_internal)),
    )?;

    // --- P2 message sending under G-OP -------------------------------------
    // AT-based validation is applied to P2's external messages only while
    // its dirty bit is set (the MDCD low-overhead policy). A contaminated P2
    // that is *believed* clean therefore fails the system on its next
    // external message (scenario 3). Enabled only when some state can
    // change.
    m.add_activity(
        Activity::timed("P2msg", lambda)
            .with_enabling(move |mk| {
                gop(mk) && (mk.tokens(p2_ctn) == 1 || mk.tokens(dirty_bit) == 1)
            })
            .with_case(
                // Dirty & erroneous: AT detects with coverage c.
                Case::with_probability_fn(move |mk| {
                    if mk.tokens(dirty_bit) == 1 && mk.tokens(p2_ctn) == 1 {
                        p_ext * c
                    } else {
                        0.0
                    }
                })
                .with_output_gate(og_detect),
            )
            .with_case(
                // Dirty & erroneous: AT coverage miss.
                Case::with_probability_fn(move |mk| {
                    if mk.tokens(dirty_bit) == 1 && mk.tokens(p2_ctn) == 1 {
                        p_ext * (1.0 - c)
                    } else {
                        0.0
                    }
                })
                .with_output_gate(og_fail),
            )
            .with_case(
                // Dirty & actually clean: AT passes, dirty bit reset.
                Case::with_probability_fn(move |mk| {
                    if mk.tokens(dirty_bit) == 1 && mk.tokens(p2_ctn) == 0 {
                        p_ext
                    } else {
                        0.0
                    }
                })
                .with_output_gate(og_pass_at),
            )
            .with_case(
                // Believed clean but actually contaminated: no AT, the
                // erroneous external message reaches the external world.
                Case::with_probability_fn(move |mk| {
                    if mk.tokens(dirty_bit) == 0 && mk.tokens(p2_ctn) == 1 {
                        p_ext
                    } else {
                        0.0
                    }
                })
                .with_output_gate(og_fail),
            )
            .with_case(Case::with_probability(1.0 - p_ext).with_output_gate(og_p2_internal_gop)),
    )?;

    // --- Normal mode after recovery (P1old + P2 in mission operation) ------
    // No safeguard functions: a contaminated process's external message
    // fails the system, internal messages propagate contamination.
    m.add_activity(
        Activity::timed("P1Omsg", lambda)
            .with_enabling(move |mk| recovered(mk) && mk.tokens(p1o_ctn) == 1)
            .with_case(Case::with_probability(p_ext).with_output_gate(og_fail))
            .with_case(Case::with_probability(1.0 - p_ext).with_output_gate(og_p1o_internal_norm)),
    )?;
    m.add_activity(
        Activity::timed("P2msgN", lambda)
            .with_enabling(move |mk| recovered(mk) && mk.tokens(p2_ctn) == 1)
            .with_case(Case::with_probability(p_ext).with_output_gate(og_fail))
            .with_case(Case::with_probability(1.0 - p_ext).with_output_gate(og_p2_internal_norm)),
    )?;

    Ok(Rmgd {
        model: m,
        places: RmgdPlaces {
            p1n_ctn,
            p1o_ctn,
            p2_ctn,
            dirty_bit,
            detected,
            failure,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use san::{Analyzer, StateSpace};

    fn baseline() -> GsuParams {
        GsuParams::paper_baseline()
    }

    #[test]
    fn state_space_is_small() {
        let rmgd = build(&baseline()).unwrap();
        let ss = StateSpace::generate(&rmgd.model, &Default::default()).unwrap();
        assert!(ss.n_states() <= 64, "got {}", ss.n_states());
        assert!(ss.n_states() >= 8);
    }

    #[test]
    fn a_sets_partition_reachable_states() {
        let rmgd = build(&baseline()).unwrap();
        let ss = StateSpace::generate(&rmgd.model, &Default::default()).unwrap();
        let p = rmgd.places;
        for i in 0..ss.n_states() {
            let mk = ss.marking(i);
            let cats = [
                p.in_a1(mk),
                p.in_a3(mk),
                p.in_a4(mk),
                p.detected_then_failed(mk),
            ];
            assert_eq!(
                cats.iter().filter(|&&b| b).count(),
                1,
                "state {mk} must be in exactly one category"
            );
            // A'4 ⊂ A'2 (paper: "thus A'4 is a proper subset of A'2").
            if p.in_a4(mk) {
                assert!(p.in_a2(mk));
            }
        }
    }

    #[test]
    fn initial_state_is_all_clean() {
        let rmgd = build(&baseline()).unwrap();
        let ss = StateSpace::generate(&rmgd.model, &Default::default()).unwrap();
        let init: Vec<f64> = ss.initial_distribution().to_vec();
        let idx = init.iter().position(|&p| p == 1.0).unwrap();
        assert!(rmgd.places.in_a1(ss.marking(idx)));
        assert_eq!(ss.marking(idx).total_tokens(), 0);
    }

    #[test]
    fn detection_probability_scales_with_coverage() {
        let phi = 5_000.0;
        let mut last = 0.0;
        for cov in [0.2, 0.5, 0.95] {
            let p = baseline().with_coverage(cov).unwrap();
            let rmgd = build(&p).unwrap();
            let an = Analyzer::generate(&rmgd.model, &Default::default()).unwrap();
            let places = rmgd.places;
            let det = an.probability_at(phi, move |mk| places.in_a3(mk)).unwrap();
            assert!(det > last, "coverage {cov}: {det} should exceed {last}");
            last = det;
        }
    }

    #[test]
    fn no_failure_with_perfect_components() {
        // µ_new = µ_old ≈ 0: the system stays in A'1 almost surely.
        let mut p = baseline();
        p.mu_new = 1e-15;
        p.mu_old = 0.0;
        let rmgd = build(&p).unwrap();
        let an = Analyzer::generate(&rmgd.model, &Default::default()).unwrap();
        let places = rmgd.places;
        let a1 = an
            .probability_at(10_000.0, move |mk| places.in_a1(mk))
            .unwrap();
        assert!(a1 > 1.0 - 1e-9);
    }

    #[test]
    fn survival_and_detection_roughly_exponential() {
        // For µ_new·φ = 0.5 the A'1 probability should be close to
        // exp(−µ_new·φ) (faults are detected or fail within ~1/(λ·p_ext·c)
        // of manifestation, which is negligible at this scale).
        let p = baseline();
        let rmgd = build(&p).unwrap();
        let an = Analyzer::generate(&rmgd.model, &Default::default()).unwrap();
        let places = rmgd.places;
        let phi = 5_000.0;
        let a1 = an.probability_at(phi, move |mk| places.in_a1(mk)).unwrap();
        let expect = (-p.mu_new * phi).exp();
        assert!((a1 - expect).abs() < 0.02, "{a1} vs {expect}");
        // Detected fraction tracks c·(1−exp(−µnew·φ)) closely; P2's own
        // (rare, µold-rate) faults add a sliver of extra detection mass, so
        // this is a tight approximation rather than a strict bound.
        let det = an.probability_at(phi, move |mk| places.in_a3(mk)).unwrap();
        let approx = p.coverage * (1.0 - expect);
        assert!(det <= approx + 1e-3, "{det} vs {approx}");
        assert!(det > 0.8 * approx, "{det} vs {approx}");
    }

    #[test]
    fn detected_then_failed_needs_long_horizons() {
        // The recovered system runs old software (µ_old = 1e-8): failing
        // again within φ is possible but rare.
        let p = baseline();
        let rmgd = build(&p).unwrap();
        let an = Analyzer::generate(&rmgd.model, &Default::default()).unwrap();
        let places = rmgd.places;
        let hf = an
            .probability_at(10_000.0, move |mk| places.detected_then_failed(mk))
            .unwrap();
        assert!(hf > 0.0);
        assert!(hf < 1e-3);
    }

    #[test]
    fn zero_coverage_never_detects() {
        let p = baseline().with_coverage(0.0).unwrap();
        let rmgd = build(&p).unwrap();
        let an = Analyzer::generate(&rmgd.model, &Default::default()).unwrap();
        let places = rmgd.places;
        let det = an
            .probability_at(10_000.0, move |mk| mk.tokens(places.detected) == 1)
            .unwrap();
        assert_eq!(det, 0.0);
    }
}
