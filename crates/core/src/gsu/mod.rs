//! The three SAN reward models at the base-model level (paper §5).
//!
//! The successive model translation of §4 reduces the performability index
//! `Y` to nine constituent reward variables; this module provides the
//! composite base model that supports them:
//!
//! * [`rmgd`] — `RMGd`, dependability behaviour during the guarded-operation
//!   interval (submodel of `X'` for dependability measures; paper Fig. 6);
//! * [`rmgp`] — `RMGp`, performance-overhead behaviour under the G-OP mode
//!   (submodel of `X'` for the steady-state measures `ρ1`, `ρ2`; Fig. 7);
//! * [`rmnd`] — `RMNd`, normal-mode behaviour (the model of `X''`; Fig. 8).

pub mod measure_engine;
pub mod rmgd;
pub mod rmgp;
pub mod rmnd;

pub use measure_engine::{gop_measures, GopMeasures, GopStateSets};
pub use rmgd::{Rmgd, RmgdPlaces};
pub use rmgp::{Rmgp, RmgpPlaces};
pub use rmnd::{Rmnd, RmndPlaces};
