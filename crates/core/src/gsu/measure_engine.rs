//! The reusable guarded-operation measure engine.
//!
//! The Table 1 constituent measures are defined purely in terms of the
//! `A'1 … A'4` state sets of a dependability model — not in terms of the
//! paper's specific `RMGd` net. This module captures that contract as the
//! [`GopStateSets`] trait plus one solver routine, [`gop_measures`], so the
//! scenario layer can feed *generalized* G-OP models (multiple escorts,
//! upgrade waves, aging states) through exactly the same translation that
//! [`crate::GsuAnalysis`] uses for the paper's model.

use san::{Analyzer, Marking, RewardSpec};

use crate::gsu::rmgd::RmgdPlaces;
use crate::Result;

/// The state-set classification every guarded-operation dependability model
/// must expose (paper §4.2):
///
/// * `A'1` — no error has occurred;
/// * `A'2` — no error has been *detected* (includes undetected failures);
/// * `A'3` — an error was detected and the system is alive;
/// * `A'4 ⊂ A'2` — failed without successful detection;
/// * detected-then-failed — the target set of the `∫∫ h·f` measure.
pub trait GopStateSets {
    /// `A'1`: no error has occurred.
    fn in_a1(&self, mk: &Marking) -> bool;
    /// `A'2`: no error has been detected.
    fn in_a2(&self, mk: &Marking) -> bool;
    /// `A'3`: error detected, system alive.
    fn in_a3(&self, mk: &Marking) -> bool;
    /// `A'4`: failed without successful detection.
    fn in_a4(&self, mk: &Marking) -> bool;
    /// Detected and subsequently failed again.
    fn detected_then_failed(&self, mk: &Marking) -> bool;
    /// An error has been detected (alive or not) — the first-passage target
    /// of the exact truncated detection-time moment.
    fn is_detected(&self, mk: &Marking) -> bool;
}

impl GopStateSets for RmgdPlaces {
    fn in_a1(&self, mk: &Marking) -> bool {
        RmgdPlaces::in_a1(self, mk)
    }
    fn in_a2(&self, mk: &Marking) -> bool {
        RmgdPlaces::in_a2(self, mk)
    }
    fn in_a3(&self, mk: &Marking) -> bool {
        RmgdPlaces::in_a3(self, mk)
    }
    fn in_a4(&self, mk: &Marking) -> bool {
        RmgdPlaces::in_a4(self, mk)
    }
    fn detected_then_failed(&self, mk: &Marking) -> bool {
        RmgdPlaces::detected_then_failed(self, mk)
    }
    fn is_detected(&self, mk: &Marking) -> bool {
        mk.tokens(self.detected) == 1
    }
}

/// The five G-OP–model constituent measures of Table 1, solved on one
/// dependability model for one φ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GopMeasures {
    /// `P(X'_φ ∈ A'1)` — instant-of-time at φ.
    pub p_a1: f64,
    /// `∫₀^φ h(τ)dτ` — instant-of-time at φ on `A'3`.
    pub i_h: f64,
    /// `∫₀^φ∫_τ^φ h(τ)f(x)dxdτ` — instant-of-time at φ on
    /// detected-then-failed.
    pub i_hf: f64,
    /// `∫₀^φ τ·h(τ)dτ` per the Table 1 reward structure.
    pub i_tau_h: f64,
    /// The exact truncated moment `E[τ_d·1{τ_d ≤ φ}]`.
    pub i_tau_h_exact: f64,
}

/// Solves the five G-OP dependability measures on `analyzer` using the
/// state classification in `sets`.
///
/// At `φ = 0` the G-OP process is degenerate (no error can occur in an
/// empty interval) and the measures are returned in closed form, exactly
/// as [`crate::GsuAnalysis`] does for the paper's model.
///
/// # Errors
///
/// Propagates transient-solver and first-passage failures.
pub fn gop_measures<S: GopStateSets + Clone + Send + Sync + 'static>(
    analyzer: &Analyzer,
    sets: S,
    phi: f64,
) -> Result<GopMeasures> {
    if phi == 0.0 {
        return Ok(GopMeasures {
            p_a1: 1.0,
            i_h: 0.0,
            i_hf: 0.0,
            i_tau_h: 0.0,
            i_tau_h_exact: 0.0,
        });
    }
    // One transient solve serves all three instant-of-time measures: they
    // only differ in which states of π(φ) they sum.
    let pi_phi = analyzer.distribution_at(phi)?;
    let space = analyzer.state_space();
    let p_a1 = space.probability_of(&pi_phi, |mk| sets.in_a1(mk));
    let i_h = space.probability_of(&pi_phi, |mk| sets.in_a3(mk));
    let i_hf = space.probability_of(&pi_phi, |mk| sets.detected_then_failed(mk));
    // Table 1: rate +1 on A'2 (no detection), −1 on A'4 (failed without
    // detection), accumulated over [0, φ].
    let s2 = sets.clone();
    let s4 = sets.clone();
    let spec = RewardSpec::new()
        .rate_when(move |mk| s2.in_a2(mk), 1.0)
        .rate_when(move |mk| s4.in_a4(mk), -1.0);
    let i_tau_h = analyzer.accumulated_reward(&spec, phi)?;
    // The exact truncated moment E[τ·1{τ ≤ φ}] by first-passage analysis
    // into the detected states — see DESIGN.md on the Table-1 censoring.
    let detected_states = space.states_where(|mk| sets.is_detected(mk));
    let i_tau_h_exact = markov::first_passage::truncated_mean_hitting_time(
        space.ctmc(),
        space.initial_distribution(),
        &detected_states,
        phi,
        &Default::default(),
    )?;
    Ok(GopMeasures {
        p_a1,
        i_h,
        i_hf,
        i_tau_h,
        i_tau_h_exact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsu::rmgd;
    use crate::GsuParams;

    #[test]
    fn engine_matches_direct_measures_on_rmgd() {
        let params = GsuParams::paper_baseline();
        let built = rmgd::build(&params).unwrap();
        let analyzer = Analyzer::generate(&built.model, &Default::default()).unwrap();
        let direct = crate::GsuAnalysis::new(params).unwrap();
        for phi in [0.0, 2500.0, 7000.0] {
            let engine = gop_measures(&analyzer, built.places, phi).unwrap();
            let m = direct.measures(phi).unwrap();
            assert_eq!(engine.p_a1, m.p_a1_gop, "phi = {phi}");
            assert_eq!(engine.i_h, m.i_h, "phi = {phi}");
            assert_eq!(engine.i_hf, m.i_hf, "phi = {phi}");
            assert_eq!(engine.i_tau_h, m.i_tau_h, "phi = {phi}");
            assert_eq!(engine.i_tau_h_exact, m.i_tau_h_exact, "phi = {phi}");
        }
    }

    #[test]
    fn phi_zero_is_degenerate() {
        let params = GsuParams::paper_baseline();
        let built = rmgd::build(&params).unwrap();
        let analyzer = Analyzer::generate(&built.model, &Default::default()).unwrap();
        let m = gop_measures(&analyzer, built.places, 0.0).unwrap();
        assert_eq!(m.p_a1, 1.0);
        assert_eq!(m.i_h, 0.0);
        assert_eq!(m.i_tau_h_exact, 0.0);
    }
}
