//! `RMNd` — the normal-mode SAN reward model (paper Figure 8).
//!
//! Represents the system behaviour when no safeguard functions run: two
//! active processes exchange messages; a fault manifestation contaminates a
//! process state; a contaminated process's **internal** message contaminates
//! its peer, and a contaminated process's **external** message — undetected,
//! since acceptance tests are not performed in the normal mode — causes
//! system failure.
//!
//! The model is used for three constituent measures (paper §5.2.3), all with
//! the same predicate-rate pair `MARK(failure) == 0 → 1`:
//!
//! * `P(X''_θ ∈ A''1)` with the first component at rate µ_new (unprotected
//!   upgraded system over the full window — yields `E[W₀]`);
//! * `P(X''_{θ−φ} ∈ A''1)` with rate µ_new (upgraded system after a
//!   successful guarded operation);
//! * `∫_φ^θ f(x) dx = 1 − P(X''_{θ−φ} ∈ A''1)` with rate µ_old (the
//!   recovered system, running the old version, failing before the next
//!   upgrade).

use san::{Activity, Case, PlaceId, SanModel};

use crate::GsuParams;

/// The places of the normal-mode model, for use in reward predicates.
#[derive(Debug, Clone, Copy)]
pub struct RmndPlaces {
    /// Actual contamination of the first active component.
    pub p1_ctn: PlaceId,
    /// Actual contamination of the second component (P2).
    pub p2_ctn: PlaceId,
    /// System failure (absorbing).
    pub failure: PlaceId,
}

/// A built normal-mode model plus its place handles.
#[derive(Debug)]
pub struct Rmnd {
    /// The SAN.
    pub model: SanModel,
    /// Handles to the places, for reward predicates.
    pub places: RmndPlaces,
}

/// Builds `RMNd` with fault-manifestation rate `mu_first` for the first
/// component (µ_new for the upgraded system, µ_old for the recovered one);
/// P2 always runs an old version at `params.mu_old`.
pub fn build(params: &GsuParams, mu_first: f64) -> san::Result<Rmnd> {
    let lambda = params.lambda;
    let p_ext = params.p_ext;
    let mu_old = params.mu_old;

    let mut m = SanModel::new("RMNd");
    let p1_ctn = m.add_place("P1ctn", 0);
    let p2_ctn = m.add_place("P2ctn", 0);
    let failure = m.add_place("failure", 0);

    let live = move |mk: &san::Marking| mk.tokens(failure) == 0;

    // Fault manifestations.
    m.add_activity(
        Activity::timed("P1fm", mu_first)
            .with_enabling(move |mk| live(mk) && mk.tokens(p1_ctn) == 0)
            .with_output_arc(p1_ctn, 1),
    )?;
    m.add_activity(
        Activity::timed("P2fm", mu_old)
            .with_enabling(move |mk| live(mk) && mk.tokens(p2_ctn) == 0)
            .with_output_arc(p2_ctn, 1),
    )?;

    // Message sending by a contaminated process: external messages fail the
    // system, internal messages contaminate the peer. Messages from clean
    // processes change no state and are therefore not modelled.
    // Failure is absorbing; contamination no longer matters, so the gate
    // canonicalizes it away and all failure paths merge into one state.
    let og_fail = m.add_output_gate("fail", move |mk| {
        mk.set_tokens(failure, 1);
        mk.set_tokens(p1_ctn, 0);
        mk.set_tokens(p2_ctn, 0);
    });
    let og_p1_to_p2 = m.add_output_gate("contaminate_p2", move |mk| mk.set_tokens(p2_ctn, 1));
    let og_p2_to_p1 = m.add_output_gate("contaminate_p1", move |mk| mk.set_tokens(p1_ctn, 1));

    m.add_activity(
        Activity::timed("P1msg", lambda)
            .with_enabling(move |mk| live(mk) && mk.tokens(p1_ctn) == 1)
            .with_case(Case::with_probability(p_ext).with_output_gate(og_fail))
            .with_case(Case::with_probability(1.0 - p_ext).with_output_gate(og_p1_to_p2)),
    )?;
    m.add_activity(
        Activity::timed("P2msg", lambda)
            .with_enabling(move |mk| live(mk) && mk.tokens(p2_ctn) == 1)
            .with_case(Case::with_probability(p_ext).with_output_gate(og_fail))
            .with_case(Case::with_probability(1.0 - p_ext).with_output_gate(og_p2_to_p1)),
    )?;

    Ok(Rmnd {
        model: m,
        places: RmndPlaces {
            p1_ctn,
            p2_ctn,
            failure,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use san::{Analyzer, RewardSpec, StateSpace};

    fn baseline() -> GsuParams {
        GsuParams::paper_baseline()
    }

    #[test]
    fn state_space_is_tiny() {
        let rmnd = build(&baseline(), 1e-4).unwrap();
        let ss = StateSpace::generate(&rmnd.model, &Default::default()).unwrap();
        // (clean,clean), (dirty,clean), (clean,dirty), (dirty,dirty), failure.
        assert_eq!(ss.n_states(), 5);
    }

    #[test]
    fn failure_is_absorbing() {
        let rmnd = build(&baseline(), 1e-4).unwrap();
        let ss = StateSpace::generate(&rmnd.model, &Default::default()).unwrap();
        let failure = rmnd.places.failure;
        let fail_states = ss.states_where(|mk| mk.tokens(failure) == 1);
        assert_eq!(fail_states.len(), 1);
        assert_eq!(ss.ctmc().exit_rate(fail_states[0]), 0.0);
    }

    #[test]
    fn survival_close_to_exponential_bound() {
        // With λ·p_ext ≫ µ, failure follows the first fault almost
        // immediately, so P[no failure by t] ≈ exp(−(µ1+µ2)·t); with
        // µ2 ≈ 0 this is exp(−µ1·t).
        let p = baseline();
        let rmnd = build(&p, p.mu_new).unwrap();
        let an = Analyzer::generate(&rmnd.model, &Default::default()).unwrap();
        let failure = rmnd.places.failure;
        let surv = an
            .probability_at(p.theta, move |mk| mk.tokens(failure) == 0)
            .unwrap();
        let bound = (-p.mu_new * p.theta).exp();
        assert!(
            surv <= bound + 1e-9,
            "survival {surv} must not exceed {bound}"
        );
        // The lag between manifestation and the failing external message is
        // ~1/(λ·p_ext) = 1/120 h, so the two probabilities are close.
        assert!((surv - bound).abs() < 0.01, "{surv} vs {bound}");
    }

    #[test]
    fn old_version_survival_is_nearly_one() {
        let p = baseline();
        let rmnd = build(&p, p.mu_old).unwrap();
        let an = Analyzer::generate(&rmnd.model, &Default::default()).unwrap();
        let failure = rmnd.places.failure;
        let surv = an
            .probability_at(p.theta, move |mk| mk.tokens(failure) == 0)
            .unwrap();
        assert!(surv > 0.999);
    }

    #[test]
    fn survival_decreases_with_horizon() {
        let p = baseline();
        let rmnd = build(&p, p.mu_new).unwrap();
        let an = Analyzer::generate(&rmnd.model, &Default::default()).unwrap();
        let failure = rmnd.places.failure;
        let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(failure) == 0, 1.0);
        let mut last = 1.0;
        for &t in &[100.0, 1000.0, 5000.0, 10_000.0] {
            let s = an.instant_reward(&spec, t).unwrap();
            assert!(s < last);
            last = s;
        }
    }
}
