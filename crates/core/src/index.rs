//! Assembly of the performability index `Y` from constituent measures.

use std::fmt;

use crate::{translation, ConstituentMeasures, PerfError, Result};

/// Policy for the discount factor γ of Eq. 4 — the additional mission-worth
/// reduction charged to an unsuccessful-but-safe upgrade relative to a
/// successful one.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum GammaPolicy {
    /// A fixed discount in `(0, 1]`.
    Constant(f64),
    /// The paper's §6 choice: `γ = 1 − τ/θ`, where `τ` is "the mean time to
    /// error detection" — i.e. the Table 1 constituent measure
    /// `∫₀^φ τh(τ)dτ` ([`ConstituentMeasures::i_tau_h`]). Safeguard cost
    /// paid up to the detection point is wasted when the upgrade is
    /// abandoned, so later detections are worth less; because this τ grows
    /// with φ, the discount is what turns `Y(φ)` over and produces the
    /// interior optimum of Figures 9–12.
    #[default]
    MeanDetectionFraction,
    /// An alternative reading for sensitivity studies: `γ = 1 − τ̄/θ` with
    /// the *exact conditional* mean detection time
    /// `τ̄ = E[τ·1{detect}]/P[detect]`. This matches the simulator's
    /// per-path discounting in expectation much more closely, but yields
    /// a systematically weaker downturn of `Y(φ)` (see the `ablation_tau`
    /// experiment).
    ExactMeanDetectionFraction,
}

impl GammaPolicy {
    /// Evaluates γ for a mission window θ and a set of constituent measures.
    pub fn gamma(&self, theta: f64, measures: &ConstituentMeasures) -> f64 {
        match *self {
            GammaPolicy::Constant(g) => g,
            GammaPolicy::MeanDetectionFraction => (1.0 - measures.i_tau_h / theta).clamp(0.0, 1.0),
            GammaPolicy::ExactMeanDetectionFraction => {
                match measures.conditional_mean_detection_time() {
                    Some(tau_bar) => (1.0 - tau_bar / theta).clamp(0.0, 1.0),
                    None => 1.0,
                }
            }
        }
    }
}

/// One evaluated point of the performability analysis: the index `Y(φ)`
/// together with every intermediate quantity of the translated formulation,
/// exposed per C-INTERMEDIATE so callers can inspect *why* a φ wins (the
/// paper does exactly this in §6 when explaining the θ=5000 results).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Guarded-operation duration evaluated.
    pub phi: f64,
    /// The performability index `Y(φ)` (Eq. 1); `> 1` means guarded
    /// operation reduces expected total performance degradation.
    pub y: f64,
    /// `E[W₀]` — expected mission worth with no guarded operation (Eq. 5).
    pub e_w0: f64,
    /// `E[W_φ]` — expected mission worth with G-OP duration φ (Eq. 6).
    pub e_w_phi: f64,
    /// The `S1` (upgrade succeeds) contribution to `E[W_φ]` (Eq. 8).
    pub y_s1: f64,
    /// The `S2` (error detected and recovered) contribution (Eqs. 15–21).
    pub y_s2: f64,
    /// The discount factor applied to `S2` worth.
    pub gamma: f64,
    /// The constituent reward variables behind this point.
    pub measures: ConstituentMeasures,
}

impl fmt::Display for SweepPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "φ = {:8.1}  Y = {:.4}  (E[W0] = {:.1}, E[Wφ] = {:.1}, S1 = {:.1}, S2 = {:.1}, γ = {:.3})",
            self.phi, self.y, self.e_w0, self.e_w_phi, self.y_s1, self.y_s2, self.gamma
        )
    }
}

/// Assembles `Y(φ)` and all intermediate quantities from validated
/// constituent measures (the last translation step of Figure 3).
///
/// # Errors
///
/// * [`PerfError::MeasureInvariant`] when the measures violate structural
///   bounds or the assembled worths leave `[0, 2θ]`.
pub fn assemble(
    theta: f64,
    phi: f64,
    measures: &ConstituentMeasures,
    gamma_policy: GammaPolicy,
) -> Result<SweepPoint> {
    measures.validate(phi)?;
    let ideal = 2.0 * theta;
    let e_w0 = translation::e_w0(theta, measures.p_a1_norm_theta);

    let (y_s1, y_s2, gamma) = if phi == 0.0 {
        // Boundary case (§3.3, §4.1): S2 is degenerate and S1 reduces to the
        // no-guard scenario, so E[W_0] = E[W_φ].
        (e_w0, 0.0, 1.0)
    } else {
        let rho_sum = measures.rho_sum();
        let y_s1 = translation::y_s1(
            theta,
            phi,
            rho_sum,
            measures.p_a1_gop,
            measures.p_a1_norm_rem,
        );
        let gamma = gamma_policy.gamma(theta, measures);
        let minuend = translation::s2_minuend(theta, rho_sum, measures.i_h, measures.i_tau_h);
        let subtrahend =
            translation::s2_subtrahend(theta, measures.i_hf, measures.i_h, measures.i_f);
        // The translated S2 worth can dip (harmlessly) below zero when
        // detection mass is tiny — the Table 1 ∫τh structure then counts
        // time the exact integral would not (see DESIGN.md). Clamp at zero:
        // worth is non-negative by construction (Eq. 4).
        let y_s2 = translation::y_s2(gamma, minuend, subtrahend).max(0.0);
        (y_s1, y_s2, gamma)
    };

    let e_w_phi = y_s1 + y_s2;
    if !(-(1e-9) * ideal..=ideal * (1.0 + 1e-9)).contains(&e_w_phi) {
        return Err(PerfError::MeasureInvariant {
            context: format!("E[Wφ] = {e_w_phi} outside [0, 2θ = {ideal}]"),
        });
    }
    let y = translation::performability_index(theta, e_w0, e_w_phi).ok_or_else(|| {
        PerfError::MeasureInvariant {
            context: format!("E[Wφ] = {e_w_phi} reaches ideal worth; Y undefined"),
        }
    })?;

    Ok(SweepPoint {
        phi,
        y,
        e_w0,
        e_w_phi,
        y_s1,
        y_s2,
        gamma,
        measures: *measures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measures() -> ConstituentMeasures {
        ConstituentMeasures {
            p_a1_gop: 0.5,
            p_a1_norm_theta: 0.37,
            p_a1_norm_rem: 0.74,
            rho1: 0.98,
            rho2: 0.95,
            i_h: 0.45,
            i_tau_h: 5000.0,
            i_tau_h_exact: 1400.0,
            i_hf: 1e-4,
            i_f: 3e-5,
        }
    }

    #[test]
    fn phi_zero_gives_y_one() {
        let mut m = measures();
        // At φ=0 the G-OP measures are degenerate.
        m.p_a1_gop = 1.0;
        m.i_h = 0.0;
        m.i_tau_h = 0.0;
        m.i_tau_h_exact = 0.0;
        m.i_hf = 0.0;
        m.p_a1_norm_rem = m.p_a1_norm_theta;
        let pt = assemble(10_000.0, 0.0, &m, GammaPolicy::default()).unwrap();
        assert!((pt.y - 1.0).abs() < 1e-12);
        assert_eq!(pt.e_w0, pt.e_w_phi);
        assert_eq!(pt.y_s2, 0.0);
    }

    #[test]
    fn worth_components_positive_at_interior_phi() {
        let pt = assemble(10_000.0, 7000.0, &measures(), GammaPolicy::default()).unwrap();
        assert!(pt.y_s1 > 0.0);
        assert!(pt.y_s2 > 0.0);
        assert!(pt.y > 1.0, "these measures describe a beneficial G-OP");
        assert!(pt.e_w_phi < 2.0 * 10_000.0);
    }

    #[test]
    fn gamma_constant_policy() {
        let pt = assemble(10_000.0, 7000.0, &measures(), GammaPolicy::Constant(0.5)).unwrap();
        assert_eq!(pt.gamma, 0.5);
        let pt2 = assemble(10_000.0, 7000.0, &measures(), GammaPolicy::Constant(1.0)).unwrap();
        assert!(pt2.y_s2 > pt.y_s2);
    }

    #[test]
    fn gamma_mean_detection_policy_matches_formula() {
        let m = measures();
        let pt = assemble(10_000.0, 7000.0, &m, GammaPolicy::MeanDetectionFraction).unwrap();
        assert!((pt.gamma - (1.0 - m.i_tau_h / 10_000.0)).abs() < 1e-12);
    }

    #[test]
    fn gamma_is_one_at_instant_detection() {
        let mut m = measures();
        m.i_tau_h = 0.0;
        m.i_tau_h_exact = 0.0;
        let pt = assemble(10_000.0, 7000.0, &m, GammaPolicy::MeanDetectionFraction).unwrap();
        assert_eq!(pt.gamma, 1.0);
    }

    #[test]
    fn exact_gamma_policy_is_weaker_discount() {
        let m = measures();
        let table = assemble(10_000.0, 7000.0, &m, GammaPolicy::MeanDetectionFraction).unwrap();
        let exact = assemble(
            10_000.0,
            7000.0,
            &m,
            GammaPolicy::ExactMeanDetectionFraction,
        )
        .unwrap();
        // Exact conditional mean < Table-1 measure => larger γ => larger Y.
        assert!(exact.gamma > table.gamma);
        assert!(exact.y > table.y);
        let want = 1.0 - (m.i_tau_h_exact / (m.i_h + m.i_hf)) / 10_000.0;
        assert!((exact.gamma - want).abs() < 1e-12);
    }

    #[test]
    fn s2_clamped_nonnegative_without_detection() {
        let mut m = measures();
        m.i_h = 0.0;
        m.i_hf = 0.0;
        m.i_tau_h = 100.0;
        m.i_tau_h_exact = 0.0;
        let pt = assemble(10_000.0, 7000.0, &m, GammaPolicy::MeanDetectionFraction).unwrap();
        // Minuend is negative here; worth is clamped at zero (Eq. 4 bounds).
        assert_eq!(pt.y_s2, 0.0);
    }

    #[test]
    fn invalid_measures_rejected() {
        let mut m = measures();
        m.p_a1_gop = 2.0;
        assert!(assemble(10_000.0, 7000.0, &m, GammaPolicy::default()).is_err());
    }

    #[test]
    fn display_shows_key_fields() {
        let pt = assemble(10_000.0, 7000.0, &measures(), GammaPolicy::default()).unwrap();
        let s = pt.to_string();
        assert!(s.contains("Y ="));
        assert!(s.contains("γ ="));
    }
}
