//! Markdown reporting of a complete analysis.
//!
//! Produces the artifact an engineering review would circulate: the
//! parameter set, the derived overhead, the full `Y(φ)` sweep, constituent
//! measures at the optimum, and the decision recommendation — everything
//! §6 of the paper walks through, in one document.

use std::fmt::Write as _;

use crate::recommend::{recommend, Constraints, Decision};
use crate::{GsuAnalysis, Result, SweepPoint};

/// Options controlling report generation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportOptions {
    /// φ grid intervals for the sweep table.
    pub sweep_steps: usize,
    /// Golden-section refinements for the optimum.
    pub refinements: usize,
    /// Decision thresholds.
    pub constraints: Constraints,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            sweep_steps: 10,
            refinements: 12,
            constraints: Constraints::default(),
        }
    }
}

/// Renders a full markdown report for the analysed parameter set.
///
/// # Errors
///
/// Propagates sweep / recommendation failures.
pub fn markdown(analysis: &GsuAnalysis, opts: &ReportOptions) -> Result<String> {
    let params = *analysis.params();
    let sweep = analysis.sweep_grid(opts.sweep_steps)?;
    let rec = recommend(
        analysis,
        &opts.constraints,
        opts.sweep_steps,
        opts.refinements,
    )?;
    let best = &rec.best;

    let mut md = String::new();
    let _ = writeln!(md, "# Guarded-operation duration analysis\n");
    let _ = writeln!(md, "## Parameters\n\n`{params}`\n");
    let (rho1, rho2) = analysis.rho();
    let _ = writeln!(
        md,
        "Derived overhead (RMGp steady state): ρ1 = {rho1:.4}, ρ2 = {rho2:.4}\n"
    );

    let _ = writeln!(md, "## Recommendation\n");
    match rec.decision {
        Decision::Guard { phi } => {
            let _ = writeln!(
                md,
                "**Guard for φ* ≈ {:.0} h** (Y = {:.4}): guarded operation reduces \
                 expected total performance degradation by a factor of {:.2}; \
                 mission-failure probability drops from {:.3} (unguarded) to {:.3}.\n",
                phi,
                best.y,
                best.y,
                rec.failure_probability_unguarded,
                rec.failure_probability_guarded
            );
        }
        Decision::FlyUnguarded => {
            let _ = writeln!(
                md,
                "**Activate without a guard**: the best achievable index Y = {:.4} \
                 at φ = {:.0} does not clear the benefit threshold ({:.0}%).\n",
                best.y,
                best.phi,
                opts.constraints.min_benefit * 100.0
            );
        }
        Decision::RejectUpgrade => {
            let _ = writeln!(
                md,
                "**Reject / postpone the upgrade**: neither guarded \
                 (P[fail] = {:.3}) nor unguarded (P[fail] = {:.3}) operation meets \
                 the failure cap.\n",
                rec.failure_probability_guarded, rec.failure_probability_unguarded
            );
        }
    }

    let _ = writeln!(md, "## Y(φ) sweep\n");
    let _ = writeln!(md, "| φ (h) | Y | E[Wφ] | S1 worth | S2 worth | γ |");
    let _ = writeln!(md, "|---|---|---|---|---|---|");
    for p in &sweep {
        let _ = writeln!(
            md,
            "| {:.0} | {:.4} | {:.0} | {:.0} | {:.0} | {:.3} |",
            p.phi, p.y, p.e_w_phi, p.y_s1, p.y_s2, p.gamma
        );
    }

    let _ = writeln!(md, "\n## Constituent measures at φ*\n");
    let _ = writeln!(md, "```\n{}\n```", best.measures);

    let dropped: Vec<(String, f64)> = analysis
        .dropped_self_loop_rates()
        .into_iter()
        .filter(|(_, rate)| *rate > 0.0)
        .collect();
    if !dropped.is_empty() {
        let _ = writeln!(md);
        for (model, rate) in dropped {
            let _ = writeln!(
                md,
                "# warning: model {model} dropped tangible self-loop rate \
                 {rate:.6e} during state-space generation"
            );
        }
    }

    Ok(md)
}

/// Renders a compact single-line summary suitable for logs.
pub fn one_line(best: &SweepPoint) -> String {
    format!(
        "phi*={:.0}h Y={:.4} (E[W0]={:.0}, E[Wphi]={:.0}, gamma={:.3})",
        best.phi, best.y, best.e_w0, best.e_w_phi, best.gamma
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GsuParams;

    #[test]
    fn report_contains_all_sections() {
        let analysis = GsuAnalysis::new(GsuParams::paper_baseline()).unwrap();
        let md = markdown(&analysis, &ReportOptions::default()).unwrap();
        for section in [
            "# Guarded-operation duration analysis",
            "## Parameters",
            "## Recommendation",
            "## Y(φ) sweep",
            "## Constituent measures",
            "Guard for φ*",
        ] {
            assert!(md.contains(section), "missing section: {section}");
        }
        // Sweep table has steps+1 data rows.
        assert_eq!(md.matches("\n| ").count(), 11 + 1 /* header sep */);
    }

    #[test]
    fn skip_decision_renders() {
        // c = 0.20 at high overhead: benefit below the default threshold.
        let params = GsuParams::paper_baseline()
            .with_overhead_rates(2500.0, 2500.0)
            .unwrap()
            .with_coverage(0.20)
            .unwrap();
        let analysis = GsuAnalysis::new(params).unwrap();
        let opts = ReportOptions {
            sweep_steps: 4,
            refinements: 4,
            ..Default::default()
        };
        let md = markdown(&analysis, &opts).unwrap();
        assert!(md.contains("Activate without a guard"));
    }

    #[test]
    fn warning_lines_track_dropped_self_loop_rates() {
        let analysis = GsuAnalysis::new(GsuParams::paper_baseline()).unwrap();
        let md = markdown(&analysis, &ReportOptions::default()).unwrap();
        let any_dropped = analysis
            .dropped_self_loop_rates()
            .iter()
            .any(|(_, rate)| *rate > 0.0);
        assert_eq!(md.contains("# warning:"), any_dropped);
        // Warning lines must never masquerade as sweep-table rows.
        for line in md.lines().filter(|l| l.starts_with("# warning:")) {
            assert!(!line.contains("| "));
        }
    }

    #[test]
    fn one_line_is_compact() {
        let analysis = GsuAnalysis::new(GsuParams::paper_baseline()).unwrap();
        let pt = analysis.evaluate(7000.0).unwrap();
        let line = one_line(&pt);
        assert!(line.contains("phi*=7000h"));
        assert!(!line.contains('\n'));
    }
}
