//! The constituent reward variables produced by the model translation.

use std::fmt;

use crate::{PerfError, Result};

/// The nine constituent reward variables that the successive model
/// translation reduces `Y` to (paper §4.2 summary and Figure 3), each
/// solvable as a single reward variable on one of the three SAN models:
///
/// | field | paper notation | model | reward type |
/// |---|---|---|---|
/// | `p_a1_gop` | `P(X'_φ ∈ A'1)` | RMGd | instant-of-time at φ |
/// | `p_a1_norm_theta` | `P(X''_θ ∈ A''1)` | RMNd(µnew) | instant-of-time at θ |
/// | `p_a1_norm_rem` | `P(X''_{θ−φ} ∈ A''1)` | RMNd(µnew) | instant-of-time at θ−φ |
/// | `rho1`, `rho2` | `ρ1`, `ρ2` | RMGp | steady-state |
/// | `i_h` | `∫₀^φ h(τ)dτ` | RMGd | instant-of-time at φ |
/// | `i_tau_h` | `∫₀^φ τ·h(τ)dτ` | RMGd | accumulated over `[0, φ]` |
/// | `i_hf` | `∫₀^φ∫_τ^φ h(τ)f(x)dxdτ` | RMGd | instant-of-time at φ |
/// | `i_f` | `∫_φ^θ f(x)dx` | RMNd(µold) | 1 − instant-of-time at θ−φ |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstituentMeasures {
    /// Probability that no error occurs through the G-OP window.
    pub p_a1_gop: f64,
    /// Probability the unprotected upgraded system survives all of θ.
    pub p_a1_norm_theta: f64,
    /// Probability the upgraded system survives the remaining `θ − φ`.
    pub p_a1_norm_rem: f64,
    /// Forward-progress fraction of `P1new` under guarded operation.
    pub rho1: f64,
    /// Forward-progress fraction of `P2` under guarded operation.
    pub rho2: f64,
    /// Probability an error occurs and is detected by φ.
    pub i_h: f64,
    /// Mean time to error detection per the paper's Table 1 reward
    /// structure (which counts paths without detection at weight φ — see
    /// DESIGN.md).
    pub i_tau_h: f64,
    /// The exact truncated first moment `E[τ_d·1{τ_d ≤ φ}]` of the
    /// detection time, computed by first-passage analysis; always ≤
    /// [`i_tau_h`](Self::i_tau_h).
    pub i_tau_h_exact: f64,
    /// Probability of detection followed by a second failure before φ.
    pub i_hf: f64,
    /// Probability the recovered (old-version) system fails in `[φ, θ]`.
    pub i_f: f64,
}

impl ConstituentMeasures {
    /// Validates the structural invariants every measure must satisfy.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::MeasureInvariant`] naming the violated bound —
    /// these indicate a modelling or solver bug, not bad user input.
    pub fn validate(&self, phi: f64) -> Result<()> {
        let probs: [(&str, f64); 7] = [
            ("P(X'_φ ∈ A'1)", self.p_a1_gop),
            ("P(X''_θ ∈ A''1)", self.p_a1_norm_theta),
            ("P(X''_{θ−φ} ∈ A''1)", self.p_a1_norm_rem),
            ("ρ1", self.rho1),
            ("ρ2", self.rho2),
            ("∫h", self.i_h),
            ("∫f", self.i_f),
        ];
        for (name, v) in probs {
            if !(-1e-9..=1.0 + 1e-9).contains(&v) || !v.is_finite() {
                return Err(PerfError::MeasureInvariant {
                    context: format!("{name} = {v} outside [0, 1]"),
                });
            }
        }
        if !self.i_hf.is_finite() || self.i_hf < -1e-9 || self.i_hf > self.i_h + 1e-9 {
            return Err(PerfError::MeasureInvariant {
                context: format!("∫∫hf = {} outside [0, ∫h = {}]", self.i_hf, self.i_h),
            });
        }
        if !self.i_tau_h.is_finite() || self.i_tau_h < -1e-9 || self.i_tau_h > phi * (1.0 + 1e-9) {
            return Err(PerfError::MeasureInvariant {
                context: format!("∫τh = {} outside [0, φ = {phi}]", self.i_tau_h),
            });
        }
        if !self.i_tau_h_exact.is_finite()
            || self.i_tau_h_exact < -1e-9
            || self.i_tau_h_exact > self.i_tau_h + 1e-6 * phi.max(1.0)
        {
            return Err(PerfError::MeasureInvariant {
                context: format!(
                    "exact ∫τh = {} outside [0, Table-1 ∫τh = {}]",
                    self.i_tau_h_exact, self.i_tau_h
                ),
            });
        }
        // Mutually exclusive outcomes by φ must not exceed total probability.
        let total = self.p_a1_gop + self.i_h + self.i_hf;
        if total > 1.0 + 1e-6 {
            return Err(PerfError::MeasureInvariant {
                context: format!("P(A'1) + ∫h + ∫∫hf = {total} exceeds 1 (sets overlap?)"),
            });
        }
        Ok(())
    }

    /// `ρ1 + ρ2`, the combined forward-progress coefficient of Eq. 4.
    pub fn rho_sum(&self) -> f64 {
        self.rho1 + self.rho2
    }

    /// Mean detection time *conditioned on detection by φ*, computed from
    /// the exact truncated moment: `τ̄ = E[τ·1{detect}] / P[detect]`;
    /// `None` when no detection mass exists. (The paper's γ policy uses the
    /// Table-1 `∫τh` measure directly — see
    /// [`crate::GammaPolicy::MeanDetectionFraction`].)
    pub fn conditional_mean_detection_time(&self) -> Option<f64> {
        let detect_mass = self.i_h + self.i_hf;
        if detect_mass > 0.0 {
            Some(self.i_tau_h_exact / detect_mass)
        } else {
            None
        }
    }

    /// The censoring excess of the Table-1 structure:
    /// `∫τh (Table 1) − E[τ·1{τ ≤ φ}] (exact)`, ≥ 0.
    pub fn tau_censoring_excess(&self) -> f64 {
        (self.i_tau_h - self.i_tau_h_exact).max(0.0)
    }
}

impl fmt::Display for ConstituentMeasures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "P(X'_φ ∈ A'1)        = {:.6}", self.p_a1_gop)?;
        writeln!(f, "P(X''_θ ∈ A''1)      = {:.6}", self.p_a1_norm_theta)?;
        writeln!(f, "P(X''_θ−φ ∈ A''1)    = {:.6}", self.p_a1_norm_rem)?;
        writeln!(f, "ρ1                   = {:.6}", self.rho1)?;
        writeln!(f, "ρ2                   = {:.6}", self.rho2)?;
        writeln!(f, "∫₀^φ h(τ)dτ          = {:.6}", self.i_h)?;
        writeln!(f, "∫₀^φ τh(τ)dτ         = {:.6} (Table 1)", self.i_tau_h)?;
        writeln!(
            f,
            "E[τ·1{{τ≤φ}}]          = {:.6} (exact)",
            self.i_tau_h_exact
        )?;
        writeln!(f, "∫₀^φ∫_τ^φ h·f        = {:.6e}", self.i_hf)?;
        write!(f, "∫_φ^θ f(x)dx         = {:.6e}", self.i_f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good() -> ConstituentMeasures {
        ConstituentMeasures {
            p_a1_gop: 0.5,
            p_a1_norm_theta: 0.37,
            p_a1_norm_rem: 0.74,
            rho1: 0.98,
            rho2: 0.95,
            i_h: 0.45,
            i_tau_h: 3000.0,
            i_tau_h_exact: 1400.0,
            i_hf: 1e-4,
            i_f: 3e-5,
        }
    }

    #[test]
    fn valid_measures_pass() {
        good().validate(7000.0).unwrap();
    }

    #[test]
    fn probability_bounds_enforced() {
        let mut m = good();
        m.p_a1_gop = 1.2;
        assert!(m.validate(7000.0).is_err());
        let mut m = good();
        m.rho1 = -0.1;
        assert!(m.validate(7000.0).is_err());
        let mut m = good();
        m.i_h = f64::NAN;
        assert!(m.validate(7000.0).is_err());
    }

    #[test]
    fn tau_h_bounded_by_phi() {
        let mut m = good();
        m.i_tau_h = 8000.0;
        assert!(m.validate(7000.0).is_err());
        assert!(m.validate(9000.0).is_ok());
    }

    #[test]
    fn hf_bounded_by_h() {
        let mut m = good();
        m.i_hf = 0.5; // exceeds i_h = 0.45
        assert!(m.validate(7000.0).is_err());
    }

    #[test]
    fn outcome_mass_cannot_exceed_one() {
        let mut m = good();
        m.p_a1_gop = 0.7;
        m.i_h = 0.5;
        assert!(m.validate(7000.0).is_err());
    }

    #[test]
    fn conditional_mean_detection_time() {
        let m = good();
        let detect_mass = m.i_h + m.i_hf;
        assert!((m.conditional_mean_detection_time().unwrap() - 1400.0 / detect_mass).abs() < 1e-9);
        let mut m0 = good();
        m0.i_h = 0.0;
        m0.i_hf = 0.0;
        m0.i_tau_h_exact = 0.0;
        assert_eq!(m0.conditional_mean_detection_time(), None);
        assert!((m.rho_sum() - 1.93).abs() < 1e-12);
        assert!((m.tau_censoring_excess() - 1600.0).abs() < 1e-9);
    }

    #[test]
    fn exact_tau_must_not_exceed_table_variant() {
        let mut m = good();
        m.i_tau_h_exact = 3500.0; // above the Table-1 value of 3000
        assert!(m.validate(7000.0).is_err());
    }

    #[test]
    fn display_lists_all_measures() {
        let s = good().to_string();
        assert!(s.contains("ρ1"));
        assert!(s.contains("∫₀^φ h(τ)dτ"));
        assert!(s.contains("∫_φ^θ f(x)dx"));
    }
}
