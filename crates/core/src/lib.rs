//! Performability analysis of guarded-operation duration by successive
//! model translation.
//!
//! This crate reproduces the analysis of Tai, Sanders, Alkalai, Chau & Tso,
//! *"Performability Analysis of Guarded-Operation Duration: A Translation
//! Approach for Reward Model Solutions"* (DSN 2002). A spacecraft's flight
//! software is upgraded in flight; during a **guarded operation** window of
//! duration `φ` the old version escorts the new one under the MDCD
//! (message-driven confidence-driven) protocol, paying checkpointing and
//! acceptance-test overhead in exchange for error containment and recovery.
//!
//! The **performability index**
//!
//! ```text
//! Y(φ) = (E[W_I] − E[W₀]) / (E[W_I] − E[W_φ])          (Eq. 1)
//! ```
//!
//! quantifies how much a duration `φ` reduces the expected total performance
//! degradation relative to not guarding at all; `Y > 1` means the guard pays
//! off, and the maximizing `φ` is the design recommendation.
//!
//! Because `Y` cannot be mapped onto a single reward structure in one
//! monolithic model (the deterministic mode switch at φ breaks the Markov
//! property), the measure is **successively translated** —
//! see [`translation`] — into nine constituent reward variables
//! ([`ConstituentMeasures`]), each solved on one of three small SAN reward
//! models (module [`gsu`]): `RMGd`, `RMGp` and `RMNd`. The [`GsuAnalysis`]
//! pipeline runs the whole chain and [`assemble`] recombines the measures
//! into `Y(φ)`.
//!
//! # Example
//!
//! ```
//! use performability::{GsuAnalysis, GsuParams};
//!
//! # fn main() -> Result<(), performability::PerfError> {
//! // Table 3 of the paper.
//! let analysis = GsuAnalysis::new(GsuParams::paper_baseline())?;
//!
//! // Y(0) = 1 by construction; a sensible guard duration beats it.
//! let baseline = analysis.evaluate(0.0)?;
//! let guarded = analysis.evaluate(7000.0)?;
//! assert!((baseline.y - 1.0).abs() < 1e-9);
//! assert!(guarded.y > 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod error;
mod index;
mod measures;
mod params;

pub mod gsu;
pub mod recommend;
pub mod report;
pub mod sensitivity;
pub mod translation;
pub mod validation;

pub use analysis::GsuAnalysis;
pub use error::PerfError;
pub use index::{assemble, GammaPolicy, SweepPoint};
pub use measures::ConstituentMeasures;
pub use params::GsuParams;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, PerfError>;
