use std::fmt;

use markov::MarkovError;
use san::SanError;

/// Errors produced by the performability analysis layer.
#[derive(Debug)]
pub enum PerfError {
    /// A parameter value is outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The supplied value.
        value: f64,
        /// Description of the valid domain.
        expected: &'static str,
    },
    /// A requested guarded-operation duration φ is outside `[0, θ]`.
    PhiOutOfRange {
        /// The supplied φ.
        phi: f64,
        /// The mission window θ.
        theta: f64,
    },
    /// A computed measure violated a structural invariant (probability
    /// outside [0, 1], negative expected worth, …) — indicates a modelling
    /// bug, surfaced loudly rather than propagated silently.
    MeasureInvariant {
        /// Description of the violated invariant.
        context: String,
    },
    /// Building or solving a SAN reward model failed.
    San(SanError),
    /// A direct Markov-level computation failed.
    Markov(MarkovError),
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "invalid parameter {name} = {value} (expected {expected})"
            ),
            PerfError::PhiOutOfRange { phi, theta } => {
                write!(f, "guarded-operation duration {phi} outside [0, {theta}]")
            }
            PerfError::MeasureInvariant { context } => {
                write!(f, "measure invariant violated: {context}")
            }
            PerfError::San(e) => write!(f, "SAN model failure: {e}"),
            PerfError::Markov(e) => write!(f, "markov solver failure: {e}"),
        }
    }
}

impl std::error::Error for PerfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PerfError::San(e) => Some(e),
            PerfError::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SanError> for PerfError {
    fn from(e: SanError) -> Self {
        PerfError::San(e)
    }
}

impl From<MarkovError> for PerfError {
    fn from(e: MarkovError) -> Self {
        PerfError::Markov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let cases = vec![
            PerfError::InvalidParameter {
                name: "theta",
                value: -1.0,
                expected: "> 0",
            },
            PerfError::PhiOutOfRange {
                phi: 2.0,
                theta: 1.0,
            },
            PerfError::MeasureInvariant {
                context: "Y denominator <= 0".into(),
            },
            PerfError::San(SanError::StateSpaceLimit { limit: 5 }),
            PerfError::Markov(MarkovError::Reducible { components: 2 }),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        assert!(PerfError::San(SanError::StateSpaceLimit { limit: 5 })
            .source()
            .is_some());
        assert!(PerfError::PhiOutOfRange {
            phi: 2.0,
            theta: 1.0
        }
        .source()
        .is_none());
    }
}
