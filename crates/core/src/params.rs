//! Parameters of the guarded software upgrading study.

use std::fmt;

use crate::{PerfError, Result};

/// Basic parameters of the GSU performability study (paper §6, Table 3).
///
/// All rates are per hour; durations are in hours, matching the paper's
/// convention (`λ = 1200` ⇒ one message every 3 s; `α = β = 6000` ⇒ 600 ms
/// per acceptance test / checkpoint).
///
/// # Example
///
/// ```
/// use performability::GsuParams;
///
/// let base = GsuParams::paper_baseline();
/// assert_eq!(base.theta, 10_000.0);
/// let tweaked = base.with_coverage(0.75).unwrap();
/// assert_eq!(tweaked.coverage, 0.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GsuParams {
    /// Time to the next scheduled onboard upgrade, θ (hours).
    pub theta: f64,
    /// Message-sending rate of each process, λ (1/hour).
    pub lambda: f64,
    /// Fault-manifestation rate of the newly upgraded component, µ_new.
    pub mu_new: f64,
    /// Fault-manifestation rate of an old (well-proven) component, µ_old.
    pub mu_old: f64,
    /// Acceptance-test coverage, c ∈ [0, 1].
    pub coverage: f64,
    /// Probability that a message is external, p_ext ∈ [0, 1].
    pub p_ext: f64,
    /// Acceptance-test completion rate, α (1/hour).
    pub alpha: f64,
    /// Checkpoint-establishment completion rate, β (1/hour).
    pub beta: f64,
}

impl GsuParams {
    /// The paper's Table 3 parameter assignment: θ=10000, λ=1200,
    /// µnew=10⁻⁴, µold=10⁻⁸, c=0.95, p_ext=0.1, α=β=6000.
    pub fn paper_baseline() -> Self {
        GsuParams {
            theta: 10_000.0,
            lambda: 1200.0,
            mu_new: 1e-4,
            mu_old: 1e-8,
            coverage: 0.95,
            p_ext: 0.1,
            alpha: 6000.0,
            beta: 6000.0,
        }
    }

    /// Validates every field's domain.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::InvalidParameter`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<()> {
        let positive: [(&'static str, f64); 5] = [
            ("theta", self.theta),
            ("lambda", self.lambda),
            ("alpha", self.alpha),
            ("beta", self.beta),
            ("mu_new", self.mu_new),
        ];
        for (name, value) in positive {
            if !value.is_finite() || value <= 0.0 {
                return Err(PerfError::InvalidParameter {
                    name,
                    value,
                    expected: "finite and > 0",
                });
            }
        }
        if !self.mu_old.is_finite() || self.mu_old < 0.0 {
            return Err(PerfError::InvalidParameter {
                name: "mu_old",
                value: self.mu_old,
                expected: "finite and >= 0",
            });
        }
        for (name, value) in [("coverage", self.coverage), ("p_ext", self.p_ext)] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(PerfError::InvalidParameter {
                    name,
                    value,
                    expected: "within [0, 1]",
                });
            }
        }
        Ok(())
    }

    /// Checks that `phi` is a valid guarded-operation duration for this θ.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::PhiOutOfRange`] when `phi ∉ [0, θ]`.
    pub fn validate_phi(&self, phi: f64) -> Result<()> {
        if !phi.is_finite() || phi < 0.0 || phi > self.theta {
            return Err(PerfError::PhiOutOfRange {
                phi,
                theta: self.theta,
            });
        }
        Ok(())
    }

    /// Checks that `phis` is a valid φ *grid*: every point within `[0, θ]`
    /// and the sequence ascending (repeated points allowed).
    ///
    /// This is the single validation gate shared by
    /// [`GsuAnalysis::sweep`](crate::GsuAnalysis::sweep) and
    /// [`GsuAnalysis::sweep_incremental`](crate::GsuAnalysis::sweep_incremental),
    /// so both report identical errors for identical bad inputs.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::PhiOutOfRange`] for any out-of-range point and
    /// [`PerfError::InvalidParameter`] when the grid is not ascending.
    pub fn validate_phi_grid(&self, phis: &[f64]) -> Result<()> {
        let mut last = 0.0;
        for &phi in phis {
            self.validate_phi(phi)?;
            if phi < last {
                return Err(PerfError::InvalidParameter {
                    name: "phis",
                    value: phi,
                    expected: "an ascending grid",
                });
            }
            last = phi;
        }
        Ok(())
    }

    /// Returns a copy with a different mission window θ.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::InvalidParameter`] when the result is invalid.
    pub fn with_theta(mut self, theta: f64) -> Result<Self> {
        self.theta = theta;
        self.validate()?;
        Ok(self)
    }

    /// Returns a copy with a different fault-manifestation rate for the new
    /// component.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::InvalidParameter`] when the result is invalid.
    pub fn with_mu_new(mut self, mu_new: f64) -> Result<Self> {
        self.mu_new = mu_new;
        self.validate()?;
        Ok(self)
    }

    /// Returns a copy with a different acceptance-test coverage.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::InvalidParameter`] when the result is invalid.
    pub fn with_coverage(mut self, coverage: f64) -> Result<Self> {
        self.coverage = coverage;
        self.validate()?;
        Ok(self)
    }

    /// Returns a copy with different safeguard completion rates α and β.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::InvalidParameter`] when the result is invalid.
    pub fn with_overhead_rates(mut self, alpha: f64, beta: f64) -> Result<Self> {
        self.alpha = alpha;
        self.beta = beta;
        self.validate()?;
        Ok(self)
    }
}

impl Default for GsuParams {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

impl fmt::Display for GsuParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "θ={} λ={} µnew={:.1e} µold={:.1e} c={} pext={} α={} β={}",
            self.theta,
            self.lambda,
            self.mu_new,
            self.mu_old,
            self.coverage,
            self.p_ext,
            self.alpha,
            self.beta
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_valid_and_matches_table3() {
        let p = GsuParams::paper_baseline();
        p.validate().unwrap();
        assert_eq!(p.lambda, 1200.0);
        assert_eq!(p.mu_new, 1e-4);
        assert_eq!(p.mu_old, 1e-8);
        assert_eq!(p.coverage, 0.95);
        assert_eq!(p.p_ext, 0.1);
        assert_eq!(p.alpha, 6000.0);
        assert_eq!(p.beta, 6000.0);
        assert_eq!(GsuParams::default(), p);
    }

    #[test]
    fn invalid_fields_are_named() {
        let mut p = GsuParams::paper_baseline();
        p.theta = 0.0;
        match p.validate() {
            Err(PerfError::InvalidParameter { name, .. }) => assert_eq!(name, "theta"),
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
        let mut p = GsuParams::paper_baseline();
        p.coverage = 1.5;
        assert!(p.validate().is_err());
        let mut p = GsuParams::paper_baseline();
        p.mu_old = -1.0;
        assert!(p.validate().is_err());
        let mut p = GsuParams::paper_baseline();
        p.p_ext = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn phi_domain() {
        let p = GsuParams::paper_baseline();
        p.validate_phi(0.0).unwrap();
        p.validate_phi(10_000.0).unwrap();
        assert!(p.validate_phi(-1.0).is_err());
        assert!(p.validate_phi(10_001.0).is_err());
        assert!(p.validate_phi(f64::NAN).is_err());
    }

    #[test]
    fn with_builders_validate() {
        let p = GsuParams::paper_baseline();
        assert_eq!(p.with_theta(5000.0).unwrap().theta, 5000.0);
        assert!(p.with_theta(-5.0).is_err());
        assert_eq!(p.with_mu_new(5e-5).unwrap().mu_new, 5e-5);
        assert!(p.with_coverage(2.0).is_err());
        let q = p.with_overhead_rates(2500.0, 2500.0).unwrap();
        assert_eq!((q.alpha, q.beta), (2500.0, 2500.0));
    }

    #[test]
    fn display_mentions_key_values() {
        let s = GsuParams::paper_baseline().to_string();
        assert!(s.contains("θ=10000"));
        assert!(s.contains("c=0.95"));
    }
}
