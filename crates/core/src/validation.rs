//! The onboard-validation stage of guarded software upgrading (paper §2).
//!
//! Before guarded operation begins, the new version runs in shadow mode:
//! its outputs are suppressed but logged, and the onboard error log is
//! downloaded "for validation-results monitoring and Bayesian-statistics
//! reliability analyses" (the paper cites Littlewood & Wright's stopping
//! rules for operational testing). The outcome of this stage is the
//! fault-manifestation rate estimate `µ_new` and the mission window `θ`
//! that parameterize the performability analysis.
//!
//! This module implements that stage:
//!
//! * [`FaultRatePosterior`] — conjugate Gamma–Poisson inference on the
//!   manifestation rate from error-log counts and exposure time;
//! * [`StoppingRule`] — "continue validation until
//!   `P[µ ≤ target] ≥ confidence`", with the fault-free exposure required
//!   to satisfy it;
//! * [`posterior_predictive_y`] — the performability index averaged over
//!   the posterior uncertainty in `µ_new` (quantile quadrature), and
//!   [`robust_optimal_phi`] — the conservative design at an upper credible
//!   rate.

use crate::{GsuAnalysis, GsuParams, PerfError, Result, SweepPoint};

/// Natural logarithm of the gamma function (Lanczos approximation, ~15
/// significant digits for positive arguments).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π/sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x)/Γ(a)` by series
/// (for `x < a+1`) or continued fraction (otherwise).
pub fn reg_gamma_lower(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "reg_gamma_lower domain: a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    let ln_prefactor = a * x.ln() - x - ln_gamma(a);
    if x < a + 1.0 {
        // Series: P(a,x) = e^{-x} x^a / Γ(a) · Σ x^n / (a·(a+1)···(a+n)).
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-16 {
                break;
            }
        }
        (ln_prefactor.exp() * sum).clamp(0.0, 1.0)
    } else {
        // Continued fraction for Q(a,x) (Lentz's method).
        let tiny = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / tiny;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < tiny {
                d = tiny;
            }
            c = b + an / c;
            if c.abs() < tiny {
                c = tiny;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-16 {
                break;
            }
        }
        let q = (ln_prefactor.exp() * h).clamp(0.0, 1.0);
        1.0 - q
    }
}

/// Posterior over a fault-manifestation rate under the conjugate
/// Gamma–Poisson model: manifestations are a Poisson process of unknown
/// rate µ; with prior `Gamma(shape, rate)` and an observed error log of
/// `k` manifestations over exposure `T`, the posterior is
/// `Gamma(shape + k, rate + T)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRatePosterior {
    /// Gamma shape parameter `a`.
    pub shape: f64,
    /// Gamma rate parameter `b` (per hour) — the posterior mean is `a/b`.
    pub rate: f64,
}

impl FaultRatePosterior {
    /// A weakly-informative prior centred on `prior_mean` with one pseudo
    /// observation.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::InvalidParameter`] for non-positive means.
    pub fn weakly_informative(prior_mean: f64) -> Result<Self> {
        if !prior_mean.is_finite() || prior_mean <= 0.0 {
            return Err(PerfError::InvalidParameter {
                name: "prior_mean",
                value: prior_mean,
                expected: "finite and > 0",
            });
        }
        Ok(FaultRatePosterior {
            shape: 1.0,
            rate: 1.0 / prior_mean,
        })
    }

    /// Conjugate update from an error log: `faults` manifestations over
    /// `exposure` hours of shadow-mode execution.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::InvalidParameter`] for negative exposure.
    pub fn observe(mut self, faults: u64, exposure: f64) -> Result<Self> {
        if !exposure.is_finite() || exposure < 0.0 {
            return Err(PerfError::InvalidParameter {
                name: "exposure",
                value: exposure,
                expected: "finite and >= 0",
            });
        }
        self.shape += faults as f64;
        self.rate += exposure;
        Ok(self)
    }

    /// Posterior mean `E[µ]`.
    pub fn mean(&self) -> f64 {
        self.shape / self.rate
    }

    /// Posterior variance.
    pub fn variance(&self) -> f64 {
        self.shape / (self.rate * self.rate)
    }

    /// `P[µ ≤ mu]` (the Gamma CDF).
    pub fn probability_below(&self, mu: f64) -> f64 {
        if mu <= 0.0 {
            return 0.0;
        }
        reg_gamma_lower(self.shape, self.rate * mu)
    }

    /// The `q`-quantile of the posterior by bisection.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1)`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q < 1.0, "quantile level must be in (0, 1)");
        let mut hi = self.mean().max(1e-300);
        while self.probability_below(hi) < q {
            hi *= 2.0;
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.probability_below(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// A Littlewood–Wright style stopping rule for operational testing: stop
/// validation (and admit the upgrade into mission operation) once
/// `P[µ ≤ target_rate] ≥ confidence`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoppingRule {
    /// The acceptable fault-manifestation rate.
    pub target_rate: f64,
    /// Required posterior confidence, e.g. `0.9`.
    pub confidence: f64,
}

impl StoppingRule {
    /// Creates a validated rule.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::InvalidParameter`] on a non-positive target or
    /// a confidence outside `(0, 1)`.
    pub fn new(target_rate: f64, confidence: f64) -> Result<Self> {
        if !target_rate.is_finite() || target_rate <= 0.0 {
            return Err(PerfError::InvalidParameter {
                name: "target_rate",
                value: target_rate,
                expected: "finite and > 0",
            });
        }
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(PerfError::InvalidParameter {
                name: "confidence",
                value: confidence,
                expected: "within (0, 1)",
            });
        }
        Ok(StoppingRule {
            target_rate,
            confidence,
        })
    }

    /// Whether the posterior already satisfies the rule.
    pub fn satisfied(&self, posterior: &FaultRatePosterior) -> bool {
        posterior.probability_below(self.target_rate) >= self.confidence
    }

    /// Additional **fault-free** shadow exposure needed to satisfy the rule
    /// (∞-free: returns `None` when even unbounded exposure cannot, which
    /// does not happen for a Gamma posterior — more exposure always helps).
    pub fn required_fault_free_exposure(&self, posterior: &FaultRatePosterior) -> Option<f64> {
        if self.satisfied(posterior) {
            return Some(0.0);
        }
        let check = |extra: f64| {
            FaultRatePosterior {
                shape: posterior.shape,
                rate: posterior.rate + extra,
            }
            .probability_below(self.target_rate)
                >= self.confidence
        };
        let mut hi = posterior.rate.max(1.0);
        let mut grew = 0;
        while !check(hi) {
            hi *= 2.0;
            grew += 1;
            if grew > 200 {
                return None;
            }
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if check(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

/// The performability index averaged over posterior uncertainty in `µ_new`:
/// `E_µ[Y(φ; µ)]` by mid-quantile quadrature with `points` nodes (each node
/// costs one full pipeline build, so 8–16 points is the practical range).
///
/// # Errors
///
/// Propagates pipeline failures; `points` must be ≥ 1.
pub fn posterior_predictive_y(
    posterior: &FaultRatePosterior,
    params: GsuParams,
    phi: f64,
    points: usize,
) -> Result<f64> {
    if points == 0 {
        return Err(PerfError::InvalidParameter {
            name: "points",
            value: 0.0,
            expected: ">= 1",
        });
    }
    let mut acc = 0.0;
    for i in 0..points {
        let q = (i as f64 + 0.5) / points as f64;
        let mu = posterior.quantile(q).max(1e-300);
        let analysis = GsuAnalysis::new(params.with_mu_new(mu)?)?;
        acc += analysis.evaluate(phi)?.y;
    }
    Ok(acc / points as f64)
}

/// Conservative design: the optimal guarded-operation duration at the
/// `credible` upper posterior quantile of `µ_new` (e.g. `0.9` designs for
/// the 90th-percentile worst plausible rate).
///
/// # Errors
///
/// Propagates pipeline failures; `credible` must lie in `(0, 1)`.
pub fn robust_optimal_phi(
    posterior: &FaultRatePosterior,
    params: GsuParams,
    credible: f64,
    grid: usize,
    refinements: usize,
) -> Result<SweepPoint> {
    if !(credible > 0.0 && credible < 1.0) {
        return Err(PerfError::InvalidParameter {
            name: "credible",
            value: credible,
            expected: "within (0, 1)",
        });
    }
    let mu = posterior.quantile(credible).max(1e-300);
    GsuAnalysis::new(params.with_mu_new(mu)?)?.optimal_phi(grid, refinements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for (n, fact) in [
            (1u32, 1.0f64),
            (2, 1.0),
            (3, 2.0),
            (5, 24.0),
            (10, 362_880.0),
        ] {
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-10,
                "Γ({n}) should be {fact}"
            );
        }
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn reg_gamma_is_exponential_cdf_for_shape_one() {
        for x in [0.0, 0.1, 1.0, 5.0f64] {
            let want = 1.0 - (-x).exp();
            assert!((reg_gamma_lower(1.0, x) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn reg_gamma_is_erlang_cdf_for_integer_shape() {
        // P(3, x) = 1 − e^{−x}(1 + x + x²/2).
        for x in [0.5, 2.0, 8.0f64] {
            let want = 1.0 - (-x).exp() * (1.0 + x + x * x / 2.0);
            assert!((reg_gamma_lower(3.0, x) - want).abs() < 1e-11, "x={x}");
        }
    }

    #[test]
    fn conjugate_update_moves_the_mean() {
        let prior = FaultRatePosterior::weakly_informative(1e-3).unwrap();
        assert!((prior.mean() - 1e-3).abs() < 1e-15);
        // 2 faults in 10_000 h: posterior mean ≈ 3 / 11_000.
        let post = prior.observe(2, 10_000.0).unwrap();
        assert!((post.mean() - 3.0 / 11_000.0).abs() < 1e-12);
        assert!(post.variance() < prior.variance());
    }

    #[test]
    fn quantiles_bracket_the_mean() {
        let post = FaultRatePosterior {
            shape: 4.0,
            rate: 20_000.0,
        };
        let q10 = post.quantile(0.1);
        let q90 = post.quantile(0.9);
        assert!(q10 < post.mean());
        assert!(post.mean() < q90);
        assert!((post.probability_below(q10) - 0.1).abs() < 1e-9);
        assert!((post.probability_below(q90) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn stopping_rule_satisfaction() {
        let rule = StoppingRule::new(1e-4, 0.9).unwrap();
        // Long fault-free exposure: 1 pseudo-fault over 50_000 h; P[µ ≤
        // 1e-4] = 1 − e^{−5} ≈ 0.993.
        let good = FaultRatePosterior {
            shape: 1.0,
            rate: 50_000.0,
        };
        assert!(rule.satisfied(&good));
        // Short exposure: not yet.
        let short = FaultRatePosterior {
            shape: 1.0,
            rate: 5_000.0,
        };
        assert!(!rule.satisfied(&short));
        let extra = rule.required_fault_free_exposure(&short).unwrap();
        assert!(extra > 0.0);
        let after = FaultRatePosterior {
            shape: 1.0,
            rate: 5_000.0 + extra,
        };
        assert!(rule.satisfied(&after));
        // And the exposure found is minimal up to tolerance.
        let before = FaultRatePosterior {
            shape: 1.0,
            rate: 5_000.0 + extra * 0.99,
        };
        assert!(!rule.satisfied(&before));
    }

    #[test]
    fn stopping_rule_validation() {
        assert!(StoppingRule::new(0.0, 0.9).is_err());
        assert!(StoppingRule::new(1e-4, 1.0).is_err());
        assert!(StoppingRule::new(1e-4, 0.0).is_err());
    }

    #[test]
    fn predictive_y_close_to_plugin_for_tight_posterior() {
        // A very peaked posterior behaves like the point estimate.
        let params = GsuParams::paper_baseline();
        let post = FaultRatePosterior {
            shape: 1e6,
            rate: 1e6 / 1e-4,
        };
        let predictive = posterior_predictive_y(&post, params, 6000.0, 4).unwrap();
        let plugin = GsuAnalysis::new(params)
            .unwrap()
            .evaluate(6000.0)
            .unwrap()
            .y;
        assert!(
            (predictive - plugin).abs() < 0.01,
            "{predictive} vs {plugin}"
        );
    }

    #[test]
    fn robust_phi_designs_for_worse_rate() {
        // Wide posterior around 1e-4: the 90th-percentile rate exceeds the
        // mean, and a larger µ pushes the optimal guard later (Fig. 9).
        let params = GsuParams::paper_baseline();
        let post = FaultRatePosterior {
            shape: 2.0,
            rate: 2.0 / 1e-4,
        };
        let robust = robust_optimal_phi(&post, params, 0.9, 10, 8).unwrap();
        let nominal = GsuAnalysis::new(params.with_mu_new(post.mean()).unwrap())
            .unwrap()
            .optimal_phi(10, 8)
            .unwrap();
        assert!(
            robust.phi >= nominal.phi - 500.0,
            "robust {} vs nominal {}",
            robust.phi,
            nominal.phi
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        let post = FaultRatePosterior {
            shape: 1.0,
            rate: 1.0,
        };
        assert!(FaultRatePosterior::weakly_informative(0.0).is_err());
        assert!(post.observe(0, -1.0).is_err());
        assert!(posterior_predictive_y(&post, GsuParams::paper_baseline(), 1000.0, 0).is_err());
        assert!(robust_optimal_phi(&post, GsuParams::paper_baseline(), 1.5, 4, 2).is_err());
    }
}
