//! The end-to-end analysis pipeline: base models → constituent measures →
//! performability index.

use san::Analyzer;

use crate::gsu::{self, rmgd, rmgp, rmnd};
use crate::{assemble, ConstituentMeasures, GammaPolicy, GsuParams, PerfError, Result, SweepPoint};

/// Where the forward-progress fractions `ρ1`, `ρ2` come from.
#[derive(Debug, Clone, Copy, PartialEq)]
enum OverheadSource {
    /// Solved as steady-state rewards on `RMGp` (the paper's method).
    Computed,
    /// Supplied directly — used to reproduce figures whose captions pin
    /// `(ρ1, ρ2)` rather than `(α, β)`.
    Fixed(f64, f64),
}

/// The complete guarded-operation performability analysis for one parameter
/// set.
///
/// Construction builds and solves everything that does not depend on φ (the
/// `RMGp` steady state and the `RMNd(µnew)` full-window probability);
/// evaluating a φ then costs three transient solutions on the small `RMGd` /
/// `RMNd` chains.
///
/// # Example
///
/// ```
/// use performability::{GsuAnalysis, GsuParams};
///
/// # fn main() -> Result<(), performability::PerfError> {
/// let analysis = GsuAnalysis::new(GsuParams::paper_baseline())?;
/// let point = analysis.evaluate(7000.0)?;
/// assert!(point.y > 1.0);
/// # Ok(())
/// # }
/// ```
pub struct GsuAnalysis {
    params: GsuParams,
    gamma_policy: GammaPolicy,
    rho: (f64, f64),
    /// Stationary vector of the `RMGp` solve (when ρ was computed) — the
    /// warm-start seed for analyses at neighboring parameter points.
    rho_pi: Option<Vec<f64>>,
    rmgd_analyzer: Analyzer,
    rmgd_places: rmgd::RmgdPlaces,
    rmnd_new: Analyzer,
    rmnd_new_places: rmnd::RmndPlaces,
    rmnd_old: Analyzer,
    rmnd_old_places: rmnd::RmndPlaces,
    /// `P(X''_θ ∈ A''1)` — φ-independent, solved once.
    p_a1_norm_theta: f64,
}

impl GsuAnalysis {
    /// Builds the three SAN reward models and solves the φ-independent
    /// measures, with `(ρ1, ρ2)` computed from `RMGp`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation and model generation/solution
    /// failures.
    pub fn new(params: GsuParams) -> Result<Self> {
        Self::build(params, OverheadSource::Computed, None)
    }

    /// Like [`GsuAnalysis::new`] but warm-starting the `RMGp` steady solve
    /// from a neighboring analysis' stationary vector
    /// ([`GsuAnalysis::rho_steady_vector`]) — parameter continuation for
    /// sweeps and sensitivity fans. The hint affects only the iteration
    /// count, never the result.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`GsuAnalysis::new`].
    pub fn new_continued(params: GsuParams, hint: Option<&[f64]>) -> Result<Self> {
        Self::build(params, OverheadSource::Computed, hint)
    }

    /// Like [`GsuAnalysis::new`] but with `(ρ1, ρ2)` supplied directly
    /// instead of solved from `RMGp`.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::InvalidParameter`] when a fraction is outside
    /// `[0, 1]`, and propagates model-building failures.
    pub fn with_fixed_overhead(params: GsuParams, rho1: f64, rho2: f64) -> Result<Self> {
        for (name, v) in [("rho1", rho1), ("rho2", rho2)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(PerfError::InvalidParameter {
                    name,
                    value: v,
                    expected: "within [0, 1]",
                });
            }
        }
        Self::build(params, OverheadSource::Fixed(rho1, rho2), None)
    }

    fn build(params: GsuParams, overhead: OverheadSource, hint: Option<&[f64]>) -> Result<Self> {
        params.validate()?;
        let mut span = telemetry::span("performability.build");

        let (rho, rho_pi) = match overhead {
            OverheadSource::Computed => {
                let s = rmgp::solve_rho_continued(&params, hint)?;
                ((s.rho1, s.rho2), Some(s.pi))
            }
            OverheadSource::Fixed(r1, r2) => ((r1, r2), None),
        };

        let rmgd = rmgd::build(&params)?;
        let rmgd_analyzer = Analyzer::generate(&rmgd.model, &Default::default())?;

        let new = rmnd::build(&params, params.mu_new)?;
        let rmnd_new = Analyzer::generate(&new.model, &Default::default())?;
        let old = rmnd::build(&params, params.mu_old)?;
        let rmnd_old = Analyzer::generate(&old.model, &Default::default())?;

        let failure = new.places.failure;
        let p_a1_norm_theta =
            rmnd_new.probability_at(params.theta, move |mk| mk.tokens(failure) == 0)?;

        if telemetry::enabled() {
            telemetry::gauge("performability.rho1", rho.0);
            telemetry::gauge("performability.rho2", rho.1);
            telemetry::gauge("performability.p_a1_norm_theta", p_a1_norm_theta);
            span.record("rho1", rho.0);
            span.record("rho2", rho.1);
        }

        Ok(GsuAnalysis {
            params,
            gamma_policy: GammaPolicy::default(),
            rho,
            rho_pi,
            rmgd_analyzer,
            rmgd_places: rmgd.places,
            rmnd_new,
            rmnd_new_places: new.places,
            rmnd_old,
            rmnd_old_places: old.places,
            p_a1_norm_theta,
        })
    }

    /// Replaces the γ policy (default: the paper's `γ = 1 − τ̄/θ`).
    pub fn with_gamma_policy(mut self, policy: GammaPolicy) -> Self {
        self.gamma_policy = policy;
        self
    }

    /// The parameter set under analysis.
    pub fn params(&self) -> &GsuParams {
        &self.params
    }

    /// The forward-progress fractions `(ρ1, ρ2)` in use.
    pub fn rho(&self) -> (f64, f64) {
        self.rho
    }

    /// The stationary vector of the `RMGp` solve, when ρ was computed
    /// rather than fixed — the seed for [`GsuAnalysis::new_continued`] at a
    /// nearby parameter point.
    pub fn rho_steady_vector(&self) -> Option<&[f64]> {
        self.rho_pi.as_deref()
    }

    /// Solves all nine constituent reward variables for a G-OP duration φ.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::PhiOutOfRange`] for φ outside `[0, θ]` and
    /// propagates solver failures.
    pub fn measures(&self, phi: f64) -> Result<ConstituentMeasures> {
        self.params.validate_phi(phi)?;
        let mut span = telemetry::span("performability.measures");
        span.record("phi", phi);
        let theta = self.params.theta;

        // RMGd measures (Table 1), via the state-set–generic engine shared
        // with the scenario layer.
        let gop = gsu::gop_measures(&self.rmgd_analyzer, self.rmgd_places, phi)?;
        let (p_a1_gop, i_h, i_hf, i_tau_h, i_tau_h_exact) =
            (gop.p_a1, gop.i_h, gop.i_hf, gop.i_tau_h, gop.i_tau_h_exact);

        // RMNd measures (§5.2.3).
        let remaining = theta - phi;
        let new_failure = self.rmnd_new_places.failure;
        let p_a1_norm_rem = self
            .rmnd_new
            .probability_at(remaining, move |mk| mk.tokens(new_failure) == 0)?;
        let old_failure = self.rmnd_old_places.failure;
        let i_f = 1.0
            - self
                .rmnd_old
                .probability_at(remaining, move |mk| mk.tokens(old_failure) == 0)?;

        if telemetry::enabled() {
            span.record("p_a1_gop", p_a1_gop);
            span.record("p_a1_norm_rem", p_a1_norm_rem);
            span.record("i_h", i_h);
            span.record("i_f", i_f);
        }

        Ok(ConstituentMeasures {
            p_a1_gop,
            p_a1_norm_theta: self.p_a1_norm_theta,
            p_a1_norm_rem,
            rho1: self.rho.0,
            rho2: self.rho.1,
            i_h,
            i_tau_h,
            i_tau_h_exact,
            i_hf,
            i_f,
        })
    }

    /// Evaluates the performability index and all intermediate quantities at
    /// one φ.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`GsuAnalysis::measures`].
    pub fn evaluate(&self, phi: f64) -> Result<SweepPoint> {
        let mut span = telemetry::span("performability.evaluate");
        span.record("phi", phi);
        let measures = self.measures(phi)?;
        let point = assemble(self.params.theta, phi, &measures, self.gamma_policy)?;
        if telemetry::enabled() {
            telemetry::counter("performability.evaluations", 1);
            span.record("y", point.y);
        }
        Ok(point)
    }

    /// The dropped-self-loop diagnostic of each generated state space, as
    /// `(model name, total dropped rate)` pairs — nonzero values are
    /// surfaced as warnings in reports.
    pub fn dropped_self_loop_rates(&self) -> Vec<(String, f64)> {
        [&self.rmgd_analyzer, &self.rmnd_new, &self.rmnd_old]
            .iter()
            .map(|a| {
                let space = a.state_space();
                (
                    space.model_name().to_string(),
                    space.dropped_self_loop_rate(),
                )
            })
            .collect()
    }

    /// Evaluates a sweep of φ values (e.g. the grid of Figures 9–12).
    ///
    /// The grid must be **ascending** within `[0, θ]` (shared validation
    /// with [`GsuAnalysis::sweep_incremental`]). Points are evaluated in
    /// parallel on the global [`pool::Pool`] (`GSU_THREADS` wide); each φ is
    /// an independent evaluation of the same φ-independent prefix, so the
    /// result is bitwise identical at any thread count.
    ///
    /// # Errors
    ///
    /// Rejects invalid grids up front; otherwise fails with the error of the
    /// lowest-index φ whose evaluation fails.
    pub fn sweep<I: IntoIterator<Item = f64>>(&self, phis: I) -> Result<Vec<SweepPoint>> {
        let phis: Vec<f64> = phis.into_iter().collect();
        self.params.validate_phi_grid(&phis)?;
        let workers = pool::Pool::current();
        let mut span = telemetry::span("performability.sweep");
        span.record("points", phis.len());
        span.record("threads", workers.threads());
        workers.try_map_indexed(phis, |_, phi| self.evaluate(phi))
    }

    /// Evaluates a uniform grid of `n + 1` φ values over `[0, θ]`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn sweep_grid(&self, n: usize) -> Result<Vec<SweepPoint>> {
        let theta = self.params.theta;
        let n = n.max(1);
        self.sweep((0..=n).map(|i| theta * i as f64 / n as f64))
    }

    /// Evaluates an **ascending** φ grid in a single incremental pass:
    /// instead of solving every transient measure from `t = 0` for each φ,
    /// the state distributions and accumulated rewards are propagated from
    /// grid point to grid point. Produces the same numbers as
    /// [`GsuAnalysis::sweep`] (asserted by tests) at a fraction of the cost
    /// for dense grids — see the `pipeline` bench.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::PhiOutOfRange`] for any φ outside `[0, θ]`, an
    /// invalid-parameter error when the grid is not ascending, and
    /// propagates solver failures.
    pub fn sweep_incremental(&self, phis: &[f64]) -> Result<Vec<SweepPoint>> {
        let theta = self.params.theta;
        self.params.validate_phi_grid(phis)?;
        if phis.is_empty() {
            return Ok(Vec::new());
        }
        let opts = markov::transient::Options::default();
        let p = self.rmgd_places;

        // --- RMGd: distributions and accumulated rewards along the grid. --
        let gd_space = self.rmgd_analyzer.state_space();
        let gd = gd_space.ctmc();
        let pi_at = markov::transient::distribution_batch(
            gd,
            gd_space.initial_distribution(),
            phis,
            &opts,
        )?;
        // Accumulated ∫τh: propagate occupancy over each gap.
        let tau_spec = san::RewardSpec::new()
            .rate_when(move |mk| p.in_a2(mk), 1.0)
            .rate_when(move |mk| p.in_a4(mk), -1.0);
        let tau_structure = tau_spec.to_structure(gd_space);
        // Stopped chain for the exact truncated moment.
        let detected_states = gd_space.states_where(|mk| mk.tokens(p.detected) == 1);
        let mut is_target = vec![false; gd.n_states()];
        for &s in &detected_states {
            is_target[s] = true;
        }
        let stopped = markov::Ctmc::from_transitions(
            gd.n_states(),
            gd.transitions().filter(|&(from, _, _)| !is_target[from]),
        )?;
        let stopped_pi_at = markov::transient::distribution_batch(
            &stopped,
            gd_space.initial_distribution(),
            phis,
            &opts,
        )?;

        // --- RMNd: remaining-window survivals (ascending in θ−φ). ----------
        let remaining: Vec<f64> = phis.iter().rev().map(|&phi| theta - phi).collect();
        let new_space = self.rmnd_new.state_space();
        let new_pi = markov::transient::distribution_batch(
            new_space.ctmc(),
            new_space.initial_distribution(),
            &remaining,
            &opts,
        )?;
        let old_space = self.rmnd_old.state_space();
        let old_pi = markov::transient::distribution_batch(
            old_space.ctmc(),
            old_space.initial_distribution(),
            &remaining,
            &opts,
        )?;
        let new_failure = self.rmnd_new_places.failure;
        let old_failure = self.rmnd_old_places.failure;

        let mut out = Vec::with_capacity(phis.len());
        let mut prev_phi = 0.0;
        let mut tau_acc = 0.0;
        let mut exact_acc = 0.0; // ∫₀^φ D(t)dt on the stopped chain
        let mut gd_pi_prev = gd_space.initial_distribution().to_vec();
        let mut stopped_pi_prev = gd_space.initial_distribution().to_vec();

        for (k, &phi) in phis.iter().enumerate() {
            // Advance the accumulated integrals over (prev_phi, phi].
            let gap = phi - prev_phi;
            if gap > 0.0 {
                let occ = markov::transient::occupancy(gd, &gd_pi_prev, gap, &opts)?;
                tau_acc += tau_structure.accumulated(gd, &occ)?;
                let occ_stopped =
                    markov::transient::occupancy(&stopped, &stopped_pi_prev, gap, &opts)?;
                exact_acc += detected_states.iter().map(|&s| occ_stopped[s]).sum::<f64>();
            }
            gd_pi_prev = pi_at[k].clone();
            stopped_pi_prev = stopped_pi_at[k].clone();
            prev_phi = phi;

            let (p_a1_gop, i_h, i_hf, i_tau_h, i_tau_h_exact) = if phi == 0.0 {
                (1.0, 0.0, 0.0, 0.0, 0.0)
            } else {
                let pi = &pi_at[k];
                let d_phi: f64 = detected_states.iter().map(|&s| stopped_pi_at[k][s]).sum();
                (
                    gd_space.probability_of(pi, |mk| p.in_a1(mk)),
                    gd_space.probability_of(pi, |mk| p.in_a3(mk)),
                    gd_space.probability_of(pi, |mk| p.detected_then_failed(mk)),
                    tau_acc,
                    (phi * d_phi - exact_acc).max(0.0),
                )
            };

            // Remaining-window survivals were computed on the reversed grid.
            let rk = phis.len() - 1 - k;
            let p_a1_norm_rem =
                new_space.probability_of(&new_pi[rk], |mk| mk.tokens(new_failure) == 0);
            let i_f = 1.0 - old_space.probability_of(&old_pi[rk], |mk| mk.tokens(old_failure) == 0);

            let measures = ConstituentMeasures {
                p_a1_gop,
                p_a1_norm_theta: self.p_a1_norm_theta,
                p_a1_norm_rem,
                rho1: self.rho.0,
                rho2: self.rho.1,
                i_h,
                i_tau_h,
                i_tau_h_exact,
                i_hf,
                i_f,
            };
            out.push(assemble(theta, phi, &measures, self.gamma_policy)?);
        }
        Ok(out)
    }

    /// Finds the φ maximizing `Y` by coarse grid search followed by
    /// golden-section refinement around the best bracket.
    ///
    /// `grid` is the number of coarse intervals (the paper uses 10);
    /// `refinements` golden-section steps shrink the bracket afterwards
    /// (each step costs one evaluation).
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn optimal_phi(&self, grid: usize, refinements: usize) -> Result<SweepPoint> {
        let theta = self.params.theta;
        let grid = grid.max(2);
        let points = self.sweep_grid(grid)?;
        let Some(&first) = points.first() else {
            return Err(PerfError::InvalidParameter {
                name: "grid",
                value: grid as f64,
                expected: "a grid that yields at least one sweep point",
            });
        };
        // `is_ge` keeps the *last* maximum, matching `Iterator::max_by`.
        let mut best = first;
        for p in &points[1..] {
            if p.y.total_cmp(&best.y).is_ge() {
                best = *p;
            }
        }

        // Bracket around the best coarse point.
        let step = theta / grid as f64;
        let mut lo = (best.phi - step).max(0.0);
        let mut hi = (best.phi + step).min(theta);

        // Golden-section search (maximization).
        const INV_PHI: f64 = 0.618_033_988_749_894_8;
        let mut x1 = hi - INV_PHI * (hi - lo);
        let mut x2 = lo + INV_PHI * (hi - lo);
        let mut f1 = self.evaluate(x1)?;
        let mut f2 = self.evaluate(x2)?;
        for _ in 0..refinements {
            if f1.y >= f2.y {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - INV_PHI * (hi - lo);
                f1 = self.evaluate(x1)?;
            } else {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + INV_PHI * (hi - lo);
                f2 = self.evaluate(x2)?;
            }
            let candidate = if f1.y >= f2.y { f1 } else { f2 };
            if candidate.y > best.y {
                best = candidate;
            }
        }
        Ok(best)
    }
}

impl std::fmt::Debug for GsuAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GsuAnalysis")
            .field("params", &self.params)
            .field("rho", &self.rho)
            .field("p_a1_norm_theta", &self.p_a1_norm_theta)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analysis() -> GsuAnalysis {
        GsuAnalysis::new(GsuParams::paper_baseline()).unwrap()
    }

    #[test]
    fn phi_zero_yields_unit_index() {
        let pt = analysis().evaluate(0.0).unwrap();
        assert!((pt.y - 1.0).abs() < 1e-9, "Y(0) = {}", pt.y);
    }

    #[test]
    fn baseline_guarded_operation_pays_off() {
        let an = analysis();
        let pt = an.evaluate(7000.0).unwrap();
        assert!(pt.y > 1.0, "Y(7000) = {}", pt.y);
        assert!(pt.y < 5.0, "Y(7000) = {} looks implausibly large", pt.y);
    }

    #[test]
    fn measures_validate_across_phi_grid() {
        let an = analysis();
        for phi in [0.0, 1000.0, 5000.0, 10_000.0] {
            let m = an.measures(phi).unwrap();
            m.validate(phi).unwrap();
        }
    }

    #[test]
    fn detection_mass_grows_with_phi() {
        let an = analysis();
        let m1 = an.measures(2000.0).unwrap();
        let m2 = an.measures(8000.0).unwrap();
        assert!(m2.i_h > m1.i_h);
        assert!(m2.i_tau_h > m1.i_tau_h);
        assert!(m1.p_a1_gop > m2.p_a1_gop);
        // Remaining-window survival improves with larger φ.
        assert!(m2.p_a1_norm_rem > m1.p_a1_norm_rem);
    }

    #[test]
    fn phi_out_of_range_rejected() {
        let an = analysis();
        assert!(matches!(
            an.evaluate(20_000.0),
            Err(PerfError::PhiOutOfRange { .. })
        ));
        assert!(an.evaluate(-1.0).is_err());
    }

    #[test]
    fn fixed_overhead_is_respected() {
        let an = GsuAnalysis::with_fixed_overhead(GsuParams::paper_baseline(), 0.95, 0.90).unwrap();
        assert_eq!(an.rho(), (0.95, 0.90));
        assert!(GsuAnalysis::with_fixed_overhead(GsuParams::paper_baseline(), 1.5, 0.9).is_err());
    }

    #[test]
    fn computed_rho_close_to_paper() {
        let an = analysis();
        let (r1, r2) = an.rho();
        assert!((r1 - 0.98).abs() < 0.005);
        assert!((r2 - 0.95).abs() < 0.02);
    }

    #[test]
    fn sweep_grid_covers_endpoints() {
        let an = analysis();
        let pts = an.sweep_grid(4).unwrap();
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0].phi, 0.0);
        assert_eq!(pts[4].phi, 10_000.0);
    }

    #[test]
    fn incremental_sweep_matches_pointwise_sweep() {
        let an = analysis();
        let phis = [0.0, 1500.0, 4000.0, 4000.0, 8500.0, 10_000.0];
        let fast = an.sweep_incremental(&phis).unwrap();
        let slow = an.sweep(phis.iter().copied()).unwrap();
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            assert!(
                (f.y - s.y).abs() < 1e-6,
                "φ={}: incremental {} vs pointwise {}",
                f.phi,
                f.y,
                s.y
            );
            assert!((f.measures.i_tau_h - s.measures.i_tau_h).abs() < 1e-4);
            assert!((f.measures.i_tau_h_exact - s.measures.i_tau_h_exact).abs() < 1e-4);
            assert!((f.measures.i_h - s.measures.i_h).abs() < 1e-9);
        }
    }

    #[test]
    fn incremental_sweep_rejects_descending_grid() {
        let an = analysis();
        assert!(an.sweep_incremental(&[5000.0, 1000.0]).is_err());
        assert!(an.sweep_incremental(&[]).unwrap().is_empty());
        assert!(an.sweep_incremental(&[20_000.0]).is_err());
    }

    #[test]
    fn optimal_phi_is_interior_and_beats_endpoints() {
        let an = analysis();
        let best = an.optimal_phi(10, 12).unwrap();
        let y0 = an.evaluate(0.0).unwrap().y;
        let y_theta = an.evaluate(10_000.0).unwrap().y;
        assert!(best.y >= y0);
        assert!(best.y >= y_theta);
        assert!(best.phi > 0.0);
    }
}
