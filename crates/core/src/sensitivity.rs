//! Local sensitivity analysis of the performability index.
//!
//! The paper's §6 explores sensitivity one parameter at a time (µ_new in
//! Figs. 9/12, α/β in Fig. 10, c in Fig. 11). This module systematizes
//! that: central finite differences of `Y(φ)` with respect to every basic
//! parameter, reported as **elasticities** (`%ΔY per %Δparameter`) so
//! different scales are comparable — the tornado view of which knobs
//! actually matter.

use crate::{GsuAnalysis, GsuParams, Result};

/// Sensitivity of `Y(φ)` to one parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSensitivity {
    /// Parameter name.
    pub name: &'static str,
    /// Baseline value of the parameter.
    pub base_value: f64,
    /// Relative perturbation used for the central difference.
    pub relative_step: f64,
    /// `Y` at the decreased parameter value.
    pub y_low: f64,
    /// `Y` at the increased parameter value.
    pub y_high: f64,
    /// Elasticity `(ΔY/Y) / (Δp/p)` at the baseline.
    pub elasticity: f64,
}

impl ParamSensitivity {
    /// Total swing `|y_high − y_low|` — the tornado bar length.
    pub fn swing(&self) -> f64 {
        (self.y_high - self.y_low).abs()
    }
}

/// All basic parameters that can be perturbed multiplicatively.
/// Parameter accessor pair: read the value, write a perturbed value.
type ParamAccessor = (&'static str, fn(&GsuParams) -> f64, fn(&mut GsuParams, f64));

fn parameters() -> Vec<ParamAccessor> {
    vec![
        ("lambda", |p| p.lambda, |p, v| p.lambda = v),
        ("mu_new", |p| p.mu_new, |p, v| p.mu_new = v),
        ("mu_old", |p| p.mu_old, |p, v| p.mu_old = v),
        ("coverage", |p| p.coverage, |p, v| p.coverage = v),
        ("p_ext", |p| p.p_ext, |p, v| p.p_ext = v),
        ("alpha", |p| p.alpha, |p, v| p.alpha = v),
        ("beta", |p| p.beta, |p, v| p.beta = v),
    ]
}

/// Computes the local sensitivity of `Y(φ)` to every basic parameter by
/// central finite differences with a multiplicative step `rel_step`
/// (e.g. `0.05` for ±5%). Parameters bounded by 1 (coverage, `p_ext`) are
/// clamped into `[0, 1]`.
///
/// Results are sorted by decreasing swing.
///
/// # Errors
///
/// Propagates parameter validation and pipeline failures; `rel_step` must
/// lie in `(0, 0.5)`.
pub fn local_sensitivity(
    params: GsuParams,
    phi: f64,
    rel_step: f64,
) -> Result<Vec<ParamSensitivity>> {
    if !(rel_step > 0.0 && rel_step < 0.5) {
        return Err(crate::PerfError::InvalidParameter {
            name: "rel_step",
            value: rel_step,
            expected: "within (0, 0.5)",
        });
    }
    params.validate()?;
    params.validate_phi(phi)?;
    let base = GsuAnalysis::new(params)?;
    let base_y = base.evaluate(phi)?.y;
    // The perturbed parameter points are neighbors of the base point, so
    // their RMGp steady solves are warm-started from the base stationary
    // vector (parameter continuation).
    let base_pi = base.rho_steady_vector().map(<[f64]>::to_vec);
    drop(base);

    // Each parameter's two perturbed pipelines (build + solve) are
    // independent given `base_y`, so fan them across the global pool. The
    // per-parameter computation is untouched and results are collected in
    // accessor order, so the outcome is bitwise identical at any thread
    // count.
    let workers = pool::Pool::current();
    let mut span = telemetry::span("performability.local_sensitivity");
    span.record("threads", workers.threads());
    let per_param =
        |_: usize, (name, get, set): ParamAccessor| -> Result<Option<ParamSensitivity>> {
            let base_value = get(&params);
            if base_value == 0.0 {
                return Ok(None); // multiplicative perturbation undefined
            }
            let bounded = matches!(name, "coverage" | "p_ext");
            let clamp = |v: f64| if bounded { v.clamp(0.0, 1.0) } else { v };

            let mut low = params;
            set(&mut low, clamp(base_value * (1.0 - rel_step)));
            let mut high = params;
            set(&mut high, clamp(base_value * (1.0 + rel_step)));

            let y_low = GsuAnalysis::new_continued(low, base_pi.as_deref())?
                .evaluate(phi)?
                .y;
            let y_high = GsuAnalysis::new_continued(high, base_pi.as_deref())?
                .evaluate(phi)?
                .y;

            let dp_rel = (get(&high) - get(&low)) / base_value;
            let elasticity = if dp_rel.abs() > 0.0 {
                ((y_high - y_low) / base_y) / dp_rel
            } else {
                0.0
            };

            Ok(Some(ParamSensitivity {
                name,
                base_value,
                relative_step: rel_step,
                y_low,
                y_high,
                elasticity,
            }))
        };
    let sensitivities = workers.try_map_indexed(parameters(), per_param)?;

    let mut out: Vec<ParamSensitivity> = sensitivities.into_iter().flatten().collect();
    out.sort_by(|a, b| b.swing().total_cmp(&a.swing()));
    Ok(out)
}

/// Renders sensitivities as a plain-text tornado table.
pub fn tornado_table(sensitivities: &[ParamSensitivity]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>10} {:>10} {:>12}",
        "parameter", "base", "Y(-step)", "Y(+step)", "elasticity"
    );
    let max_swing = sensitivities
        .iter()
        .map(|s| s.swing())
        .fold(f64::MIN_POSITIVE, f64::max);
    for s in sensitivities {
        let bar_len = ((s.swing() / max_swing) * 30.0).round() as usize;
        let _ = writeln!(
            out,
            "{:>10} {:>12.4e} {:>10.4} {:>10.4} {:>12.4}  {}",
            s.name,
            s.base_value,
            s.y_low,
            s.y_high,
            s.elasticity,
            "#".repeat(bar_len)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_and_mu_dominate_at_baseline() {
        let sens = local_sensitivity(GsuParams::paper_baseline(), 7000.0, 0.1).unwrap();
        assert_eq!(sens.len(), 7);
        // §6: the tradeoff "chiefly involves the reliability of software
        // components" and the benefit is very sensitive to coverage.
        let top2: Vec<&str> = sens.iter().take(2).map(|s| s.name).collect();
        assert!(
            top2.contains(&"coverage") || top2.contains(&"mu_new"),
            "top sensitivities were {top2:?}"
        );
        // µ_old barely matters (it is 4 orders of magnitude smaller).
        let mu_old = sens.iter().find(|s| s.name == "mu_old").unwrap();
        assert!(mu_old.swing() < sens[0].swing() / 10.0);
    }

    #[test]
    fn coverage_elasticity_is_positive() {
        let sens = local_sensitivity(GsuParams::paper_baseline(), 6000.0, 0.05).unwrap();
        let cov = sens.iter().find(|s| s.name == "coverage").unwrap();
        assert!(cov.elasticity > 0.0, "better ATs must increase Y");
        assert!(cov.y_high > cov.y_low);
    }

    #[test]
    fn results_sorted_by_swing() {
        let sens = local_sensitivity(GsuParams::paper_baseline(), 5000.0, 0.1).unwrap();
        for w in sens.windows(2) {
            assert!(w[0].swing() >= w[1].swing());
        }
    }

    #[test]
    fn bad_step_rejected() {
        assert!(local_sensitivity(GsuParams::paper_baseline(), 5000.0, 0.0).is_err());
        assert!(local_sensitivity(GsuParams::paper_baseline(), 5000.0, 0.9).is_err());
    }

    #[test]
    fn tornado_table_renders() {
        let sens = local_sensitivity(GsuParams::paper_baseline(), 5000.0, 0.1).unwrap();
        let table = tornado_table(&sens);
        assert!(table.contains("coverage"));
        assert!(table.contains('#'));
    }
}
