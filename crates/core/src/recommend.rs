//! Engineering decision support on top of the performability index.
//!
//! The paper positions `Y` as a decision aid "in various capacities" (§6):
//! it picks the best φ, *and* it tells you whether guarding is worth doing
//! at all (their c = 0.20 study: a maximum of 1.06 is "too insignificant to
//! justify the use of guarded operations of any length"). This module
//! encodes that decision logic with explicit thresholds, adding the mission
//! safety constraint the worth formulation implies (failure nullifies the
//! mission period).

use crate::{GsuAnalysis, PerfError, Result, SweepPoint};

/// Decision thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraints {
    /// Minimum degradation-reduction benefit to justify the guard's
    /// operational complexity: require `Y(φ*) ≥ 1 + min_benefit`
    /// (e.g. `0.05` demands at least a 5% reduction).
    pub min_benefit: f64,
    /// Optional cap on the probability of mission failure over θ
    /// (`P[S3]`); `None` disables the safety check.
    pub max_failure_probability: Option<f64>,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            min_benefit: 0.05,
            max_failure_probability: None,
        }
    }
}

/// The recommended course of action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Run guarded operation for the stated duration.
    Guard {
        /// Recommended guarded-operation duration (hours).
        phi: f64,
    },
    /// Activate the upgrade without a guard — the achievable benefit does
    /// not justify the escort.
    FlyUnguarded,
    /// Neither guarded nor unguarded operation meets the failure cap —
    /// keep the old version (reject or postpone the upgrade).
    RejectUpgrade,
}

/// A full recommendation with its supporting numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The decision.
    pub decision: Decision,
    /// The best evaluated point (φ*, Y*, and all constituent measures).
    pub best: SweepPoint,
    /// Mission-failure probability when guarding for φ*.
    pub failure_probability_guarded: f64,
    /// Mission-failure probability without a guard.
    pub failure_probability_unguarded: f64,
}

/// Mission-failure probability `P[S3]` at an evaluated point:
/// `1 − P[S1] − P[S2]` with `P[S1] = P(X'_φ∈A'1)·P(X''_{θ−φ}∈A''1)` and
/// `P[S2] = ∫h·(1 − ∫f)`.
pub fn failure_probability(point: &SweepPoint) -> f64 {
    let m = &point.measures;
    let p_s1 = m.p_a1_gop * m.p_a1_norm_rem;
    let p_s2 = m.i_h * (1.0 - m.i_f);
    (1.0 - p_s1 - p_s2).clamp(0.0, 1.0)
}

/// Produces a recommendation for the analysed parameter set.
///
/// Decision order: safety first (the failure cap), then benefit (the
/// `min_benefit` threshold on `Y(φ*)`).
///
/// # Errors
///
/// Returns [`PerfError::InvalidParameter`] for a negative `min_benefit` or
/// a failure cap outside `[0, 1]`, and propagates evaluation failures.
pub fn recommend(
    analysis: &GsuAnalysis,
    constraints: &Constraints,
    grid: usize,
    refinements: usize,
) -> Result<Recommendation> {
    if !constraints.min_benefit.is_finite() || constraints.min_benefit < 0.0 {
        return Err(PerfError::InvalidParameter {
            name: "min_benefit",
            value: constraints.min_benefit,
            expected: "finite and >= 0",
        });
    }
    if let Some(cap) = constraints.max_failure_probability {
        if !(0.0..=1.0).contains(&cap) {
            return Err(PerfError::InvalidParameter {
                name: "max_failure_probability",
                value: cap,
                expected: "within [0, 1]",
            });
        }
    }

    let best = analysis.optimal_phi(grid, refinements)?;
    let p_fail_guarded = failure_probability(&best);
    // Unguarded failure probability: the mission fails unless the upgraded
    // system survives all of θ (Eq. 3).
    let p_fail_unguarded = 1.0 - best.measures.p_a1_norm_theta;

    let guarded_safe = constraints
        .max_failure_probability
        .is_none_or(|cap| p_fail_guarded <= cap);
    let unguarded_safe = constraints
        .max_failure_probability
        .is_none_or(|cap| p_fail_unguarded <= cap);
    let beneficial = best.y >= 1.0 + constraints.min_benefit;

    let decision = if !guarded_safe && !unguarded_safe {
        Decision::RejectUpgrade
    } else if guarded_safe && (beneficial || !unguarded_safe) {
        Decision::Guard { phi: best.phi }
    } else {
        Decision::FlyUnguarded
    };

    Ok(Recommendation {
        decision,
        best,
        failure_probability_guarded: p_fail_guarded,
        failure_probability_unguarded: p_fail_unguarded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GsuParams;

    fn baseline_analysis() -> GsuAnalysis {
        GsuAnalysis::new(GsuParams::paper_baseline()).unwrap()
    }

    #[test]
    fn baseline_recommends_the_guard() {
        let rec = recommend(&baseline_analysis(), &Constraints::default(), 10, 8).unwrap();
        match rec.decision {
            Decision::Guard { phi } => assert!((6000.0..=8000.0).contains(&phi)),
            other => panic!("expected Guard, got {other:?}"),
        }
        // Guarding converts most failures into safe downgrades.
        assert!(rec.failure_probability_guarded < rec.failure_probability_unguarded);
        assert!(rec.failure_probability_unguarded > 0.6); // 1 − e^{−1}
        assert!(rec.failure_probability_guarded < 0.25);
    }

    #[test]
    fn absurd_benefit_threshold_skips_the_guard() {
        let constraints = Constraints {
            min_benefit: 10.0,
            max_failure_probability: None,
        };
        let rec = recommend(&baseline_analysis(), &constraints, 10, 4).unwrap();
        assert_eq!(rec.decision, Decision::FlyUnguarded);
    }

    #[test]
    fn low_coverage_benefit_fails_the_threshold() {
        // c = 0.20 (the paper's "too insignificant to justify" case): max Y
        // ≈ 1.035 < 1.05.
        let params = GsuParams::paper_baseline()
            .with_overhead_rates(2500.0, 2500.0)
            .unwrap()
            .with_coverage(0.20)
            .unwrap();
        let analysis = GsuAnalysis::new(params).unwrap();
        let rec = recommend(&analysis, &Constraints::default(), 10, 4).unwrap();
        assert_eq!(rec.decision, Decision::FlyUnguarded);
    }

    #[test]
    fn impossible_safety_cap_rejects_the_upgrade() {
        let constraints = Constraints {
            min_benefit: 0.0,
            max_failure_probability: Some(1e-6),
        };
        let rec = recommend(&baseline_analysis(), &constraints, 10, 4).unwrap();
        assert_eq!(rec.decision, Decision::RejectUpgrade);
    }

    #[test]
    fn safety_cap_forces_the_guard_even_without_benefit() {
        // A cap the guard meets but the unguarded system does not, with an
        // unreachable benefit threshold: safety wins.
        let constraints = Constraints {
            min_benefit: 10.0,
            max_failure_probability: Some(0.3),
        };
        let rec = recommend(&baseline_analysis(), &constraints, 10, 4).unwrap();
        assert!(matches!(rec.decision, Decision::Guard { .. }));
    }

    #[test]
    fn invalid_constraints_rejected() {
        let analysis = baseline_analysis();
        let bad_benefit = Constraints {
            min_benefit: -0.1,
            max_failure_probability: None,
        };
        assert!(recommend(&analysis, &bad_benefit, 4, 2).is_err());
        let bad_cap = Constraints {
            min_benefit: 0.0,
            max_failure_probability: Some(1.5),
        };
        assert!(recommend(&analysis, &bad_cap, 4, 2).is_err());
    }

    #[test]
    fn failure_probability_is_consistent() {
        let analysis = baseline_analysis();
        let pt = analysis.evaluate(7000.0).unwrap();
        let p = failure_probability(&pt);
        assert!((0.0..=1.0).contains(&p));
        // At φ = 0 the guarded failure probability equals the unguarded one.
        let p0 = analysis.evaluate(0.0).unwrap();
        let want = 1.0 - p0.measures.p_a1_norm_theta;
        assert!((failure_probability(&p0) - want).abs() < 1e-9);
    }
}
