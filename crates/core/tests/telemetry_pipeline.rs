//! End-to-end check that a full `GsuAnalysis` evaluation feeds the
//! telemetry pipeline: the solver, uniformization, Fox–Glynn, and SAN
//! generation layers must all leave footprints in an installed collector.
//!
//! Kept as a single test in its own binary: the telemetry sink is
//! process-global, and a dedicated integration-test process avoids
//! cross-talk with other tests.

use performability::{GsuAnalysis, GsuParams};
use telemetry::Collector;

#[test]
fn evaluate_records_solver_and_state_space_metrics() {
    let collector = Collector::install();

    let analysis = GsuAnalysis::new(GsuParams::paper_baseline()).expect("baseline builds");
    // Tiny φ: few expected Poisson steps, so the cost-aware Auto selection
    // picks uniformization and exercises Fox–Glynn.
    let near = analysis.evaluate(0.5).expect("small φ evaluates");
    // Paper optimum: enough expected steps that the dense matrix
    // exponential is the cheaper engine.
    let far = analysis.evaluate(7000.0).expect("optimum φ evaluates");
    assert!(near.y.is_finite() && far.y.is_finite());

    telemetry::clear_sink();

    // Steady-state solver: the RMGp ρ solve runs during build.
    assert!(collector.counter_value("solver.solves").unwrap_or(0) >= 1);
    // Iterations: uniformization steps count toward the global work tally.
    assert!(collector.counter_value("solver.iterations").unwrap_or(0) > 0);

    // Both transient engines ran, and every Fox–Glynn window is non-empty.
    assert!(
        collector
            .counter_value("markov.uniformization.solves")
            .unwrap_or(0)
            >= 1
    );
    assert!(collector.counter_value("markov.expm.solves").unwrap_or(0) >= 1);
    assert!(collector.counter_value("fox_glynn.windows").unwrap_or(0) >= 1);
    let window_len = collector
        .histogram_snapshot("fox_glynn.window_len")
        .expect("window lengths observed");
    assert!(window_len.count >= 1);
    assert!(window_len.min >= 1.0, "Fox–Glynn window must be non-empty");

    // State-space generation: all three SAN models report their sizes.
    for model in ["rmgd", "rmgp", "rmnd"] {
        let states = collector
            .gauge_value(&format!("san.states.{model}"))
            .unwrap_or_else(|| panic!("missing san.states.{model}"));
        assert!(states > 0.0, "model {model} generated no states");
    }

    // The per-φ evaluation span wraps the whole pipeline.
    let spans = collector.spans();
    assert!(spans.iter().any(|s| s.name == "performability.evaluate"));
    assert!(spans
        .iter()
        .any(|s| s.name == "markov.transient.distribution"));
    assert_eq!(
        collector.counter_value("performability.evaluations"),
        Some(2)
    );
}
