//! Adaptive uniformization vs exact uniformization on the paper's models.
//!
//! The adaptive path (budgeted mass dropping + steady-state detection) must
//! agree with a brute-force uniformization run — drop tolerance forced to
//! zero, no early cut-off — to well under the solver's own ε across the
//! parameter families the figures sweep: fig9/fig12 vary `mu_new` and θ,
//! fig10 slows the overhead rates, fig11 sweeps coverage.

use markov::transient::{self, Method, Options};
use performability::gsu::rmgd;
use performability::GsuParams;
use proptest::prelude::*;
use san::Analyzer;

const AGREE_TOL: f64 = 1e-12;

/// Parameter draws spanning the fig9–fig12 families (baseline θ = 10 000,
/// μ_new = 1e-4, c = 0.95; fig12 uses θ = 5 000, fig9/12 μ_new = 5e-5,
/// fig10/11 overhead rates 2 500 with coverage down to 0.5).
fn family_params() -> impl Strategy<Value = GsuParams> {
    (
        5_000.0..10_000.0f64,
        5e-5..2e-4f64,
        0.5..0.999f64,
        500.0..2_500.0f64,
        500.0..2_500.0f64,
    )
        .prop_map(|(theta, mu_new, coverage, alpha, beta)| {
            GsuParams::paper_baseline()
                .with_theta(theta)
                .unwrap()
                .with_mu_new(mu_new)
                .unwrap()
                .with_coverage(coverage)
                .unwrap()
                .with_overhead_rates(alpha, beta)
                .unwrap()
        })
}

fn exact_opts() -> Options {
    Options {
        method: Method::Uniformization,
        // A vanishing ε forces the adaptive drop tolerance to (near) zero and
        // widens the Fox–Glynn window: every state is propagated every step.
        epsilon: 1e-15,
        steady_state_detection: false,
        ..Options::default()
    }
}

fn adaptive_opts() -> Options {
    Options {
        method: Method::Uniformization,
        steady_state_detection: true,
        ..Options::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn adaptive_matches_exact_uniformization(
        params in family_params(),
        t_frac in 0.05..1.0f64,
    ) {
        let built = rmgd::build(&params).unwrap();
        let analyzer = Analyzer::generate(&built.model, &Default::default()).unwrap();
        let space = analyzer.state_space();
        let ctmc = space.ctmc();
        let pi0 = space.initial_distribution();
        // Keep Λt inside the forced-uniformization step budget.
        let t = t_frac * 200.0;

        let adaptive = transient::distribution(ctmc, pi0, t, &adaptive_opts()).unwrap();
        let exact = transient::distribution(ctmc, pi0, t, &exact_opts()).unwrap();
        for (i, (a, e)) in adaptive.iter().zip(&exact).enumerate() {
            prop_assert!(
                (a - e).abs() <= AGREE_TOL,
                "distribution state {i}: adaptive {a} vs exact {e} at t = {t}"
            );
        }

        let adaptive_occ = transient::occupancy(ctmc, pi0, t, &adaptive_opts()).unwrap();
        let exact_occ = transient::occupancy(ctmc, pi0, t, &exact_opts()).unwrap();
        for (i, (a, e)) in adaptive_occ.iter().zip(&exact_occ).enumerate() {
            // Occupancies are time-integrals (magnitude up to t), so compare
            // relative to the horizon.
            prop_assert!(
                (a - e).abs() <= AGREE_TOL * t.max(1.0),
                "occupancy state {i}: adaptive {a} vs exact {e} at t = {t}"
            );
        }
    }
}
