//! Deterministic, machine-independent work counters.
//!
//! Unlike every other emission in this crate, these counters are **always
//! on** — they are process-global relaxed atomics, not routed through the
//! pluggable sink. Each is incremented once per whole operation (one per
//! sparse matrix-vector product, one per solver sweep), so the overhead is
//! a single relaxed add amortised over thousands of floating-point
//! operations, and the totals are identical across machines, thread counts,
//! and load. That determinism is the point: the bench harness snapshots
//! these counters around each experiment and ratchets on the *work*
//! performed (`gsu-bench regress`), a signal a noisy 1-CPU container cannot
//! corrupt the way it corrupts wall time.

use std::sync::atomic::{AtomicU64, Ordering};

static SPMV_OPS: AtomicU64 = AtomicU64::new(0);
static AXPY_OPS: AtomicU64 = AtomicU64::new(0);
static SOLVER_ITERATIONS: AtomicU64 = AtomicU64::new(0);
static EXPM_SOLVES: AtomicU64 = AtomicU64::new(0);

/// Counts `n` sparse matrix-vector products (whole-matrix granularity).
#[inline]
pub fn count_spmv(n: u64) {
    SPMV_OPS.fetch_add(n, Ordering::Relaxed);
}

/// Counts `n` vector `axpy`-class updates (scale-and-accumulate passes).
#[inline]
pub fn count_axpy(n: u64) {
    AXPY_OPS.fetch_add(n, Ordering::Relaxed);
}

/// Counts `n` iterations of an iterative solver (one sweep each).
#[inline]
pub fn count_iterations(n: u64) {
    SOLVER_ITERATIONS.fetch_add(n, Ordering::Relaxed);
}

/// Counts `n` dense matrix-exponential solves.
#[inline]
pub fn count_expm(n: u64) {
    EXPM_SOLVES.fetch_add(n, Ordering::Relaxed);
}

/// A point-in-time copy of every work counter.
///
/// Counters are monotone, so the cost of a region is the field-wise
/// difference of two snapshots ([`WorkSnapshot::delta_since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkSnapshot {
    /// Sparse matrix-vector products performed.
    pub spmv_ops: u64,
    /// Vector axpy-class updates performed.
    pub axpy_ops: u64,
    /// Iterative-solver iterations performed.
    pub solver_iterations: u64,
    /// Dense matrix-exponential solves performed.
    pub expm_solves: u64,
}

impl WorkSnapshot {
    /// The work performed between `earlier` and `self`, field-wise.
    pub fn delta_since(&self, earlier: &WorkSnapshot) -> WorkSnapshot {
        WorkSnapshot {
            spmv_ops: self.spmv_ops.saturating_sub(earlier.spmv_ops),
            axpy_ops: self.axpy_ops.saturating_sub(earlier.axpy_ops),
            solver_iterations: self
                .solver_iterations
                .saturating_sub(earlier.solver_iterations),
            expm_solves: self.expm_solves.saturating_sub(earlier.expm_solves),
        }
    }
}

/// Reads every work counter.
pub fn snapshot() -> WorkSnapshot {
    WorkSnapshot {
        spmv_ops: SPMV_OPS.load(Ordering::Relaxed),
        axpy_ops: AXPY_OPS.load(Ordering::Relaxed),
        solver_iterations: SOLVER_ITERATIONS.load(Ordering::Relaxed),
        expm_solves: EXPM_SOLVES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_fieldwise_and_monotone() {
        let before = snapshot();
        count_spmv(3);
        count_axpy(2);
        count_iterations(5);
        count_expm(1);
        let after = snapshot();
        let delta = after.delta_since(&before);
        // Other tests may run concurrently in this process, so the deltas
        // are lower bounds, not exact.
        assert!(delta.spmv_ops >= 3);
        assert!(delta.axpy_ops >= 2);
        assert!(delta.solver_iterations >= 5);
        assert!(delta.expm_solves >= 1);
        assert_eq!(before.delta_since(&after), WorkSnapshot::default());
    }
}
