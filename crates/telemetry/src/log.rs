//! Leveled structured event logging: one JSON object per line (JSONL).
//!
//! Orthogonal to the metric sink: the sink aggregates, the log streams.
//! Logging is off by default; `init_log_from_env("GSU_LOG")` enables it from
//! the conventional environment variable (`GSU_LOG=error|warn|info|debug`).
//! Events go to stderr unless a writer is installed with
//! [`set_log_writer`] (tests, or a daemon redirecting to a file).
//!
//! At `debug`, every completed [`span`](crate::span) additionally emits an
//! event with its name and duration, so a `GSU_LOG=debug` run is a readable
//! narration of the same structure the Chrome trace draws.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::{escape, fmt_f64};
use crate::ArgValue;

/// Event severity, ordered `Error < Warn < Info < Debug` (a level enables
/// itself and everything less verbose).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-losing conditions.
    Error = 1,
    /// Suspicious but survivable conditions (mirrors sink warnings).
    Warn = 2,
    /// Request/operation progress.
    Info = 3,
    /// Per-span narration and other high-volume detail.
    Debug = 4,
}

impl Level {
    /// Lower-case name as it appears in the JSONL `level` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a `GSU_LOG` value; unknown or "off"-like values yield `None`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Option<Level> {
        match v {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            4 => Some(Level::Debug),
            _ => None,
        }
    }
}

/// 0 = off; otherwise the numeric value of the enabled [`Level`].
static LOG_LEVEL: AtomicU8 = AtomicU8::new(0);
static LOG_WRITER: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Sets the maximum enabled level (`None` disables logging entirely).
pub fn set_log_level(level: Option<Level>) {
    LOG_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// The currently enabled level, if any.
pub fn log_level() -> Option<Level> {
    Level::from_u8(LOG_LEVEL.load(Ordering::Relaxed))
}

/// Whether an event at `level` would be emitted. The fast path: a single
/// relaxed atomic load, mirroring [`crate::enabled`] for the metric sink.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    (level as u8) <= LOG_LEVEL.load(Ordering::Relaxed)
}

/// Reads the log level from the environment variable `var`
/// (conventionally `GSU_LOG`) and installs it; returns the parsed level.
pub fn init_log_from_env(var: &str) -> Option<Level> {
    let level = std::env::var(var).ok().and_then(|v| Level::parse(&v));
    set_log_level(level);
    level
}

/// Redirects events to `writer` instead of stderr (until
/// [`take_log_writer`]).
pub fn set_log_writer(writer: Box<dyn Write + Send>) {
    *LOG_WRITER.lock().unwrap_or_else(|e| e.into_inner()) = Some(writer);
}

/// Removes a writer installed with [`set_log_writer`], restoring stderr,
/// and returns it so tests can inspect what was written.
pub fn take_log_writer() -> Option<Box<dyn Write + Send>> {
    LOG_WRITER.lock().unwrap_or_else(|e| e.into_inner()).take()
}

/// Emits one structured event:
/// `{"ts_us":…,"level":"…","target":"…","msg":"…","fields":{…}}`.
///
/// A no-op (one atomic load) unless `level` is enabled. `target` names the
/// emitting subsystem (`"serve"`, `"telemetry.span"`, …); `fields` attach
/// typed context without string interpolation.
pub fn log_event(level: Level, target: &str, message: &str, fields: &[(&str, ArgValue)]) {
    if !log_enabled(level) {
        return;
    }
    let ts_us = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut line = format!(
        "{{\"ts_us\":{ts_us},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
        level.as_str(),
        escape(target),
        escape(message)
    );
    if !fields.is_empty() {
        line.push_str(",\"fields\":{");
        for (i, (key, value)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{}\":", escape(key)));
            match value {
                ArgValue::F64(v) => line.push_str(&fmt_f64(*v)),
                ArgValue::U64(v) => line.push_str(&v.to_string()),
                ArgValue::Str(v) => line.push_str(&format!("\"{}\"", escape(v))),
            }
        }
        line.push('}');
    }
    line.push('}');
    let mut writer = LOG_WRITER.lock().unwrap_or_else(|e| e.into_inner());
    match writer.as_mut() {
        Some(w) => {
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
        None => eprintln!("{line}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // Level and writer are process-global; tests that touch them must not
    // overlap.
    static LOG_TEST_LOCK: Mutex<()> = Mutex::new(());

    /// A `Write` handle whose buffer outlives the installed writer.
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn captured(f: impl FnOnce()) -> String {
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        set_log_writer(Box::new(buf.clone()));
        f();
        take_log_writer();
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse(""), None);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn disabled_emits_nothing() {
        let _guard = LOG_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_log_level(None);
        let out = captured(|| log_event(Level::Error, "t", "dropped", &[]));
        assert!(out.is_empty());
    }

    #[test]
    fn level_filters_and_lines_are_json() {
        let _guard = LOG_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_log_level(Some(Level::Info));
        let out = captured(|| {
            log_event(Level::Debug, "t", "too verbose", &[]);
            log_event(
                Level::Info,
                "serve",
                "request",
                &[
                    ("path", ArgValue::from("/metrics")),
                    ("status", ArgValue::from(200u64)),
                    ("dur_ms", ArgValue::from(1.5)),
                ],
            );
            log_event(Level::Warn, "q\"t", "line\nbreak", &[]);
        });
        set_log_level(None);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "debug must be filtered: {out}");
        assert!(lines[0].contains("\"level\":\"info\""));
        assert!(lines[0].contains("\"target\":\"serve\""));
        assert!(
            lines[0].contains("\"fields\":{\"path\":\"/metrics\",\"status\":200,\"dur_ms\":1.5}")
        );
        assert!(lines[0].starts_with("{\"ts_us\":"));
        assert!(lines[0].ends_with('}'));
        assert!(lines[1].contains("\"target\":\"q\\\"t\""));
        assert!(lines[1].contains("line\\nbreak"));
    }

    #[test]
    fn env_init_roundtrip() {
        let _guard = LOG_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var("GSU_LOG_TEST_VAR", "debug");
        assert_eq!(init_log_from_env("GSU_LOG_TEST_VAR"), Some(Level::Debug));
        assert!(log_enabled(Level::Debug));
        std::env::set_var("GSU_LOG_TEST_VAR", "nonsense");
        assert_eq!(init_log_from_env("GSU_LOG_TEST_VAR"), None);
        assert!(!log_enabled(Level::Error));
        std::env::remove_var("GSU_LOG_TEST_VAR");
        set_log_level(None);
    }
}
