//! Sliding-window histogram: a ring of per-second log₁₀-bucket frames.
//!
//! The cumulative histograms in [`Collector`](crate::Collector) aggregate
//! since process start, which makes their quantile gauges useless for "how
//! is the service doing *right now*". A [`WindowHistogram`] keeps one frame
//! per wall-clock second in a fixed ring of `window_secs + 1` slots (the
//! current, still-filling second plus `window_secs` complete ones). Each
//! frame holds the same fixed log₁₀ bucket array the cumulative histograms
//! use (see [`crate::buckets`]), plus count/sum/min/max and a "good" count
//! of observations at or below an optional SLO bound.
//!
//! Recording is O(1): the frame for the current second is found by
//! `second % ring_len`; a stale frame (left over from `ring_len` seconds
//! ago) is reset in place the first time the new second touches it, so no
//! background sweeper is needed. A [`WindowSnapshot`] merges the frames
//! still inside the window into one bucket array; merging snapshots is
//! associative and commutative (element-wise sums, min/min, max/max), which
//! is what lets per-route windows be combined into service-level views and
//! is pinned by a unit test.
//!
//! The clock is injectable: `record_at` / `snapshot_at` take an absolute
//! second index so rotation and expiry are unit-testable without sleeping;
//! `record` / `snapshot` use seconds elapsed since the histogram's creation.

use std::sync::Mutex;
use std::time::Instant;

use crate::buckets::{bucket_bound, bucket_index, estimate_quantile, BUCKETS};

/// Default window width, in seconds, used by serving-side telemetry.
pub const DEFAULT_WINDOW_SECS: u64 = 60;

/// Sentinel for a ring slot that has never been written (or was reset).
const EMPTY_SECOND: u64 = u64::MAX;

#[derive(Debug, Clone)]
struct Frame {
    /// Absolute second index this frame holds data for; `EMPTY_SECOND` when
    /// the slot is unused.
    second: u64,
    buckets: [u64; BUCKETS],
    count: u64,
    good: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Frame {
    fn empty() -> Self {
        Frame {
            second: EMPTY_SECOND,
            buckets: [0; BUCKETS],
            count: 0,
            good: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn reset_for(&mut self, second: u64) {
        *self = Frame::empty();
        self.second = second;
    }
}

/// A sliding-window histogram with per-second resolution.
///
/// Thread-safe; observers take a short `Mutex` critical section (the ring is
/// tiny and updates are a few adds), which is fine for request-rate — not
/// SpMV-rate — instrumentation.
#[derive(Debug)]
pub struct WindowHistogram {
    epoch: Instant,
    window_secs: u64,
    /// Observations `<= slo_bound` count as "good" for SLO attainment.
    slo_bound: Option<f64>,
    frames: Mutex<Vec<Frame>>,
}

impl WindowHistogram {
    /// A histogram covering the last `window_secs` seconds (clamped to at
    /// least 1). `slo_bound`, if given, is the threshold (in the same unit
    /// as the observed values) at or below which an observation counts as
    /// "good" for [`WindowSnapshot::attainment`] — counted exactly per
    /// observation, not reconstructed from bucket boundaries.
    pub fn new(window_secs: u64, slo_bound: Option<f64>) -> Self {
        let window_secs = window_secs.max(1);
        WindowHistogram {
            epoch: Instant::now(),
            window_secs,
            slo_bound,
            // One slot per covered second plus the still-filling current one.
            frames: Mutex::new(vec![Frame::empty(); (window_secs + 1) as usize]),
        }
    }

    /// Width of the window, in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// The SLO bound observations are judged against, if any.
    pub fn slo_bound(&self) -> Option<f64> {
        self.slo_bound
    }

    /// Seconds elapsed since this histogram was created — the "now" used by
    /// [`record`](Self::record) and [`snapshot`](Self::snapshot).
    pub fn now_second(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// Records `value` into the current second's frame.
    pub fn record(&self, value: f64) {
        self.record_at(value, self.now_second());
    }

    /// Records `value` into the frame for absolute second `second`
    /// (injectable clock for tests).
    pub fn record_at(&self, value: f64, second: u64) {
        let mut frames = self.frames.lock().unwrap_or_else(|e| e.into_inner());
        let len = frames.len();
        let frame = &mut frames[(second % len as u64) as usize];
        if frame.second != second {
            // The slot still holds a frame from >= ring_len seconds ago (or
            // nothing): it has expired from the window, reclaim it in place.
            frame.reset_for(second);
        }
        frame.buckets[bucket_index(value)] += 1;
        frame.count += 1;
        frame.sum += value;
        frame.min = frame.min.min(value);
        frame.max = frame.max.max(value);
        if self.slo_bound.is_none_or(|bound| value <= bound) {
            frame.good += 1;
        }
    }

    /// Merges the frames inside the window ending at the current second.
    pub fn snapshot(&self) -> WindowSnapshot {
        self.snapshot_at(self.now_second())
    }

    /// Merges the frames covering seconds `(now - window_secs, now]`
    /// (injectable clock for tests). Frames older than the window are
    /// excluded even if they still sit in the ring.
    pub fn snapshot_at(&self, now: u64) -> WindowSnapshot {
        let mut snap = WindowSnapshot::empty(self.window_secs, self.slo_bound);
        let frames = self.frames.lock().unwrap_or_else(|e| e.into_inner());
        for frame in frames.iter() {
            if frame.second == EMPTY_SECOND
                || frame.second > now
                || now - frame.second >= self.window_secs
            {
                continue;
            }
            snap.count += frame.count;
            snap.good += frame.good;
            snap.sum += frame.sum;
            snap.min = snap.min.min(frame.min);
            snap.max = snap.max.max(frame.max);
            for (acc, &c) in snap.buckets.iter_mut().zip(frame.buckets.iter()) {
                *acc += c;
            }
        }
        snap
    }
}

/// A point-in-time merge of the frames inside a [`WindowHistogram`] window.
///
/// Snapshots are plain data and can be merged with [`merge`](Self::merge):
/// the operation is associative and commutative, so per-route snapshots
/// combine into service-level ones in any order.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Width of the originating window, in seconds.
    pub window_secs: u64,
    /// Observations in the window.
    pub count: u64,
    /// Observations at or below the SLO bound (all of them when no bound).
    pub good: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (`+inf` when empty).
    pub min: f64,
    /// Largest observed value (`-inf` when empty).
    pub max: f64,
    /// SLO bound the `good` count was judged against, if any.
    pub slo_bound: Option<f64>,
    buckets: [u64; BUCKETS],
}

impl WindowSnapshot {
    fn empty(window_secs: u64, slo_bound: Option<f64>) -> Self {
        WindowSnapshot {
            window_secs,
            count: 0,
            good: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            slo_bound,
            buckets: [0; BUCKETS],
        }
    }

    /// Combines two snapshots element-wise. Associative and commutative;
    /// `window_secs` takes the wider of the two and the SLO bound is kept
    /// from whichever side has one (callers merge like-configured windows).
    pub fn merge(&self, other: &WindowSnapshot) -> WindowSnapshot {
        let mut buckets = self.buckets;
        for (acc, &c) in buckets.iter_mut().zip(other.buckets.iter()) {
            *acc += c;
        }
        WindowSnapshot {
            window_secs: self.window_secs.max(other.window_secs),
            count: self.count + other.count,
            good: self.good + other.good,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            slo_bound: self.slo_bound.or(other.slo_bound),
            buckets,
        }
    }

    /// Estimated `q`-quantile of the windowed observations (`NaN` when the
    /// window is empty), with the same log-bucket resolution guarantees as
    /// the cumulative histograms.
    pub fn quantile(&self, q: f64) -> f64 {
        estimate_quantile(&self.buckets, self.count, self.min, self.max, q)
    }

    /// Mean of the windowed observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Fraction of windowed observations at or below the SLO bound; `None`
    /// when the window is empty or the histogram has no bound.
    pub fn attainment(&self) -> Option<f64> {
        match (self.slo_bound, self.count) {
            (Some(_), n) if n > 0 => Some(self.good as f64 / n as f64),
            _ => None,
        }
    }

    /// Non-empty `(upper_bound, count)` bucket pairs, for export.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bound(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_expire_after_the_window() {
        let w = WindowHistogram::new(10, None);
        w.record_at(5.0, 0);
        w.record_at(7.0, 3);
        // Both inside a 10 s window ending at second 9.
        let snap = w.snapshot_at(9);
        assert_eq!(snap.count, 2);
        assert_eq!(snap.min, 5.0);
        assert_eq!(snap.max, 7.0);
        // At second 10 the frame from second 0 is exactly window_secs old
        // and falls out; the one from second 3 remains.
        let snap = w.snapshot_at(10);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.min, 7.0);
        // Far in the future everything has expired, even though the frames
        // still physically sit in the ring.
        let snap = w.snapshot_at(1000);
        assert_eq!(snap.count, 0);
    }

    #[test]
    fn ring_slots_are_reclaimed_in_place() {
        let w = WindowHistogram::new(4, None);
        // Seconds 0 and 5 map to the same slot in a 5-slot ring; the second
        // write must replace, not accumulate onto, the first.
        w.record_at(1.0, 0);
        w.record_at(2.0, 5);
        let snap = w.snapshot_at(5);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.min, 2.0);
        assert_eq!(snap.max, 2.0);
    }

    #[test]
    fn empty_window_quantiles_are_nan() {
        let w = WindowHistogram::new(5, None);
        let snap = w.snapshot_at(0);
        assert_eq!(snap.count, 0);
        assert!(snap.quantile(0.5).is_nan());
        assert!(snap.quantile(0.999).is_nan());
        assert!(snap.mean().is_nan());
        assert!(snap.attainment().is_none());
        assert!(snap.nonzero_buckets().is_empty());
    }

    #[test]
    fn single_valued_window_quantiles_are_exact() {
        let w = WindowHistogram::new(60, None);
        for sec in 0..5 {
            w.record_at(1234.0, sec);
        }
        let snap = w.snapshot_at(5);
        assert_eq!(snap.count, 5);
        assert_eq!(snap.quantile(0.50), 1234.0);
        assert_eq!(snap.quantile(0.999), 1234.0);
        assert_eq!(snap.mean(), 1234.0);
    }

    #[test]
    fn snapshot_merge_is_associative_and_commutative() {
        // Three histograms with distinct data stand in for three per-route
        // windows being combined into a service-level view.
        let ha = WindowHistogram::new(30, Some(100.0));
        let hb = WindowHistogram::new(30, Some(100.0));
        let hc = WindowHistogram::new(30, Some(100.0));
        for &v in &[10.0, 50.0, 200.0] {
            ha.record_at(v, 0);
        }
        for &v in &[99.0, 101.0] {
            hb.record_at(v, 0);
        }
        hc.record_at(3.0, 0);
        let (a, b, c) = (ha.snapshot_at(0), hb.snapshot_at(0), hc.snapshot_at(0));
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_eq!(left, right, "merge must be associative");
        assert_eq!(a.merge(&b), b.merge(&a), "merge must be commutative");
        assert_eq!(left.count, 6);
        assert_eq!(left.good, 4); // 10, 50, 99, 3 are <= 100
        assert_eq!(left.attainment(), Some(4.0 / 6.0));
    }

    #[test]
    fn attainment_counts_good_observations_exactly() {
        let w = WindowHistogram::new(10, Some(250.0));
        // 249, 250 are good; 251 is not — a bucket-based reconstruction
        // could not distinguish these (all live in the (100, 1000] bucket).
        w.record_at(249.0, 1);
        w.record_at(250.0, 1);
        w.record_at(251.0, 1);
        let snap = w.snapshot_at(1);
        assert_eq!(snap.good, 2);
        assert_eq!(snap.attainment(), Some(2.0 / 3.0));
    }

    #[test]
    fn live_clock_record_and_snapshot_agree() {
        let w = WindowHistogram::new(60, None);
        w.record(42.0);
        let snap = w.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.quantile(0.5), 42.0);
    }
}
