//! Shared fixed log₁₀ bucket layout used by both the cumulative
//! [`Collector`](crate::Collector) histograms and the sliding-window
//! [`WindowHistogram`](crate::WindowHistogram).
//!
//! One bucket per power of ten between `1e-15` and `1e15`, plus an
//! underflow and an overflow bucket. Quantiles are estimated by geometric
//! interpolation inside the bucket holding the target rank, clamped to the
//! observed `[min, max]` — which makes single-valued histograms exact and
//! bounds the relative error of any estimate by one decade.

/// Number of fixed histogram buckets.
pub(crate) const BUCKETS: usize = 33;
pub(crate) const MIN_EXP: i32 = -16; // bucket 0 holds values <= 1e-15 (incl. <= 0)

pub(crate) fn bucket_index(value: f64) -> usize {
    if value.is_nan() || value <= 0.0 {
        return 0;
    }
    if value.is_infinite() {
        return BUCKETS - 1;
    }
    let exp = value.log10().floor() as i32;
    (exp - MIN_EXP).clamp(0, BUCKETS as i32 - 1) as usize
}

/// Upper bound (`le`) of bucket `i`, for export.
pub(crate) fn bucket_bound(i: usize) -> f64 {
    if i == BUCKETS - 1 {
        f64::INFINITY
    } else {
        10f64.powi(MIN_EXP + i as i32 + 1)
    }
}

/// Estimates the `q`-quantile from the fixed log₁₀ buckets by geometric
/// interpolation inside the bucket holding the target rank, clamped to the
/// observed `[min, max]` (which makes single-valued histograms exact).
pub(crate) fn estimate_quantile(
    buckets: &[u64; BUCKETS],
    count: u64,
    min: f64,
    max: f64,
    q: f64,
) -> f64 {
    if count == 0 {
        return f64::NAN;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let before = cum;
        cum += c;
        if cum >= rank {
            let lo = if i == 0 {
                min
            } else {
                bucket_bound(i - 1).max(min)
            };
            let hi = bucket_bound(i).min(max);
            if !lo.is_finite() || !hi.is_finite() || lo <= 0.0 || hi <= lo {
                return hi.clamp(min, max);
            }
            let frac = (rank - before) as f64 / c as f64;
            return (lo * (hi / lo).powf(frac)).clamp(min, max);
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_are_monotone_and_bounded() {
        let mut last = 0;
        for exp in -20..20 {
            let v = 10f64.powi(exp) * 3.0;
            let b = bucket_index(v);
            assert!(b >= last, "bucket index must be monotone in the value");
            assert!(b < BUCKETS);
            last = b;
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), BUCKETS - 1);
    }

    #[test]
    fn empty_histogram_quantiles_are_nan() {
        let buckets: [u64; BUCKETS] = [0; BUCKETS];
        assert!(estimate_quantile(&buckets, 0, f64::INFINITY, f64::NEG_INFINITY, 0.5).is_nan());
    }

    #[test]
    fn bounds_cover_the_bucket_of_their_index() {
        for i in 0..BUCKETS - 1 {
            let le = bucket_bound(i);
            assert_eq!(bucket_index(le * 0.99), i, "le {le} belongs to bucket {i}");
        }
        assert_eq!(bucket_bound(BUCKETS - 1), f64::INFINITY);
    }
}
