//! The in-memory [`Collector`] sink and its two exporters.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::{escape, fmt_f64};
use crate::{ArgValue, Sink, SpanRecord};

/// Number of fixed histogram buckets: one per power of ten between `1e-15`
/// and `1e15`, plus an underflow and an overflow bucket.
const BUCKETS: usize = 33;
const MIN_EXP: i32 = -16; // bucket 0 holds values <= 1e-15 (incl. <= 0)

fn bucket_index(value: f64) -> usize {
    if value.is_nan() || value <= 0.0 {
        return 0;
    }
    if value.is_infinite() {
        return BUCKETS - 1;
    }
    let exp = value.log10().floor() as i32;
    (exp - MIN_EXP).clamp(0, BUCKETS as i32 - 1) as usize
}

/// Upper bound (`le`) of bucket `i`, for export.
fn bucket_bound(i: usize) -> f64 {
    if i == BUCKETS - 1 {
        f64::INFINITY
    } else {
        10f64.powi(MIN_EXP + i as i32 + 1)
    }
}

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKETS],
        }
    }

    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }
}

/// Read-only view of one histogram, for tests and ad-hoc inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

/// A completed span with collector-relative timestamps (microseconds).
#[derive(Debug, Clone)]
pub struct FinishedSpan {
    /// Span name.
    pub name: String,
    /// Start, µs since the collector was created.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Per-thread index.
    pub tid: u64,
    /// Nesting depth on its thread (0 = root).
    pub depth: usize,
    /// Arguments recorded on the span.
    pub args: Vec<(String, ArgValue)>,
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: Vec<FinishedSpan>,
    warnings: Vec<String>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The standard [`Sink`](crate::Sink): thread-safe in-memory aggregation
/// with JSON exporters.
#[derive(Debug)]
pub struct Collector {
    epoch: Instant,
    state: Mutex<State>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// Creates an empty collector; its creation instant is the trace epoch.
    pub fn new() -> Self {
        Collector {
            epoch: Instant::now(),
            state: Mutex::new(State::default()),
        }
    }

    /// Creates a collector and installs it as the global sink.
    pub fn install() -> Arc<Self> {
        let collector = Arc::new(Collector::new());
        crate::set_sink(collector.clone());
        collector
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A panic while holding the short critical section below cannot
        // leave the aggregates torn; keep collecting.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current value of counter `name`.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.lock().counters.get(name).copied()
    }

    /// Current value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Aggregate view of histogram `name`.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        self.lock().histograms.get(name).map(|h| HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
        })
    }

    /// All completed spans, in completion order.
    pub fn spans(&self) -> Vec<FinishedSpan> {
        self.lock().spans.clone()
    }

    /// All recorded warnings, in order.
    pub fn warnings(&self) -> Vec<String> {
        self.lock().warnings.clone()
    }

    fn us_since_epoch(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.epoch)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    }

    /// Renders the structured run report (`gsu-telemetry-v1` schema):
    /// counters, gauges, histogram aggregates with fixed log₁₀ buckets,
    /// per-span-name aggregates, and warnings.
    pub fn run_report_json(&self) -> String {
        let state = self.lock();
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"gsu-telemetry-v1\"");

        out.push_str(",\"counters\":{");
        for (i, (name, v)) in state.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(name), v));
        }
        out.push('}');

        out.push_str(",\"gauges\":{");
        for (i, (name, v)) in state.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(name), fmt_f64(*v)));
        }
        out.push('}');

        out.push_str(",\"histograms\":{");
        for (i, (name, h)) in state.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mean = if h.count > 0 {
                h.sum / h.count as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"buckets\":[",
                escape(name),
                h.count,
                fmt_f64(h.sum),
                fmt_f64(h.min),
                fmt_f64(h.max),
                fmt_f64(mean)
            ));
            let mut first = true;
            for (b, &count) in h.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"le\":{},\"count\":{}}}",
                    fmt_f64(bucket_bound(b)),
                    count
                ));
            }
            out.push_str("]}");
        }
        out.push('}');

        // Per-name span aggregates (full event list lives in the trace).
        let mut span_stats: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        for s in &state.spans {
            let e = span_stats.entry(&s.name).or_insert((0, 0, 0));
            e.0 += 1;
            e.1 += s.dur_us;
            e.2 = e.2.max(s.dur_us);
        }
        out.push_str(",\"spans\":{");
        for (i, (name, (count, total, max))) in span_stats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{count},\"total_us\":{total},\"max_us\":{max}}}",
                escape(name)
            ));
        }
        out.push('}');

        out.push_str(",\"warnings\":[");
        for (i, w) in state.warnings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", escape(w)));
        }
        out.push_str("]}");
        out
    }

    /// Renders the Chrome `trace_event` document (`{"traceEvents": [...]}`,
    /// complete "X" events) loadable in Perfetto or `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        let state = self.lock();
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[");
        for (i, s) in state.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"gsu\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{}",
                escape(&s.name),
                s.start_us,
                s.dur_us,
                s.tid
            ));
            if !s.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in s.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\":", escape(k)));
                    match v {
                        ArgValue::F64(x) => out.push_str(&fmt_f64(*x)),
                        ArgValue::U64(x) => out.push_str(&x.to_string()),
                        ArgValue::Str(x) => out.push_str(&format!("\"{}\"", escape(x))),
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Writes [`Collector::run_report_json`] to `path`, creating parent
    /// directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_run_report(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.run_report_json())
    }

    /// Writes [`Collector::chrome_trace_json`] to `path`, creating parent
    /// directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.chrome_trace_json())
    }
}

impl Sink for Collector {
    fn counter_add(&self, name: &str, delta: u64) {
        *self.lock().counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn gauge_set(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    fn record_span(&self, span: SpanRecord) {
        let start_us = self.us_since_epoch(span.start);
        let end_us = self.us_since_epoch(span.end);
        let finished = FinishedSpan {
            name: span.name,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            tid: span.tid,
            depth: span.depth,
            args: span.args,
        };
        self.lock().spans.push(finished);
    }

    fn warning(&self, message: &str) {
        self.lock().warnings.push(message.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_are_monotone_and_bounded() {
        let mut last = 0;
        for exp in -20..20 {
            let v = 10f64.powi(exp) * 3.0;
            let b = bucket_index(v);
            assert!(b >= last, "bucket index must be monotone in the value");
            assert!(b < BUCKETS);
            last = b;
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), BUCKETS - 1);
    }

    #[test]
    fn empty_collector_exports_valid_skeletons() {
        let c = Collector::new();
        let report = c.run_report_json();
        assert!(report.starts_with("{\"schema\":\"gsu-telemetry-v1\""));
        assert!(report.contains("\"counters\":{}"));
        assert!(report.ends_with("\"warnings\":[]}"));
        assert_eq!(
            c.chrome_trace_json(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }

    #[test]
    fn escaping_reaches_exports() {
        let c = Collector::new();
        c.counter_add("weird\"name\\", 1);
        c.warning("line\nbreak");
        let report = c.run_report_json();
        assert!(report.contains("weird\\\"name\\\\"));
        assert!(report.contains("line\\nbreak"));
    }
}
