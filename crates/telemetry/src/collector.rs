//! The in-memory [`Collector`] sink, its concurrent [`Snapshot`], and the
//! JSON / Prometheus exporters.
//!
//! Metric state is split per kind so that emission stays cheap and a
//! snapshot never stalls the emitting threads:
//!
//! * counters, gauges, and histograms live in registries of shared atomics
//!   behind an `RwLock`ed name map — emitters take the **read** lock (writers
//!   only appear the first time a name is seen) and then update plain
//!   atomics, so concurrent emitters never contend with each other or with a
//!   concurrent [`Collector::snapshot`];
//! * spans and warnings are event lists behind a short `Mutex` critical
//!   section (a `Vec` push).
//!
//! A snapshot is therefore *consistent per metric* (every counter value is a
//! real value the counter held) but not a cross-metric atomic cut — fine for
//! a live `/metrics` endpoint, documented here so nobody builds invariants
//! across metrics.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::buckets::{bucket_bound, bucket_index, estimate_quantile, BUCKETS};
use crate::json::{escape, fmt_f64};
use crate::{ArgValue, Sink, SpanRecord};

/// An `f64` stored as bits in an `AtomicU64` (std has no `AtomicF64`).
#[derive(Debug)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn store(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically replaces the value with `f(value)` via a CAS loop.
    fn update(&self, f: impl Fn(f64) -> f64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some(f(f64::from_bits(bits)).to_bits())
            });
    }
}

/// One histogram, updated with atomics only — observers never block each
/// other or a concurrent snapshot.
#[derive(Debug)]
struct AtomicHistogram {
    sum: AtomicF64,
    min: AtomicF64,
    max: AtomicF64,
    buckets: [AtomicU64; BUCKETS],
    // Last observation made under a live trace, as (value, trace id). Two
    // independent relaxed atomics: a racing pair may mix value and trace id
    // from different observations, which is acceptable for an advisory
    // exemplar and keeps the hot path lock-free.
    exemplar_value: AtomicF64,
    exemplar_trace: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            sum: AtomicF64::new(0.0),
            min: AtomicF64::new(f64::INFINITY),
            max: AtomicF64::new(f64::NEG_INFINITY),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplar_value: AtomicF64::new(0.0),
            exemplar_trace: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: f64) {
        self.sum.update(|s| s + value);
        self.min.update(|m| m.min(value));
        self.max.update(|m| m.max(value));
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        let trace_id = crate::TraceContext::current().trace_id;
        if trace_id != 0 {
            self.exemplar_value.store(value);
            self.exemplar_trace.store(trace_id, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        // Copy the bucket array first and derive the count from it, so the
        // snapshot is internally consistent even while observers run.
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let count: u64 = buckets.iter().sum();
        let sum = self.sum.load();
        let min = self.min.load();
        let max = self.max.load();
        let mean = if count > 0 { sum / count as f64 } else { 0.0 };
        HistogramSnapshot {
            count,
            sum,
            min,
            max,
            mean,
            p50: estimate_quantile(&buckets, count, min, max, 0.50),
            p95: estimate_quantile(&buckets, count, min, max, 0.95),
            p99: estimate_quantile(&buckets, count, min, max, 0.99),
            exemplar: match self.exemplar_trace.load(Ordering::Relaxed) {
                0 => None,
                trace_id => Some((trace_id, self.exemplar_value.load())),
            },
            buckets: buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (bucket_bound(i), c))
                .collect(),
        }
    }
}

/// A name → shared-atomic registry. Emitters take the read lock (shared with
/// snapshots and each other); the write lock is only taken the first time a
/// name appears.
#[derive(Debug)]
struct Registry<T>(RwLock<BTreeMap<String, Arc<T>>>);

impl<T> Registry<T> {
    fn new() -> Self {
        Registry(RwLock::new(BTreeMap::new()))
    }

    fn get(&self, name: &str) -> Option<Arc<T>> {
        self.0
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> T) -> Arc<T> {
        if let Some(existing) = self.get(name) {
            return existing;
        }
        self.0
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(make()))
            .clone()
    }

    fn entries(&self) -> Vec<(String, Arc<T>)> {
        self.0
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

/// Read-only view of one histogram: aggregates, log₁₀-bucket estimated
/// quantiles, and the non-empty buckets themselves (as `(le, count)` pairs
/// with per-bucket, non-cumulative counts).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Last observation made under a live trace, as `(trace_id, value)` —
    /// the exemplar that links the histogram back to a concrete request.
    pub exemplar: Option<(u64, f64)>,
    /// Non-empty buckets as `(upper bound, count)`, ascending.
    pub buckets: Vec<(f64, u64)>,
}

/// Per-name span aggregates, with **exact** duration quantiles (computed
/// from the full recorded span list, not from buckets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total time spent in these spans, µs.
    pub total_us: u64,
    /// Longest single span, µs.
    pub max_us: u64,
    /// Median span duration, µs.
    pub p50_us: u64,
    /// 95th-percentile span duration, µs.
    pub p95_us: u64,
    /// 99th-percentile span duration, µs.
    pub p99_us: u64,
}

/// A point-in-time view of everything a [`Collector`] has aggregated.
///
/// Taken with [`Collector::snapshot`] — safe to call at any time, including
/// while other threads are emitting. All exporters ([`run
/// report`](Snapshot::run_report_json) and
/// [Prometheus](Snapshot::prometheus_text)) render from the same snapshot,
/// so their values agree by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram views, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Per-span-name aggregates, sorted by name.
    pub spans: Vec<(String, SpanStats)>,
    /// Total span records collected.
    pub span_records: u64,
    /// Number of distinct trace ids among the collected spans.
    pub trace_count: u64,
    /// Warnings, in emission order.
    pub warnings: Vec<String>,
}

/// A completed span with collector-relative timestamps (microseconds).
#[derive(Debug, Clone)]
pub struct FinishedSpan {
    /// Span name.
    pub name: String,
    /// Start, µs since the collector was created.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Per-thread index.
    pub tid: u64,
    /// Nesting depth on its thread (0 = root).
    pub depth: usize,
    /// Trace id shared by every span in the same request/run tree.
    pub trace_id: u64,
    /// Unique id of this span.
    pub span_id: u64,
    /// Span id of the enclosing span, or 0 for a trace root.
    pub parent_id: u64,
    /// Arguments recorded on the span.
    pub args: Vec<(String, ArgValue)>,
}

#[derive(Debug, Default)]
struct Events {
    spans: Vec<FinishedSpan>,
    warnings: Vec<String>,
}

/// The standard [`Sink`](crate::Sink): thread-safe in-memory aggregation
/// with concurrent snapshots and JSON / Prometheus exporters.
#[derive(Debug)]
pub struct Collector {
    epoch: Instant,
    counters: Registry<AtomicU64>,
    gauges: Registry<AtomicF64>,
    histograms: Registry<AtomicHistogram>,
    events: Mutex<Events>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// Creates an empty collector; its creation instant is the trace epoch.
    pub fn new() -> Self {
        Collector {
            epoch: Instant::now(),
            counters: Registry::new(),
            gauges: Registry::new(),
            histograms: Registry::new(),
            events: Mutex::new(Events::default()),
        }
    }

    /// Creates a collector and installs it as the global sink.
    pub fn install() -> Arc<Self> {
        let collector = Arc::new(Collector::new());
        crate::set_sink(collector.clone());
        collector
    }

    fn lock_events(&self) -> std::sync::MutexGuard<'_, Events> {
        // A panic while holding the short critical section below cannot
        // leave the aggregates torn; keep collecting.
        self.events.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current value of counter `name`.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.get(name).map(|c| c.load(Ordering::Relaxed))
    }

    /// Current value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(|g| g.load())
    }

    /// Aggregate view of histogram `name`.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        self.histograms.get(name).map(|h| h.snapshot())
    }

    /// All completed spans, in completion order.
    pub fn spans(&self) -> Vec<FinishedSpan> {
        self.lock_events().spans.clone()
    }

    /// All recorded warnings, in order.
    pub fn warnings(&self) -> Vec<String> {
        self.lock_events().warnings.clone()
    }

    /// Takes a point-in-time [`Snapshot`] of every aggregate.
    ///
    /// Callable concurrently with emitting threads: metric registries are
    /// read under shared locks and the values are plain atomic loads, so a
    /// snapshot never blocks (or is blocked by) emission — this is what lets
    /// `gsu-serve` answer `/metrics` in the middle of a φ-sweep.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .entries()
            .into_iter()
            .map(|(name, c)| (name, c.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .entries()
            .into_iter()
            .map(|(name, g)| (name, g.load()))
            .collect();
        let histograms = self
            .histograms
            .entries()
            .into_iter()
            .map(|(name, h)| (name, h.snapshot()))
            .collect();
        let (spans, warnings) = {
            let events = self.lock_events();
            (events.spans.clone(), events.warnings.clone())
        };
        let span_records = spans.len() as u64;
        let trace_count = {
            let mut ids: Vec<u64> = spans.iter().map(|s| s.trace_id).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len() as u64
        };
        let mut durations: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for s in &spans {
            durations.entry(s.name.clone()).or_default().push(s.dur_us);
        }
        let span_stats = durations
            .into_iter()
            .map(|(name, mut durs)| {
                durs.sort_unstable();
                let stats = SpanStats {
                    count: durs.len() as u64,
                    total_us: durs.iter().sum(),
                    max_us: durs.last().copied().unwrap_or_default(),
                    p50_us: exact_quantile_us(&durs, 0.50),
                    p95_us: exact_quantile_us(&durs, 0.95),
                    p99_us: exact_quantile_us(&durs, 0.99),
                };
                (name, stats)
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            spans: span_stats,
            span_records,
            trace_count,
            warnings,
        }
    }

    /// Every span belonging to trace `trace_id`, in completion order. The
    /// parent links (`parent_id`) reconstruct the request's span tree
    /// exactly; an empty result means the trace is unknown (or recorded
    /// nothing).
    pub fn trace_spans(&self, trace_id: u64) -> Vec<FinishedSpan> {
        self.lock_events()
            .spans
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .cloned()
            .collect()
    }

    fn us_since_epoch(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.epoch)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    }

    /// Renders the structured run report (`gsu-telemetry-v2` schema); see
    /// [`Snapshot::run_report_json`].
    pub fn run_report_json(&self) -> String {
        self.snapshot().run_report_json()
    }

    /// Renders the Chrome `trace_event` document (`{"traceEvents": [...]}`,
    /// complete "X" events) loadable in Perfetto or `chrome://tracing`.
    /// Every event's `args` carries `trace_id` (hex), `span_id`, and
    /// `parent_id`, so the span tree survives the export (and `gsu-bench
    /// profile` rebuilds it from exactly these fields).
    pub fn chrome_trace_json(&self) -> String {
        self.render_chrome_trace(None)
    }

    /// Like [`Collector::chrome_trace_json`] but restricted to the spans of
    /// one trace — the document behind `gsu-serve /trace?id=`.
    pub fn chrome_trace_json_for(&self, trace_id: u64) -> String {
        self.render_chrome_trace(Some(trace_id))
    }

    fn render_chrome_trace(&self, only_trace: Option<u64>) -> String {
        let events = self.lock_events();
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for s in &events.spans {
            if only_trace.is_some_and(|t| s.trace_id != t) {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"gsu\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{}",
                escape(&s.name),
                s.start_us,
                s.dur_us,
                s.tid
            ));
            out.push_str(&format!(
                ",\"args\":{{\"trace_id\":\"{:016x}\",\"span_id\":{},\"parent_id\":{}",
                s.trace_id, s.span_id, s.parent_id
            ));
            for (k, v) in &s.args {
                out.push_str(&format!(",\"{}\":", escape(k)));
                match v {
                    ArgValue::F64(x) => out.push_str(&fmt_f64(*x)),
                    ArgValue::U64(x) => out.push_str(&x.to_string()),
                    ArgValue::Str(x) => out.push_str(&format!("\"{}\"", escape(x))),
                }
            }
            out.push_str("}}");
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Writes [`Collector::run_report_json`] to `path`, creating parent
    /// directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_run_report(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.run_report_json())
    }

    /// Writes [`Collector::chrome_trace_json`] to `path`, creating parent
    /// directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.chrome_trace_json())
    }
}

/// Exact quantile over an ascending-sorted duration list (nearest-rank).
fn exact_quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl Snapshot {
    /// Renders the structured run report (`gsu-telemetry-v3` schema):
    /// counters, gauges, histogram aggregates with p50/p95/p99 and fixed
    /// log₁₀ buckets, per-span-name aggregates with exact duration
    /// quantiles, trace totals, and warnings. (v3 over v2: spans carry
    /// trace/span/parent ids end to end, surfaced here as the `traces`
    /// object and in the Chrome trace export's `args`.)
    pub fn run_report_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"gsu-telemetry-v3\"");
        out.push_str(&format!(
            ",\"traces\":{{\"count\":{},\"span_records\":{}}}",
            self.trace_count, self.span_records
        ));

        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(name), v));
        }
        out.push('}');

        out.push_str(",\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(name), fmt_f64(*v)));
        }
        out.push('}');

        out.push_str(",\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
                 \"p50\":{},\"p95\":{},\"p99\":{}",
                escape(name),
                h.count,
                fmt_f64(h.sum),
                fmt_f64(h.min),
                fmt_f64(h.max),
                fmt_f64(h.mean),
                fmt_f64(h.p50),
                fmt_f64(h.p95),
                fmt_f64(h.p99),
            ));
            if let Some((trace_id, value)) = h.exemplar {
                out.push_str(&format!(
                    ",\"exemplar\":{{\"trace_id\":\"{:016x}\",\"value\":{}}}",
                    trace_id,
                    fmt_f64(value)
                ));
            }
            out.push_str(",\"buckets\":[");
            for (b, (le, count)) in h.buckets.iter().enumerate() {
                if b > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"le\":{},\"count\":{}}}", fmt_f64(*le), count));
            }
            out.push_str("]}");
        }
        out.push('}');

        out.push_str(",\"spans\":{");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"total_us\":{},\"max_us\":{},\
                 \"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
                escape(name),
                s.count,
                s.total_us,
                s.max_us,
                s.p50_us,
                s.p95_us,
                s.p99_us
            ));
        }
        out.push('}');

        out.push_str(",\"warnings\":[");
        for (i, w) in self.warnings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", escape(w)));
        }
        out.push_str("]}");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4); see [`crate::prometheus`] for the mapping.
    pub fn prometheus_text(&self) -> String {
        crate::prometheus::render(self)
    }
}

impl Sink for Collector {
    fn counter_add(&self, name: &str, delta: u64) {
        self.counters
            .get_or_insert(name, || AtomicU64::new(0))
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge_set(&self, name: &str, value: f64) {
        self.gauges
            .get_or_insert(name, || AtomicF64::new(value))
            .store(value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.histograms
            .get_or_insert(name, AtomicHistogram::new)
            .observe(value);
    }

    fn record_span(&self, span: SpanRecord) {
        let start_us = self.us_since_epoch(span.start);
        let end_us = self.us_since_epoch(span.end);
        let finished = FinishedSpan {
            name: span.name,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            tid: span.tid,
            depth: span.depth,
            trace_id: span.trace_id,
            span_id: span.span_id,
            parent_id: span.parent_id,
            args: span.args,
        };
        self.lock_events().spans.push(finished);
    }

    fn warning(&self, message: &str) {
        self.lock_events().warnings.push(message.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_collector_exports_valid_skeletons() {
        let c = Collector::new();
        let report = c.run_report_json();
        assert!(report.starts_with("{\"schema\":\"gsu-telemetry-v3\""));
        assert!(report.contains("\"traces\":{\"count\":0,\"span_records\":0}"));
        assert!(report.contains("\"counters\":{}"));
        assert!(report.ends_with("\"warnings\":[]}"));
        assert_eq!(
            c.chrome_trace_json(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
        let snap = c.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.prometheus_text().is_empty());
    }

    #[test]
    fn escaping_reaches_exports() {
        let c = Collector::new();
        c.counter_add("weird\"name\\", 1);
        c.warning("line\nbreak");
        let report = c.run_report_json();
        assert!(report.contains("weird\\\"name\\\\"));
        assert!(report.contains("line\\nbreak"));
    }

    #[test]
    fn quantiles_exact_for_single_valued_histograms() {
        let c = Collector::new();
        for _ in 0..6 {
            c.observe("h", 16471.0);
        }
        let h = c.histogram_snapshot("h").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.p50, 16471.0);
        assert_eq!(h.p95, 16471.0);
        assert_eq!(h.p99, 16471.0);
        assert_eq!(h.buckets, vec![(1e5, 6)]);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let c = Collector::new();
        for i in 1..=1000 {
            c.observe("h", i as f64);
        }
        let h = c.histogram_snapshot("h").unwrap();
        assert!(h.min <= h.p50 && h.p50 <= h.p95);
        assert!(h.p95 <= h.p99 && h.p99 <= h.max);
        // The median of 1..=1000 lives in the (100, 1000] bucket; the
        // log-interpolated estimate must land inside it.
        assert!(h.p50 > 100.0 && h.p50 <= 1000.0, "p50 = {}", h.p50);
    }

    #[test]
    fn span_stats_quantiles_are_exact() {
        let durs: Vec<u64> = (1..=100).collect();
        assert_eq!(exact_quantile_us(&durs, 0.50), 50);
        assert_eq!(exact_quantile_us(&durs, 0.95), 95);
        assert_eq!(exact_quantile_us(&durs, 0.99), 99);
        assert_eq!(exact_quantile_us(&[42], 0.5), 42);
        assert_eq!(exact_quantile_us(&[], 0.5), 0);
    }

    #[test]
    fn trace_spans_filter_and_chrome_export_carry_ids() {
        let c = Collector::new();
        let now = Instant::now();
        let mk = |name: &str, trace_id: u64, span_id: u64, parent_id: u64| SpanRecord {
            name: name.to_string(),
            start: now,
            end: now,
            tid: 1,
            depth: 0,
            trace_id,
            span_id,
            parent_id,
            args: Vec::new(),
        };
        c.record_span(mk("a.root", 7, 10, 0));
        c.record_span(mk("a.child", 7, 11, 10));
        c.record_span(mk("b.root", 8, 12, 0));
        let spans = c.trace_spans(7);
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.trace_id == 7));
        assert_eq!(
            spans
                .iter()
                .find(|s| s.name == "a.child")
                .unwrap()
                .parent_id,
            10
        );
        assert!(c.trace_spans(99).is_empty());

        let doc = c.chrome_trace_json_for(7);
        assert!(doc.contains("\"a.root\"") && doc.contains("\"a.child\""));
        assert!(!doc.contains("\"b.root\""));
        assert!(doc.contains("\"trace_id\":\"0000000000000007\""));
        assert!(doc.contains("\"span_id\":11,\"parent_id\":10"));
        // The unfiltered export still carries everything.
        assert!(c.chrome_trace_json().contains("\"b.root\""));

        let snap = c.snapshot();
        assert_eq!(snap.span_records, 3);
        assert_eq!(snap.trace_count, 2);
        assert!(snap
            .run_report_json()
            .contains("\"traces\":{\"count\":2,\"span_records\":3}"));
    }

    #[test]
    fn snapshot_sees_live_values() {
        let c = Collector::new();
        c.counter_add("a", 2);
        c.gauge_set("g", 1.5);
        c.observe("h", 3.0);
        c.warning("w");
        let snap = c.snapshot();
        assert_eq!(snap.counters, vec![("a".to_string(), 2)]);
        assert_eq!(snap.gauges, vec![("g".to_string(), 1.5)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
        assert_eq!(snap.warnings, vec!["w".to_string()]);
        // Report and exposition render from the same data.
        assert!(snap.run_report_json().contains("\"a\":2"));
        assert!(snap.prometheus_text().contains("gsu_a 2"));
    }
}
