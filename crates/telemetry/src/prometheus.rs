//! Prometheus text-exposition rendering (format version 0.0.4) of a
//! [`Snapshot`](crate::Snapshot).
//!
//! Mapping:
//!
//! * every metric name is prefixed `gsu_` and sanitised (characters outside
//!   `[a-zA-Z0-9_:]` become `_`, so `solver.iterations` exports as
//!   `gsu_solver_iterations`);
//! * counters and gauges export as single samples of the matching type;
//! * histograms export as native Prometheus histograms — cumulative
//!   `_bucket{le="…"}` samples (ending in `le="+Inf"`), `_sum`, and
//!   `_count` — plus `_alltime_p50` / `_alltime_p95` / `_alltime_p99`
//!   gauges carrying the same bucket-estimated quantiles the JSON run
//!   report publishes, so the two surfaces agree by construction (the
//!   `_alltime` marker distinguishes these cumulative since-process-start
//!   quantiles from the recent-window families rendered by `gsu-serve`);
//! * span aggregates export as `gsu_span_*{span="<name>"}` families.
//!
//! Warnings have no numeric representation and stay in the JSON report.

use std::fmt::Write as _;

use crate::collector::Snapshot;

/// Renders `snapshot` as a Prometheus text exposition.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);

    // Counters named `http.responses.<status>` fold into one labelled
    // family, the conventional HTTP status breakdown.
    let mut http_statuses: Vec<(&str, u64)> = Vec::new();
    for (name, value) in &snapshot.counters {
        if let Some(status) = name.strip_prefix("http.responses.") {
            http_statuses.push((status, *value));
            continue;
        }
        let metric = sanitize(name);
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    if !http_statuses.is_empty() {
        let _ = writeln!(out, "# TYPE gsu_http_responses_total counter");
        for (status, value) in http_statuses {
            let _ = writeln!(
                out,
                "gsu_http_responses_total{{status=\"{}\"}} {value}",
                escape_label(status)
            );
        }
    }

    for (name, value) in &snapshot.gauges {
        let metric = sanitize(name);
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {}", fmt_value(*value));
    }

    for (name, h) in &snapshot.histograms {
        let metric = sanitize(name);
        let _ = writeln!(out, "# TYPE {metric} histogram");
        let mut cum = 0u64;
        for (le, count) in &h.buckets {
            cum += count;
            let _ = writeln!(out, "{metric}_bucket{{le=\"{}\"}} {cum}", fmt_value(*le));
        }
        let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{metric}_sum {}", fmt_value(h.sum));
        let _ = writeln!(out, "{metric}_count {}", h.count);
        // Exemplar as a comment line: the classic 0.0.4 text format has no
        // exemplar syntax, and comments keep every parser of this
        // exposition (including our own validator) happy.
        if let Some((trace_id, value)) = h.exemplar {
            let _ = writeln!(
                out,
                "# EXEMPLAR {metric} trace_id=\"{trace_id:016x}\" value={}",
                fmt_value(value)
            );
        }
        // Quantiles from the cumulative (since process start) buckets carry
        // an explicit `_alltime` marker so dashboards cannot mistake them
        // for the recent-window families the serving layer exposes.
        for (suffix, q) in [("p50", h.p50), ("p95", h.p95), ("p99", h.p99)] {
            let _ = writeln!(out, "# TYPE {metric}_alltime_{suffix} gauge");
            let _ = writeln!(out, "{metric}_alltime_{suffix} {}", fmt_value(q));
        }
    }

    if !snapshot.spans.is_empty() {
        for (family, kind) in [
            ("gsu_span_count", "counter"),
            ("gsu_span_total_us", "counter"),
            ("gsu_span_max_us", "gauge"),
            ("gsu_span_p50_us", "gauge"),
            ("gsu_span_p95_us", "gauge"),
            ("gsu_span_p99_us", "gauge"),
        ] {
            let _ = writeln!(out, "# TYPE {family} {kind}");
            for (name, s) in &snapshot.spans {
                let value = match family {
                    "gsu_span_count" => s.count,
                    "gsu_span_total_us" => s.total_us,
                    "gsu_span_max_us" => s.max_us,
                    "gsu_span_p50_us" => s.p50_us,
                    "gsu_span_p95_us" => s.p95_us,
                    _ => s.p99_us,
                };
                let _ = writeln!(out, "{family}{{span=\"{}\"}} {value}", escape_label(name));
            }
        }
    }

    out
}

/// Prefixes `gsu_` and maps characters outside the Prometheus metric-name
/// alphabet to `_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("gsu_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value (backslash, double quote, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a sample value; Prometheus spells non-finite values `NaN`,
/// `+Inf`, and `-Inf`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::Sink as _;

    #[test]
    fn sanitize_prefixes_and_replaces() {
        assert_eq!(sanitize("solver.iterations"), "gsu_solver_iterations");
        assert_eq!(sanitize("a-b c"), "gsu_a_b_c");
        assert_eq!(sanitize("ok_name:x9"), "gsu_ok_name:x9");
    }

    #[test]
    fn values_use_prometheus_spellings() {
        assert_eq!(fmt_value(1.5), "1.5");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let c = Collector::new();
        for v in [0.5, 5.0, 50.0, 50.0] {
            c.observe("h", v);
        }
        let text = c.snapshot().prometheus_text();
        let bucket_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("gsu_h_bucket"))
            .collect();
        let last = bucket_lines.last().unwrap();
        assert!(last.contains("le=\"+Inf\""), "last bucket must be +Inf");
        assert!(last.ends_with(" 4"), "+Inf bucket carries the total count");
        // Cumulative counts never decrease.
        let counts: Vec<u64> = bucket_lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert!(text.contains("gsu_h_sum 105.5"));
        assert!(text.contains("gsu_h_count 4"));
        assert!(text.contains("gsu_h_alltime_p50 "));
        assert!(
            !text.contains("gsu_h_p50 "),
            "cumulative quantiles must carry the _alltime marker: {text}"
        );
    }

    #[test]
    fn span_families_carry_labels() {
        let c = Collector::new();
        c.record_span(crate::SpanRecord {
            name: "performability.evaluate".into(),
            start: std::time::Instant::now(),
            end: std::time::Instant::now(),
            tid: 1,
            depth: 0,
            trace_id: 1,
            span_id: 1,
            parent_id: 0,
            args: Vec::new(),
        });
        let text = c.snapshot().prometheus_text();
        assert!(text.contains("gsu_span_count{span=\"performability.evaluate\"} 1"));
        assert!(text.contains("# TYPE gsu_span_p99_us gauge"));
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn http_response_counters_fold_into_a_labelled_family() {
        let c = Collector::new();
        c.counter_add("http.responses.200", 7);
        c.counter_add("http.responses.400", 2);
        c.counter_add("serve.requests", 9);
        let text = c.snapshot().prometheus_text();
        assert!(text.contains("# TYPE gsu_http_responses_total counter"));
        assert!(text.contains("gsu_http_responses_total{status=\"200\"} 7"));
        assert!(text.contains("gsu_http_responses_total{status=\"400\"} 2"));
        assert!(
            !text.contains("gsu_http_responses_200"),
            "per-status counters must not also render flat: {text}"
        );
        assert!(text.contains("gsu_serve_requests 9"));
    }

    #[test]
    fn exemplars_render_as_comment_lines() {
        let c = Collector::new();
        let ctx = crate::TraceContext::new_root();
        {
            // The observation happens under a live trace context, so the
            // histogram captures (value, trace id) as its exemplar.
            let _attached = ctx.attach();
            c.observe("serve.request_us", 123.0);
        }
        let text = c.snapshot().prometheus_text();
        let needle = format!(
            "# EXEMPLAR gsu_serve_request_us trace_id=\"{}\" value=123",
            ctx.trace_id_hex()
        );
        assert!(text.contains(&needle), "missing exemplar line in {text}");
    }
}
