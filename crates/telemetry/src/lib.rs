//! Workspace-wide telemetry: hierarchical spans, monotonic counters, gauges,
//! and fixed-bucket histograms behind a pluggable global sink.
//!
//! Every layer of the analysis pipeline (sparse solvers, transient engines,
//! reachability generation, the `GsuAnalysis` φ-sweep, the simulator) emits
//! events through the free functions in this crate. When no sink is
//! installed — the default — every emission is a single relaxed atomic load
//! and nothing else, so instrumented code costs effectively nothing in
//! production paths. Installing a [`Collector`] turns the same calls into
//! in-memory aggregation that can be exported two ways:
//!
//! * [`Collector::run_report_json`] — a structured run report
//!   (`results/telemetry.json` in the bench harness), and
//! * [`Collector::chrome_trace_json`] — a Chrome `trace_event` document
//!   loadable in Perfetto / `chrome://tracing`, with spans nested per
//!   thread.
//!
//! Dependency policy: this crate is **pure `std`** (`Instant`, atomics, a
//! `Mutex`-guarded sink, hand-rolled JSON). The crates.io registry is
//! unreachable in some build environments this workspace targets, and the
//! telemetry layer sits below every other crate, so it must not pull in
//! anything.
//!
//! # Example
//!
//! ```
//! let collector = telemetry::Collector::install();
//! {
//!     let mut span = telemetry::span("solve");
//!     telemetry::counter("solver.iterations", 42);
//!     span.record("residual", 1e-13);
//! }
//! assert_eq!(collector.counter_value("solver.iterations"), Some(42));
//! assert!(collector.chrome_trace_json().contains("\"solve\""));
//! telemetry::clear_sink();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buckets;
mod collector;
mod diag;
mod json;
mod log;
pub mod prometheus;
pub mod window;
pub mod work;

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub use collector::{Collector, FinishedSpan, HistogramSnapshot, Snapshot, SpanStats};
pub use diag::SolveDiag;
pub use log::{
    init_log_from_env, log_enabled, log_event, log_level, set_log_level, set_log_writer,
    take_log_writer, Level,
};
pub use window::{WindowHistogram, WindowSnapshot, DEFAULT_WINDOW_SECS};

/// A value attached to a span as an argument.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Floating-point argument.
    F64(f64),
    /// Integer argument.
    U64(u64),
    /// String argument.
    Str(String),
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// A completed span as handed to the sink.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name.
    pub name: String,
    /// Start instant.
    pub start: Instant,
    /// End instant.
    pub end: Instant,
    /// Small per-thread index (dense, assigned on first span per thread).
    pub tid: u64,
    /// Nesting depth on its thread at the time the span opened (0 = root).
    pub depth: usize,
    /// Trace id shared by every span in the same request/run tree.
    pub trace_id: u64,
    /// Unique id of this span (process-global, never reused).
    pub span_id: u64,
    /// Span id of the enclosing span, or 0 for a trace root.
    pub parent_id: u64,
    /// Arguments recorded on the span.
    pub args: Vec<(String, ArgValue)>,
}

/// Destination for telemetry events. Implementations must be cheap and
/// non-blocking enough to sit on solver hot paths.
pub trait Sink: Send + Sync {
    /// Adds `delta` to the monotonic counter `name`.
    fn counter_add(&self, name: &str, delta: u64);
    /// Sets the gauge `name` to `value` (last write wins).
    fn gauge_set(&self, name: &str, value: f64);
    /// Records one observation of `value` into the histogram `name`.
    fn observe(&self, name: &str, value: f64);
    /// Records a completed span.
    fn record_span(&self, span: SpanRecord);
    /// Records a warning message.
    fn warning(&self, message: &str);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Arc<dyn Sink>>> = Mutex::new(None);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    static TID: Cell<u64> = const { Cell::new(0) };
    static CONTEXT: Cell<TraceContext> = const {
        Cell::new(TraceContext { trace_id: 0, span_id: 0 })
    };
}

/// Identity of the active trace on the calling thread: the trace id shared
/// by the whole request/run tree, and the span id of the innermost open
/// span (the parent of any span opened next).
///
/// Spans inherit the context automatically within a thread; across threads
/// the context must be carried explicitly — capture [`TraceContext::current`]
/// where work is submitted and [`TraceContext::attach`] it inside the
/// worker. `crates/pool` does exactly this for every spawned task, so spans
/// emitted by pool workers parent under the submitting span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id shared by every span in the tree; 0 means "no trace yet"
    /// (the next span opened mints a fresh trace).
    pub trace_id: u64,
    /// Span id of the innermost open span; 0 at a trace root.
    pub span_id: u64,
}

impl TraceContext {
    /// The context active on the calling thread.
    pub fn current() -> TraceContext {
        CONTEXT.with(Cell::get)
    }

    /// Mints a fresh root context: a new process-unique trace id with no
    /// parent span. The first span opened under it becomes the trace root.
    pub fn new_root() -> TraceContext {
        TraceContext {
            trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            span_id: 0,
        }
    }

    /// Installs `self` as the calling thread's context until the returned
    /// guard drops (which restores the previous context).
    pub fn attach(self) -> ContextGuard {
        ContextGuard {
            prev: CONTEXT.with(|c| c.replace(self)),
        }
    }

    /// The trace id as the fixed-width hex string used in HTTP responses,
    /// wide-event lines, and `/trace?id=`.
    pub fn trace_id_hex(&self) -> String {
        format_trace_id(self.trace_id)
    }
}

/// Formats a trace id as the canonical 16-digit hex string.
pub fn format_trace_id(trace_id: u64) -> String {
    format!("{trace_id:016x}")
}

/// Parses a hex trace id as produced by [`format_trace_id`]; returns `None`
/// for malformed input or the reserved id 0.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    match u64::from_str_radix(s, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

/// Restores the previously active [`TraceContext`] when dropped; see
/// [`TraceContext::attach`].
#[derive(Debug)]
pub struct ContextGuard {
    prev: TraceContext,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.set(self.prev));
    }
}

/// Whether a sink is installed. The fast path of every emission; callers
/// building expensive event payloads (formatted names, derived statistics)
/// should gate on this first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Locks the sink registry, recovering the guard when a previous holder
/// panicked: the registry only stores an `Option<Arc<dyn Sink>>`, so there is
/// no half-written state to protect and telemetry must never take the
/// process down.
fn lock_sink() -> std::sync::MutexGuard<'static, Option<Arc<dyn Sink>>> {
    SINK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs `sink` as the global telemetry destination, replacing any
/// previous one.
pub fn set_sink(sink: Arc<dyn Sink>) {
    *lock_sink() = Some(sink);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Removes the global sink, restoring the no-op default.
pub fn clear_sink() {
    ENABLED.store(false, Ordering::Relaxed);
    *lock_sink() = None;
}

fn with_sink(f: impl FnOnce(&dyn Sink)) {
    if !enabled() {
        return;
    }
    let sink = lock_sink().clone();
    if let Some(sink) = sink {
        f(sink.as_ref());
    }
}

/// Adds `delta` to the monotonic counter `name`.
#[inline]
pub fn counter(name: &str, delta: u64) {
    with_sink(|s| s.counter_add(name, delta));
}

/// Sets the gauge `name` to `value` (last write wins).
#[inline]
pub fn gauge(name: &str, value: f64) {
    with_sink(|s| s.gauge_set(name, value));
}

/// Records one observation of `value` into the histogram `name`.
#[inline]
pub fn observe(name: &str, value: f64) {
    with_sink(|s| s.observe(name, value));
}

/// Records a warning message (and, when `GSU_LOG` enables `warn`, emits a
/// structured log event alongside it).
#[inline]
pub fn warning(message: &str) {
    log_event(Level::Warn, "telemetry", message, &[]);
    with_sink(|s| s.warning(message));
}

fn current_tid() -> u64 {
    TID.with(|tid| {
        if tid.get() == 0 {
            tid.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        tid.get()
    })
}

/// Opens a span named `name`; the span closes (and is recorded) when the
/// returned guard drops. Nesting is tracked per thread — a span opened while
/// another is live on the same thread records a larger depth and renders
/// nested in the Chrome trace.
///
/// When no sink is installed (and `debug` logging is off) this returns an
/// inert guard at the cost of two atomic loads. With `GSU_LOG=debug` the
/// guard stays live even without a sink, so span durations still stream to
/// the structured log.
pub fn span(name: &str) -> SpanGuard {
    span_in(name, TraceContext::current())
}

/// Opens a span that starts a **fresh trace** regardless of the calling
/// thread's current context: a new trace id is minted and the span has no
/// parent. Request entry points (one trace per `/eval`) use this; nested
/// library code should use [`span`], which inherits the active trace.
pub fn root_span(name: &str) -> SpanGuard {
    span_in(name, TraceContext::new_root())
}

fn span_in(name: &str, ctx: TraceContext) -> SpanGuard {
    if !enabled() && !log_enabled(Level::Debug) {
        return SpanGuard { inner: None };
    }
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    let trace_id = if ctx.trace_id != 0 {
        ctx.trace_id
    } else {
        NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
    };
    let span_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let prev_context = CONTEXT.with(|c| c.replace(TraceContext { trace_id, span_id }));
    SpanGuard {
        inner: Some(SpanInner {
            name: name.to_string(),
            start: Instant::now(),
            tid: current_tid(),
            depth,
            trace_id,
            span_id,
            parent_id: ctx.span_id,
            prev_context,
            args: Vec::new(),
        }),
    }
}

struct SpanInner {
    name: String,
    start: Instant,
    tid: u64,
    depth: usize,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    prev_context: TraceContext,
    args: Vec<(String, ArgValue)>,
}

/// RAII guard for an open span; see [`span`].
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// Attaches an argument to the span (a no-op on an inert guard).
    pub fn record(&mut self, key: &str, value: impl Into<ArgValue>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.args.push((key.to_string(), value.into()));
        }
    }

    /// The context `{trace_id, span_id}` this span runs under, or `None` on
    /// an inert guard.
    pub fn context(&self) -> Option<TraceContext> {
        self.inner.as_ref().map(|inner| TraceContext {
            trace_id: inner.trace_id,
            span_id: inner.span_id,
        })
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            CONTEXT.with(|c| c.set(inner.prev_context));
            let end = Instant::now();
            if log_enabled(Level::Debug) {
                let dur_us = end.duration_since(inner.start).as_micros() as u64;
                log_event(
                    Level::Debug,
                    "telemetry.span",
                    &inner.name,
                    &[("dur_us", ArgValue::U64(dur_us))],
                );
            }
            with_sink(|s| {
                s.record_span(SpanRecord {
                    name: inner.name.clone(),
                    start: inner.start,
                    end,
                    tid: inner.tid,
                    depth: inner.depth,
                    trace_id: inner.trace_id,
                    span_id: inner.span_id,
                    parent_id: inner.parent_id,
                    args: inner.args.clone(),
                })
            });
        }
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => write!(f, "SpanGuard({:?}, depth {})", inner.name, inner.depth),
            None => write!(f, "SpanGuard(inert)"),
        }
    }
}

/// Installs a fresh [`Collector`] when the environment variable `var` is set
/// to `1` (the convention used by the bench harness via `GSU_TELEMETRY=1`);
/// returns the collector so the caller can export it at the end of the run.
pub fn init_from_env(var: &str) -> Option<Arc<Collector>> {
    match std::env::var(var) {
        Ok(v) if v == "1" => Some(Collector::install()),
        _ => None,
    }
}

/// Reads a `usize` configuration knob from the environment variable `var`,
/// falling back to `default` when unset or unparsable (an unparsable value
/// also emits a telemetry warning so the misconfiguration is visible on
/// `/metrics` rather than silently ignored).
///
/// This is the sanctioned configuration path for library crates: the
/// workspace lint bans direct `std::env` access outside this crate, so knobs
/// like `GSU_REQUEST_LOG_CAP` must be read through here.
pub fn env_usize(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(v) => v,
            Err(_) => {
                warning(&format!(
                    "ignoring {var}={raw:?}: expected a non-negative integer, using {default}"
                ));
                default
            }
        },
        Err(_) => default,
    }
}

// The sink is process-global; tests anywhere in this crate that install one
// must serialise on this lock.
#[cfg(test)]
pub(crate) static TEST_SINK_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    use crate::TEST_SINK_LOCK as TEST_LOCK;

    fn with_collector<T>(f: impl FnOnce(&Arc<Collector>) -> T) -> T {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let collector = Collector::install();
        let out = f(&collector);
        clear_sink();
        out
    }

    #[test]
    fn disabled_by_default_costs_nothing_and_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear_sink();
        assert!(!enabled());
        counter("x", 1);
        observe("y", 2.0);
        gauge("g", 3.0);
        warning("nope");
        let mut s = span("inert");
        s.record("k", 1.0);
        drop(s);
        // Installing a collector afterwards sees none of it.
        let c = Collector::install();
        assert_eq!(c.counter_value("x"), None);
        assert!(c.spans().is_empty());
        assert!(c.warnings().is_empty());
        clear_sink();
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        with_collector(|c| {
            let threads = 8;
            let per_thread = 1000;
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    std::thread::spawn(move || {
                        for _ in 0..per_thread {
                            counter("concurrent.test", 1);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("incrementer thread");
            }
            assert_eq!(
                c.counter_value("concurrent.test"),
                Some(threads * per_thread)
            );
        });
    }

    #[test]
    fn span_nesting_depths_and_order() {
        with_collector(|c| {
            {
                let mut outer = span("outer");
                outer.record("phi", 7000.0);
                {
                    let _inner1 = span("inner1");
                }
                {
                    let mut inner2 = span("inner2");
                    inner2.record("iterations", 12u64);
                    let _innermost = span("innermost");
                }
            }
            let spans = c.spans();
            // Spans finish innermost-first.
            let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
            assert_eq!(names, ["inner1", "innermost", "inner2", "outer"]);
            let depth_of = |n: &str| spans.iter().find(|s| s.name == n).unwrap().depth;
            assert_eq!(depth_of("outer"), 0);
            assert_eq!(depth_of("inner1"), 1);
            assert_eq!(depth_of("inner2"), 1);
            assert_eq!(depth_of("innermost"), 2);
            // All four spans share the trace minted at "outer", and parent
            // links reconstruct the same tree the depths suggest.
            let of = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
            let outer = of("outer");
            assert_ne!(outer.trace_id, 0);
            assert_eq!(outer.parent_id, 0, "outer is the trace root");
            for name in ["inner1", "inner2", "innermost"] {
                assert_eq!(of(name).trace_id, outer.trace_id);
            }
            assert_eq!(of("inner1").parent_id, outer.span_id);
            assert_eq!(of("inner2").parent_id, outer.span_id);
            assert_eq!(of("innermost").parent_id, of("inner2").span_id);
            // All on one thread here, so the trace nests on a single tid.
            assert_eq!(
                spans.iter().map(|s| s.tid).collect::<Vec<_>>(),
                vec![spans[0].tid; 4]
            );
        });
    }

    #[test]
    fn chrome_trace_nesting_contains_spans_within_parents() {
        let json = with_collector(|c| {
            {
                let _outer = span("parent");
                std::thread::sleep(std::time::Duration::from_millis(2));
                {
                    let _inner = span("child");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            let spans = c.spans();
            let child = spans.iter().find(|s| s.name == "child").unwrap();
            let parent = spans.iter().find(|s| s.name == "parent").unwrap();
            // Chrome's B/E-free "X" rendering nests child iff the child's
            // [ts, ts+dur] interval lies within the parent's.
            assert!(child.start_us >= parent.start_us);
            assert!(child.start_us + child.dur_us <= parent.start_us + parent.dur_us);
            c.chrome_trace_json()
        });
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"parent\""));
        assert!(json.contains("\"name\":\"child\""));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn histogram_and_gauge_roundtrip() {
        with_collector(|c| {
            for v in [1.0, 10.0, 100.0, 0.5] {
                observe("h", v);
            }
            gauge("g", 41.0);
            gauge("g", 42.0);
            let h = c.histogram_snapshot("h").expect("histogram exists");
            assert_eq!(h.count, 4);
            assert!((h.sum - 111.5).abs() < 1e-12);
            assert_eq!(h.min, 0.5);
            assert_eq!(h.max, 100.0);
            assert_eq!(c.gauge_value("g"), Some(42.0));
        });
    }

    #[test]
    fn run_report_is_populated() {
        let report = with_collector(|c| {
            counter("solver.iterations", 17);
            gauge("san.states.rmgd", 11.0);
            observe("fox_glynn.window_len", 40.0);
            warning("model X: dropped self-loop rate 2");
            let _s = span("evaluate");
            drop(_s);
            c.run_report_json()
        });
        for needle in [
            "\"schema\":\"gsu-telemetry-v3\"",
            "\"solver.iterations\":17",
            "\"san.states.rmgd\":11",
            "\"fox_glynn.window_len\"",
            "dropped self-loop rate",
            "\"evaluate\"",
        ] {
            assert!(report.contains(needle), "missing {needle} in {report}");
        }
    }

    #[test]
    fn root_span_starts_a_fresh_trace() {
        with_collector(|c| {
            {
                let _outer = span("request.a");
                // A root span opened *inside* another trace still breaks out.
                let _root = root_span("request.b");
                let _child = span("request.b.child");
            }
            let spans = c.spans();
            let of = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
            assert_ne!(of("request.a").trace_id, of("request.b").trace_id);
            assert_eq!(of("request.b").parent_id, 0);
            assert_eq!(of("request.b.child").trace_id, of("request.b").trace_id);
            assert_eq!(of("request.b.child").parent_id, of("request.b").span_id);
            // After both guards dropped, the thread context is restored.
            let _tail = span("request.a.tail");
        });
    }

    #[test]
    fn attach_carries_a_trace_across_threads() {
        with_collector(|c| {
            let ctx = {
                let parent = span("submit");
                parent.context().expect("live guard has a context")
            };
            let worker = std::thread::spawn(move || {
                let _attached = ctx.attach();
                let _s = span("worker.task");
            });
            worker.join().expect("worker thread");
            let spans = c.spans();
            let submit = spans.iter().find(|s| s.name == "submit").unwrap();
            let task = spans.iter().find(|s| s.name == "worker.task").unwrap();
            assert_eq!(task.trace_id, submit.trace_id);
            assert_eq!(task.parent_id, submit.span_id);
            assert_ne!(task.tid, submit.tid, "worker ran on its own thread");
        });
    }

    #[test]
    fn trace_id_hex_roundtrip() {
        let ctx = TraceContext::new_root();
        let hex = ctx.trace_id_hex();
        assert_eq!(hex.len(), 16);
        assert_eq!(parse_trace_id(&hex), Some(ctx.trace_id));
        assert_eq!(parse_trace_id("zz"), None);
        assert_eq!(parse_trace_id("0"), None, "0 is the reserved null trace");
    }

    #[test]
    fn init_from_env_honours_flag() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Unset/0 → no collector; the variable name is test-local.
        assert!(init_from_env("GSU_TELEMETRY_TEST_UNSET").is_none());
        std::env::set_var("GSU_TELEMETRY_TEST_FLAG", "0");
        assert!(init_from_env("GSU_TELEMETRY_TEST_FLAG").is_none());
        std::env::set_var("GSU_TELEMETRY_TEST_FLAG", "1");
        let c = init_from_env("GSU_TELEMETRY_TEST_FLAG");
        assert!(c.is_some());
        assert!(enabled());
        clear_sink();
        std::env::remove_var("GSU_TELEMETRY_TEST_FLAG");
    }
}
