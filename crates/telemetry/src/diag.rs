//! Structured per-solve diagnostics — the flight-recorder payload each
//! numerical solve attaches to its span.
//!
//! Solvers in `markov` and `sparsela` fill in a [`SolveDiag`] as they run
//! and call [`SolveDiag::record_on`] before the solve span closes. The
//! diagnostics then travel with the span through the [`Collector`] and out
//! to the Chrome trace, the per-request span tree (`/trace?id=`), and the
//! wide-event line each `/eval` request produces.
//!
//! [`Collector`]: crate::Collector

use crate::json::fmt_f64;
use crate::SpanGuard;

/// How many trailing residuals [`SolveDiag::push_residual`] retains.
pub const RESIDUAL_TAIL_LEN: usize = 8;

/// Diagnostics for one numerical solve.
///
/// Only the fields a given method produces are recorded: a power iteration
/// has a residual trajectory but no Fox-Glynn window; uniformization has a
/// rate and a window but its "iterations" are Poisson terms; a direct LU
/// solve has neither.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveDiag {
    /// Method label, e.g. `"power"`, `"sor"`, `"uniformization"`, `"expm"`.
    pub method: String,
    /// Iterations (or Poisson terms) the solve consumed.
    pub iterations: u64,
    /// Trailing residuals/deltas, oldest first (bounded; see
    /// [`RESIDUAL_TAIL_LEN`]).
    pub residual_tail: Vec<f64>,
    /// Uniformization rate Λ, when the method uniformizes.
    pub uniformization_rate: Option<f64>,
    /// Fox-Glynn window `[left, right]`, when the method truncates a
    /// Poisson distribution.
    pub fox_glynn_window: Option<(u64, u64)>,
    /// Sparse matrix-vector products performed by this solve.
    pub spmv_ops: u64,
    /// Vector axpy-class updates performed by this solve.
    pub axpy_ops: u64,
    /// Step at which steady-state detection cut the solve short, when it
    /// triggered.
    pub ssd_trigger_step: Option<u64>,
    /// Peak active-state count an adaptive (mass-dropping) solve touched,
    /// when the method tracks its support.
    pub active_states: Option<u64>,
}

impl SolveDiag {
    /// Starts an empty diagnostic for `method`.
    pub fn new(method: &str) -> Self {
        SolveDiag {
            method: method.to_string(),
            ..SolveDiag::default()
        }
    }

    /// Appends a residual observation, keeping only the most recent
    /// [`RESIDUAL_TAIL_LEN`] values (the interesting end of the trajectory).
    pub fn push_residual(&mut self, residual: f64) {
        if self.residual_tail.len() == RESIDUAL_TAIL_LEN {
            self.residual_tail.remove(0);
        }
        self.residual_tail.push(residual);
    }

    /// Attaches the diagnostics to `span` as `solve.*` arguments. Fields a
    /// method did not produce are omitted.
    pub fn record_on(&self, span: &mut SpanGuard) {
        span.record("solve.method", self.method.as_str());
        span.record("solve.iterations", self.iterations);
        if !self.residual_tail.is_empty() {
            let tail = self
                .residual_tail
                .iter()
                .map(|r| fmt_f64(*r))
                .collect::<Vec<_>>()
                .join(",");
            span.record("solve.residual_tail", tail);
        }
        if let Some(rate) = self.uniformization_rate {
            span.record("solve.uniformization_rate", rate);
        }
        if let Some((left, right)) = self.fox_glynn_window {
            span.record("solve.fox_glynn_left", left);
            span.record("solve.fox_glynn_right", right);
        }
        if self.spmv_ops > 0 {
            span.record("solve.spmv_ops", self.spmv_ops);
        }
        if self.axpy_ops > 0 {
            span.record("solve.axpy_ops", self.axpy_ops);
        }
        if let Some(step) = self.ssd_trigger_step {
            span.record("solve.ssd_trigger_step", step);
        }
        if let Some(active) = self.active_states {
            span.record("solve.active_states", active);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{clear_sink, ArgValue, Collector};

    #[test]
    fn residual_tail_is_bounded_and_keeps_the_newest() {
        let mut diag = SolveDiag::new("power");
        for i in 0..20 {
            diag.push_residual(i as f64);
        }
        assert_eq!(diag.residual_tail.len(), RESIDUAL_TAIL_LEN);
        assert_eq!(diag.residual_tail[0], (20 - RESIDUAL_TAIL_LEN) as f64);
        assert_eq!(*diag.residual_tail.last().unwrap(), 19.0);
    }

    #[test]
    fn record_on_attaches_only_produced_fields() {
        let _guard = crate::TEST_SINK_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let collector = Collector::install();
        {
            let mut span = crate::span("solve.test");
            let mut diag = SolveDiag::new("uniformization");
            diag.iterations = 42;
            diag.uniformization_rate = Some(1e7);
            diag.fox_glynn_window = Some((3, 91));
            diag.spmv_ops = 88;
            diag.ssd_trigger_step = Some(37);
            diag.active_states = Some(12);
            diag.push_residual(1e-13);
            diag.record_on(&mut span);
        }
        {
            let mut span = crate::span("solve.direct");
            SolveDiag::new("direct").record_on(&mut span);
        }
        let spans = collector.spans();
        let of = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let args = &of("solve.test").args;
        let arg = |k: &str| {
            args.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(
            arg("solve.method"),
            Some(ArgValue::Str("uniformization".into()))
        );
        assert_eq!(arg("solve.iterations"), Some(ArgValue::U64(42)));
        assert_eq!(arg("solve.fox_glynn_right"), Some(ArgValue::U64(91)));
        assert_eq!(arg("solve.spmv_ops"), Some(ArgValue::U64(88)));
        assert_eq!(
            arg("solve.residual_tail"),
            Some(ArgValue::Str("0.0000000000001".into()))
        );
        assert_eq!(arg("solve.uniformization_rate"), Some(ArgValue::F64(1e7)));
        assert_eq!(arg("solve.ssd_trigger_step"), Some(ArgValue::U64(37)));
        assert_eq!(arg("solve.active_states"), Some(ArgValue::U64(12)));
        let direct = &of("solve.direct").args;
        assert!(direct
            .iter()
            .all(|(k, _)| k == "solve.method" || k == "solve.iterations"));
        clear_sink();
    }
}
