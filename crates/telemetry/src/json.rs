//! Minimal hand-rolled JSON helpers (std-only; no serde in this workspace).

/// Escapes `s` for embedding inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number. Non-finite values have no JSON
/// representation and render as `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // Rust's `{}` prints the shortest representation that round-trips,
        // and prints integral values without a trailing ".0" — both are
        // valid JSON numbers.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn formats_numbers() {
        assert_eq!(fmt_f64(11.0), "11");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }
}
