//! A std-only, work-stealing, *scoped* thread pool.
//!
//! The workspace's offline build policy (see DESIGN.md, "Dependency policy")
//! rules out `rayon` and `crossbeam`, so this crate implements the minimum
//! machinery the analysis pipeline needs, in safe Rust:
//!
//! * **Scoped tasks** — closures borrow from the caller's stack
//!   (`GsuAnalysis`, calibration tables, result slots) because every scope
//!   runs inside [`std::thread::scope`]. No `'static` bounds, no `Arc`
//!   plumbing through the numeric code.
//! * **Work stealing** — each worker owns a deque; it pops its own tasks
//!   LIFO-cheap from the front and steals from the *back* of a victim's
//!   deque when empty. Sweep tasks have wildly uneven costs (a φ point's
//!   Fox–Glynn window, or whether a gap solves by uniformization vs. dense
//!   matrix exponential, depends on `Λ·t`), so static chunking would leave
//!   workers idle behind the most expensive chunk.
//! * **Deterministic collection** — [`Pool::map_indexed`] writes each result
//!   into its input-index slot, so the output order (and therefore every
//!   downstream floating-point reduction) is identical at any thread count.
//! * **Parking** — idle workers block on a `Condvar` instead of spinning, so
//!   an oversubscribed pool (e.g. `GSU_THREADS=4` on one core) degrades
//!   gracefully.
//!
//! The pool is sized by the `GSU_THREADS` environment variable (default:
//! [`std::thread::available_parallelism`]). `GSU_THREADS=1` runs every task
//! inline on the caller's thread — byte-identical to the pre-pool serial
//! pipeline by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard if a previous holder panicked. The pool
/// catches task panics ([`Shared::run_task`]) and re-raises them through its
/// own channel, so lock poisoning carries no information here — every
/// protected structure (deques, counters, the panic slot) stays consistent
/// under unwinding.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Environment variable selecting the pool width.
pub const THREADS_ENV: &str = "GSU_THREADS";

/// Environment variable carrying an adversarial schedule-permutation seed
/// (the `gsu-lint sanitize` debug hook). When set, task-to-deque assignment
/// and victim scan order are scrambled by a SplitMix64 stream seeded from
/// it, so work lands on workers — and is stolen back — in an order that has
/// nothing to do with spawn order. The pool's determinism contract says
/// results must not care; the sanitizer diffs outputs bitwise across seeds
/// to prove it.
pub const PERMUTE_ENV: &str = "GSU_POOL_PERMUTE";

/// Environment variable enabling the **deliberately order-sensitive**
/// collection defect (`completion-order`). Test-only: it makes
/// [`Pool::map_indexed`] return results in task *completion* order instead
/// of input order whenever more than one thread is configured — exactly the
/// hazard class (order-sensitive parallel reduction) the determinism lint
/// and the differential sanitizer exist to catch. Never set this outside
/// the sanitizer's own negative tests.
pub const DEFECT_ENV: &str = "GSU_POOL_DEFECT";

/// The schedule-permutation seed selected by [`PERMUTE_ENV`], if any. A
/// value that parses as `u64` is used directly; any other non-empty value
/// is FNV-1a-hashed so `GSU_POOL_PERMUTE=adversarial` also works.
pub fn configured_permutation() -> Option<u64> {
    let raw = std::env::var(PERMUTE_ENV).ok()?;
    let raw = raw.trim();
    if raw.is_empty() {
        return None;
    }
    Some(raw.parse::<u64>().unwrap_or_else(|_| {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in raw.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }))
}

/// `true` when [`DEFECT_ENV`] asks for the order-sensitive collection
/// defect.
fn defect_completion_order() -> bool {
    std::env::var(DEFECT_ENV)
        .map(|v| {
            let v = v.trim();
            v == "completion-order" || v == "1"
        })
        .unwrap_or(false)
}

/// SplitMix64 step — the permutation stream behind [`PERMUTE_ENV`].
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The thread count selected by [`THREADS_ENV`], or
/// [`std::thread::available_parallelism`] when unset or unparsable.
///
/// Re-read on every call so tests (and long-lived processes) can switch
/// widths at run time; the determinism guarantee makes the switch
/// observable only through wall time.
pub fn configured_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A fixed-width scoped thread pool.
///
/// The pool itself is a lightweight configuration value: worker threads live
/// only for the duration of a [`Pool::scope`] call (they are spawned inside
/// [`std::thread::scope`], which is what lets tasks borrow non-`'static`
/// data without unsafe code). For the sweep-shaped workloads this workspace
/// runs — tens of tasks, each milliseconds to seconds — scope setup cost is
/// noise.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
    /// Schedule-permutation seed (see [`PERMUTE_ENV`]); `None` runs the
    /// default round-robin/linear-scan schedule.
    permute: Option<u64>,
    /// Order-sensitive collection defect (see [`DEFECT_ENV`]); test-only.
    defect: bool,
}

type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Spawns tasks into a running [`Pool::scope`].
pub struct Scope<'scope, 'env> {
    shared: &'scope Shared<'env>,
}

struct ScopeState {
    /// Tasks spawned but not yet finished executing.
    unfinished: usize,
    /// Set once the scope closure has returned; workers exit when this is
    /// `true` and `unfinished` reaches zero.
    closed: bool,
}

struct Shared<'env> {
    /// One deque per worker. Owners pop the front; thieves pop the back.
    queues: Vec<Mutex<VecDeque<Task<'env>>>>,
    state: Mutex<ScopeState>,
    /// Signalled on every spawn, completion, and close.
    signal: Condvar,
    /// Round-robin cursor for assigning spawned tasks to deques.
    next_queue: AtomicUsize,
    /// Counts steal *attempts*, so a permuted victim scan draws a fresh
    /// shuffle on every retry instead of deterministically re-missing the
    /// same non-empty queue (which would livelock the parked-worker loop).
    grab_seq: AtomicU64,
    /// Schedule-permutation seed ([`PERMUTE_ENV`]); `None` = default order.
    permute: Option<u64>,
    steals: AtomicU64,
    executed: AtomicU64,
    /// First panic payload raised by a task; re-raised at scope exit.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Pool {
    /// Creates a pool that runs scopes on `threads` threads (minimum 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
            permute: None,
            defect: false,
        }
    }

    /// The pool described by the current environment ([`configured_threads`],
    /// [`configured_permutation`], and [`DEFECT_ENV`]).
    pub fn current() -> Self {
        Pool::new(configured_threads())
            .with_permutation(configured_permutation())
            .with_completion_order_defect(defect_completion_order())
    }

    /// Returns the pool with the given schedule-permutation seed (the
    /// `gsu-lint sanitize` debug hook; see [`PERMUTE_ENV`]).
    pub fn with_permutation(mut self, seed: Option<u64>) -> Self {
        self.permute = seed;
        self
    }

    /// Returns the pool with the order-sensitive collection defect toggled
    /// (see [`DEFECT_ENV`]). Only the sanitizer's negative tests set this.
    pub fn with_completion_order_defect(mut self, on: bool) -> Self {
        self.defect = on;
        self
    }

    /// Number of threads scopes run on, including the caller's.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] into which tasks can be spawned, then blocks
    /// until every spawned task has finished.
    ///
    /// The caller's thread participates as a worker (so a 1-thread pool
    /// spawns no threads at all and runs every task inline, in spawn order).
    /// If a task panics, the first payload is re-raised here after all other
    /// tasks have drained.
    pub fn scope<'env, T>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> T) -> T {
        let shared = Shared::new(self.threads, self.permute);
        let out = std::thread::scope(|ts| {
            let shared = &shared;
            for worker in 1..self.threads {
                ts.spawn(move || shared.run_worker(worker));
            }
            let out = f(&Scope { shared });
            shared.close();
            // Drain as worker 0 until the scope is fully quiesced; the
            // enclosing thread::scope then joins workers 1..threads.
            shared.run_worker(0);
            out
        });
        if telemetry::enabled() {
            telemetry::gauge("pool.threads", self.threads as f64);
            telemetry::counter("pool.tasks", shared.executed.load(Ordering::Relaxed));
            telemetry::counter("pool.steals", shared.steals.load(Ordering::Relaxed));
        }
        if let Some(payload) = shared
            .panic
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
        {
            resume_unwind(payload);
        }
        out
    }

    /// Applies `f` to every item, in parallel, returning results **in input
    /// order**.
    ///
    /// Each result is written into the slot of its input index, so the output
    /// is a pure function of the inputs — bitwise identical at any thread
    /// count *and under any schedule permutation* ([`PERMUTE_ENV`]). With one
    /// thread (or one item) the map runs inline on the caller's thread with
    /// no synchronisation at all. The one deliberate exception is the seeded
    /// [`DEFECT_ENV`] hook, which breaks this contract on purpose so the
    /// sanitizer has a known-bad schedule-sensitive reduction to catch.
    pub fn map_indexed<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, x)| f(i, x))
                .collect();
        }
        let mut span = telemetry::span("pool.map_indexed");
        span.record("items", items.len());
        span.record("threads", self.threads);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let completion: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        {
            let f = &f;
            let slots = &slots;
            let completion = &completion;
            let defect = self.defect;
            self.scope(|scope| {
                for (i, item) in items.into_iter().enumerate() {
                    scope.spawn(move || {
                        let result = f(i, item);
                        *lock_unpoisoned(&slots[i]) = Some(result);
                        if defect {
                            lock_unpoisoned(completion).push(i);
                        }
                    });
                }
            });
        }
        let mut results: Vec<Option<R>> = slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect();
        if self.defect {
            // The seeded defect: hand results back in completion order. This
            // is the order-sensitive parallel reduction the determinism lint
            // and `gsu-lint sanitize` exist to catch — the inline path above
            // is untouched, so the 1-thread baseline stays correct and the
            // differential diff lights up.
            let order = completion
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            return order
                .into_iter()
                .map(|i| match results[i].take() {
                    Some(result) => result,
                    None => unreachable!("scope exit guarantees every task ran"),
                })
                .collect();
        }
        results
            .into_iter()
            .map(|slot| match slot {
                Some(result) => result,
                None => unreachable!("scope exit guarantees every task ran"),
            })
            .collect()
    }

    /// Fallible [`Pool::map_indexed`]: returns the first error **by input
    /// index** (not by completion time), so the reported failure is also
    /// deterministic.
    ///
    /// Unlike a serial `collect::<Result<_, _>>`, all tasks run to completion
    /// even when an early item fails; only the reported value matches the
    /// serial path.
    pub fn try_map_indexed<T, R, E, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, E>
    where
        T: Send,
        R: Send,
        E: Send,
        F: Fn(usize, T) -> Result<R, E> + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, x)| f(i, x))
                .collect();
        }
        self.map_indexed(items, f).into_iter().collect()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::current()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Queues `task` for execution by the scope's workers.
    ///
    /// Tasks may borrow anything that outlives the [`Pool::scope`] call.
    /// Spawn order is preserved per deque (FIFO for owners), which makes the
    /// 1-thread pool execute tasks exactly in spawn order.
    ///
    /// The spawning thread's [`telemetry::TraceContext`] is captured here
    /// and re-attached around the task, so spans a task emits parent under
    /// the span that submitted the work — the trace tree survives the hop
    /// onto a worker thread.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'env) {
        let ctx = telemetry::TraceContext::current();
        self.shared.spawn(Box::new(move || {
            let _ctx = ctx.attach();
            task()
        }));
    }
}

impl std::fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

impl<'env> Shared<'env> {
    fn new(threads: usize, permute: Option<u64>) -> Self {
        Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            state: Mutex::new(ScopeState {
                unfinished: 0,
                closed: false,
            }),
            signal: Condvar::new(),
            next_queue: AtomicUsize::new(0),
            grab_seq: AtomicU64::new(0),
            permute,
            steals: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            panic: Mutex::new(None),
        }
    }

    fn spawn(&self, task: Task<'env>) {
        let slot = self.next_queue.fetch_add(1, Ordering::Relaxed);
        let queue = match self.permute {
            // Default: round-robin in spawn order.
            None => slot % self.queues.len(),
            // Permuted: scatter tasks across deques by the seeded stream, so
            // which worker "owns" a task has nothing to do with spawn order.
            Some(seed) => (splitmix64(seed ^ slot as u64) % self.queues.len() as u64) as usize,
        };
        // Lock order state -> queue, matching the parking re-check in
        // `run_worker`, so a worker can never observe the task count without
        // also observing the task.
        let mut state = lock_unpoisoned(&self.state);
        state.unfinished += 1;
        lock_unpoisoned(&self.queues[queue]).push_back(task);
        drop(state);
        self.signal.notify_all();
    }

    fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.signal.notify_all();
    }

    fn run_worker(&self, worker: usize) {
        loop {
            if let Some(task) = self.grab(worker) {
                self.run_task(task);
                continue;
            }
            // Park until there is either work or proof that no more will
            // come. Queues are re-checked under the state lock to close the
            // race with a concurrent spawn.
            let mut state = lock_unpoisoned(&self.state);
            loop {
                if state.closed && state.unfinished == 0 {
                    return;
                }
                let work_available = self.queues.iter().any(|q| !lock_unpoisoned(q).is_empty());
                if work_available {
                    break;
                }
                state = self
                    .signal
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Pops from the worker's own deque, stealing from the back of a victim's
    /// deque when it is empty.
    ///
    /// The victim scan is linear by default; under a [`PERMUTE_ENV`] seed it
    /// walks a freshly shuffled full permutation of the victims instead, so
    /// contended steals resolve in a schedule-dependent order. Every victim
    /// is still visited exactly once per scan — the hook perturbs *order*,
    /// never coverage.
    fn grab(&self, worker: usize) -> Option<Task<'env>> {
        if let Some(task) = lock_unpoisoned(&self.queues[worker]).pop_front() {
            return Some(task);
        }
        let n = self.queues.len();
        let mut victims: Vec<usize> = (1..n).map(|offset| (worker + offset) % n).collect();
        if let Some(seed) = self.permute {
            let attempt = self.grab_seq.fetch_add(1, Ordering::Relaxed);
            let mut s = splitmix64(seed ^ ((worker as u64) << 32) ^ attempt);
            // Fisher–Yates driven by the SplitMix64 stream.
            for i in (1..victims.len()).rev() {
                s = splitmix64(s);
                victims.swap(i, (s % (i as u64 + 1)) as usize);
            }
        }
        for victim in victims {
            if let Some(task) = lock_unpoisoned(&self.queues[victim]).pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }

    fn run_task(&self, task: Task<'env>) {
        // A panicking task must still be counted as finished, or the scope
        // (and every sibling worker) would park forever.
        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            let mut slot = lock_unpoisoned(&self.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        self.executed.fetch_add(1, Ordering::Relaxed);
        let mut state = lock_unpoisoned(&self.state);
        state.unfinished -= 1;
        let quiesced = state.unfinished == 0;
        drop(state);
        if quiesced {
            self.signal.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_input_order() {
        for threads in [1, 2, 4, 7] {
            let pool = Pool::new(threads);
            let out = pool.map_indexed((0..64).collect(), |i, x: usize| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(out, (0..64).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let items: Vec<f64> = (0..40).map(|i| 0.1 + i as f64 * 0.37).collect();
        let f = |_: usize, x: f64| (x.sin() * x.exp()).sqrt().ln_1p();
        let serial = Pool::new(1).map_indexed(items.clone(), f);
        let parallel = Pool::new(4).map_indexed(items, f);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn try_map_reports_first_error_by_index() {
        let pool = Pool::new(4);
        let out: Result<Vec<usize>, String> =
            pool.try_map_indexed((0..32).collect(), |_, x: usize| {
                if x % 10 == 7 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            });
        assert_eq!(out.unwrap_err(), "bad 7");
    }

    #[test]
    fn scope_runs_every_spawned_task() {
        let counter = AtomicUsize::new(0);
        Pool::new(3).scope(|scope| {
            for _ in 0..100 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn single_thread_pool_runs_in_spawn_order() {
        let order = Mutex::new(Vec::new());
        Pool::new(1).scope(|scope| {
            let order = &order;
            for i in 0..10 {
                scope.spawn(move || order.lock().unwrap().push(i));
            }
        });
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn tasks_borrow_caller_state() {
        let data = [1u64, 2, 3, 4];
        let sum = AtomicU64::new(0);
        Pool::new(2).scope(|scope| {
            for chunk in data.chunks(2) {
                scope.spawn(|| {
                    sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            Pool::new(4).scope(|scope| {
                let finished = &finished;
                for i in 0..20 {
                    scope.spawn(move || {
                        if i == 5 {
                            panic!("task 5 exploded");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "task 5 exploded");
        // Every non-panicking sibling still ran; no worker deadlocked.
        assert_eq!(finished.load(Ordering::Relaxed), 19);
    }

    #[test]
    fn configured_threads_parses_env() {
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(configured_threads(), 3);
        assert_eq!(Pool::current().threads(), 3);
        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(configured_threads(), default_threads());
        std::env::set_var(THREADS_ENV, "not a number");
        assert_eq!(configured_threads(), default_threads());
        std::env::remove_var(THREADS_ENV);
        assert_eq!(configured_threads(), default_threads());
    }

    #[test]
    fn spawned_tasks_inherit_the_submitting_trace() {
        let collector = telemetry::Collector::install();
        let submit_ctx = {
            let span = telemetry::span("submit.sweep");
            let ctx = span.context().expect("live span");
            Pool::new(4).scope(|scope| {
                for i in 0..8 {
                    scope.spawn(move || {
                        let mut s = telemetry::span("sweep.point");
                        s.record("i", i as u64);
                    });
                }
            });
            ctx
        };
        telemetry::clear_sink();
        let spans = collector.spans();
        let points: Vec<_> = spans.iter().filter(|s| s.name == "sweep.point").collect();
        assert_eq!(points.len(), 8);
        for p in &points {
            assert_eq!(p.trace_id, submit_ctx.trace_id);
            assert_eq!(p.parent_id, submit_ctx.span_id);
        }
    }

    #[test]
    fn permuted_schedule_is_bitwise_invisible() {
        let items: Vec<f64> = (0..48).map(|i| 0.05 + i as f64 * 0.21).collect();
        let f = |_: usize, x: f64| (x.cos() * x.exp_m1()).abs().sqrt();
        let baseline = Pool::new(1).map_indexed(items.clone(), f);
        for seed in [0u64, 1, 0xdead_beef, u64::MAX] {
            for threads in [2, 4, 7] {
                let pool = Pool::new(threads).with_permutation(Some(seed));
                let permuted = pool.map_indexed(items.clone(), f);
                for (a, b) in baseline.iter().zip(&permuted) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn permuted_scope_runs_every_task() {
        for seed in [7u64, 99] {
            let counter = AtomicUsize::new(0);
            Pool::new(4).with_permutation(Some(seed)).scope(|scope| {
                for _ in 0..200 {
                    scope.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 200);
        }
    }

    #[test]
    fn completion_order_defect_reorders_results() {
        // The defect returns results in completion order. Worker 0 drains its
        // own deque (even indices under round-robin) before stealing odd ones
        // back-to-front, so with enough tasks the completion order cannot be
        // 0..n even on a single hardware thread.
        let pool = Pool::new(2).with_completion_order_defect(true);
        let mut scrambled = false;
        for _ in 0..20 {
            let out = pool.map_indexed((0..64).collect(), |_, x: usize| x);
            let mut sorted = out.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                (0..64).collect::<Vec<_>>(),
                "no task lost or duplicated"
            );
            if out != (0..64).collect::<Vec<_>>() {
                scrambled = true;
                break;
            }
        }
        assert!(scrambled, "defect must scramble order");
        // The inline path is immune: a 1-thread pool ignores the defect.
        let serial = Pool::new(1)
            .with_completion_order_defect(true)
            .map_indexed((0..64).collect(), |_, x: usize| x);
        assert_eq!(serial, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn configured_permutation_parses_and_hashes() {
        std::env::set_var(PERMUTE_ENV, "42");
        assert_eq!(configured_permutation(), Some(42));
        std::env::set_var(PERMUTE_ENV, "adversarial");
        let hashed = configured_permutation();
        assert!(hashed.is_some());
        assert_ne!(hashed, Some(42));
        std::env::set_var(PERMUTE_ENV, "  ");
        assert_eq!(configured_permutation(), None);
        std::env::remove_var(PERMUTE_ENV);
        assert_eq!(configured_permutation(), None);
    }

    #[test]
    fn empty_scope_and_empty_map() {
        Pool::new(4).scope(|_| {});
        let out: Vec<u8> = Pool::new(4).map_indexed(Vec::<u8>::new(), |_, x| x);
        assert!(out.is_empty());
    }
}
