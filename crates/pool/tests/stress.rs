//! Loom-style stress smoke test: hammer scope setup, stealing, parking, and
//! shutdown enough times that a racy close/park handshake would deadlock or
//! lose tasks with high probability.

use std::sync::atomic::{AtomicU64, Ordering};

use pool::Pool;

#[test]
fn spawn_steal_shutdown_1000_times() {
    let pool = Pool::new(4);
    for round in 0..1000u64 {
        // Vary the task count so some rounds close the scope while workers
        // are still parked and others close it mid-steal.
        let tasks = (round % 7) * 3;
        let sum = AtomicU64::new(0);
        pool.scope(|scope| {
            let sum = &sum;
            for i in 0..tasks {
                scope.spawn(move || {
                    sum.fetch_add(i + 1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), tasks * (tasks + 1) / 2);
    }
}

#[test]
fn uneven_task_costs_complete_under_stealing() {
    // One deque receives the expensive tasks (round-robin assignment puts
    // every 4th task on it); idle workers must steal to finish promptly.
    let pool = Pool::new(4);
    let out = pool.map_indexed((0..48u64).collect(), |i, x| {
        let spin = if i % 4 == 0 { 20_000 } else { 10 };
        let mut acc = x;
        for _ in 0..spin {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        (x, acc)
    });
    for (i, (x, _)) in out.iter().enumerate() {
        assert_eq!(i as u64, *x);
    }
}
