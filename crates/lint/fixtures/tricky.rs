//! Self-test fixture: tricky token sequences that must NOT trip any rule.
//! Linted by `gsu-lint self-test` as if it were a library crate root.
#![forbid(unsafe_code)]

/// A raw string containing policy keywords is just text.
pub const DOCS: &str = r#"calling unsafe { code } or x.unwrap() here is fine"#;

/// Counted-hash raw strings swallow embedded quotes and short hash runs.
pub const NESTED: &str = r##"a "#quote"# then x.expect("boom") and panic!("no")"##;

// x.unwrap(); — a commented-out unwrap is invisible to the lexer.
/* so is a /* nested */ block comment with println!("hi")
   and std::env::var("HOME") and y == 1.5 */

/// Lifetimes are not char literals, and char literals are not lifetimes.
pub fn first<'a>(xs: &'a [char]) -> Option<&'a char> {
    let _tick = '\'';
    let _x = 'x';
    xs.first()
}

/// Exact comparison against the 0.0 sentinel is the sanctioned idiom.
pub fn is_unset(x: f64) -> bool {
    x == 0.0
}

/// Ranges and method calls on integers are not float literals.
pub fn span() -> usize {
    let r = 1..3;
    r.len().max(2)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap_and_print() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
        println!("tests may print: {}", 1.5_f64 == 1.5_f64);
    }
}
