//! Seeded violations for the symbol-layer rule families. Linted as if it
//! lived in a result-affecting library crate, each deny rule below fires
//! exactly once; the self-test pins the multiset and the exact positions.
//! (Like the other fixtures this file is reference material, not compiled
//! into the crate.)

use std::collections::HashMap;
use std::time::Instant;

/// `hash-iteration`: summing over `values()` folds in hash order — fine
/// for a commutative sum of exact integers, fatal for floats, and the lint
/// cannot tell the difference, so the iteration itself is the finding.
fn hash_iteration(scores: &HashMap<u32, f64>) -> f64 {
    scores.values().sum()
}

/// `wall-clock`: reading a clock in a numeric crate makes the result a
/// function of the machine, not the model.
fn wall_clock_read() -> Instant {
    Instant::now()
}

/// `thread-id`: branching on worker identity is schedule-dependence.
fn thread_id_logic() -> u64 {
    let id = std::thread::current().id();
    format!("{id:?}").len() as u64
}

/// `guard-across-spawn`: the tasks may need `shared` on another worker.
fn guard_across_spawn(workers: &pool::Pool, shared: &std::sync::Mutex<Vec<f64>>) {
    let guard = shared.lock();
    workers.scope(|scope| {
        scope.spawn(|| {});
    });
    drop(guard);
}
