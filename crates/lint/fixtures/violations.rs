//! Self-test fixture: exactly one violation of every source rule.
//! The missing #![forbid(unsafe_code)] attribute is itself the sixth
//! violation (forbid-unsafe). Never compiled — only lexed.

pub fn violations(x: Option<u8>, y: f64) -> bool {
    let v = x.unwrap();
    let _nope = unsafe { core::mem::zeroed::<u8>() };
    println!("v = {v}");
    let _home = std::env::var("HOME");
    y == 1.5
}
