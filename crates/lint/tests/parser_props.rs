//! Property tests for the item parser: totality on arbitrary input, and
//! agreement with the lexer on token boundaries — every index the parser
//! records must point at the lexer token it claims to describe.

use gsu_lint::lexer::{lex, TokKind};
use gsu_lint::parser::parse;
use proptest::prelude::*;

/// Fragment alphabet skewed toward the constructs the parser cares about,
/// including malformed ones (unbalanced braces, dangling `as`, bare `::`).
const FRAGMENTS: &[&str] = &[
    "use",
    "fn",
    "as",
    "mut",
    "pub",
    "self",
    "crate",
    "impl",
    "struct",
    "where",
    "::",
    ";",
    ",",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "<",
    ">",
    "->",
    "*",
    "&",
    "#",
    "!",
    "=",
    ".",
    "'a",
    "foo",
    "Bar",
    "HashMap",
    "std",
    "collections",
    "x1",
    "r#match",
    "\"str\"",
    "'c'",
    "3.5",
    "0x1f",
    "// line comment\n",
    "/* block */",
];

fn soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..FRAGMENTS.len(), 0..60).prop_map(|ix| {
        ix.iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ")
    })
}

/// Arbitrary (possibly non-ASCII, non-Rust) text.
fn noise() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..0x2800, 0..120).prop_map(|cs| {
        cs.into_iter()
            .filter_map(char::from_u32)
            .collect::<String>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    fn parser_is_total_and_indices_agree_with_lexer(src in soup()) {
        let toks = lex(&src);
        let parsed = parse(&toks); // must not panic
        for u in &parsed.uses {
            prop_assert!(u.tok < toks.len());
            let t = &toks[u.tok];
            // The recorded binding is exactly the token at that index:
            // its alias/final segment for named imports, `*` for globs.
            if u.local == "*" {
                prop_assert!(t.is_punct("*"), "glob points at {:?}", t.text);
            } else {
                prop_assert!(t.kind == TokKind::Ident, "binding points at {:?}", t.kind);
                prop_assert_eq!(&u.local, &t.text);
                prop_assert!(u.path.ends_with(&t.text) || u.path.is_empty() || u.local != t.text);
            }
        }
        for f in &parsed.fns {
            prop_assert!(f.kw < toks.len());
            prop_assert!(toks[f.kw].is_ident("fn"));
            // The name is the very next lexer token.
            prop_assert_eq!(&f.name, &toks[f.kw + 1].text);
            if let Some((a, b)) = f.body {
                prop_assert!(a < b && b <= toks.len());
                let opens_with_brace = toks[a].is_punct("{");
                prop_assert!(opens_with_brace, "body start is {:?}", toks[a].text);
            }
        }
    }

    #[test]
    fn parser_never_panics_on_noise(src in noise()) {
        let toks = lex(&src);
        let parsed = parse(&toks);
        for u in &parsed.uses {
            prop_assert!(u.tok < toks.len());
        }
        for f in &parsed.fns {
            prop_assert!(f.kw < toks.len());
            if let Some((a, b)) = f.body {
                prop_assert!(a < b && b <= toks.len());
            }
        }
    }
}
