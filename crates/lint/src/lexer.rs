//! A minimal hand-rolled Rust lexer — just enough lexical fidelity for
//! policy linting, no syntax tree.
//!
//! The scanner understands the token shapes that defeat naive grep-based
//! policy checks: nested block comments, doc comments, string literals with
//! escapes, **raw strings** (`r#"…"#` may contain `unsafe` or `.unwrap()`
//! verbatim), byte strings, char literals vs lifetimes, and numeric
//! literals with separators/suffixes (so `1.5f64` is one float token).
//! Comments and whitespace are dropped; everything else becomes a [`Tok`]
//! with its 1-based line number.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// `'a` — distinguished from char literals.
    Lifetime,
    /// Integer literal (any base, with suffix).
    IntLit,
    /// Float literal; [`Tok::float_value`] recovers its value.
    FloatLit,
    /// String/raw-string/byte-string literal (contents opaque).
    StrLit,
    /// Char or byte literal.
    CharLit,
    /// Operator or delimiter, maximal-munch (`==`, `::`, …).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// Source text of the token (literals keep their quotes/prefixes).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based byte column of the token's first character on its line.
    pub col: u32,
}

impl Tok {
    /// `true` for an identifier with exactly this text.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// `true` for a punct token with exactly this text.
    pub fn is_punct(&self, op: &str) -> bool {
        self.kind == TokKind::Punct && self.text == op
    }

    /// Numeric value of a float literal (separators and any `f32`/`f64`
    /// suffix stripped); `None` for other kinds.
    pub fn float_value(&self) -> Option<f64> {
        if self.kind != TokKind::FloatLit {
            return None;
        }
        let cleaned: String = self.text.chars().filter(|&c| c != '_').collect();
        let cleaned = cleaned
            .strip_suffix("f64")
            .or_else(|| cleaned.strip_suffix("f32"))
            .unwrap_or(&cleaned);
        cleaned.parse().ok()
    }
}

/// Multi-char operators, longest first so maximal munch works by scan order.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Scanner<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Scanner<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.i += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.i..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `source`, dropping comments and whitespace.
pub fn lex(source: &str) -> Vec<Tok> {
    let mut s = Scanner {
        src: source.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(b) = s.peek(0) {
        let line = s.line;
        let col = s.col;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
            }
            b'/' if s.peek(1) == Some(b'/') => {
                while let Some(c) = s.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    s.bump();
                }
            }
            b'/' if s.peek(1) == Some(b'*') => {
                s.bump();
                s.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (s.peek(0), s.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            s.bump();
                            s.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            s.bump();
                            s.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            s.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'"' => {
                let start = s.i;
                scan_quoted(&mut s);
                push(&mut toks, TokKind::StrLit, &s, start, line, col);
            }
            b'\'' => {
                // Lifetime when followed by an identifier that is not
                // immediately closed by another quote (`'a` vs `'a'`).
                let start = s.i;
                if s.peek(1).is_some_and(is_ident_start) && s.peek(2) != Some(b'\'') {
                    s.bump();
                    while s.peek(0).is_some_and(is_ident_continue) {
                        s.bump();
                    }
                    push(&mut toks, TokKind::Lifetime, &s, start, line, col);
                } else {
                    s.bump();
                    loop {
                        match s.bump() {
                            Some(b'\\') => {
                                s.bump();
                            }
                            Some(b'\'') | None => break,
                            Some(_) => {}
                        }
                    }
                    push(&mut toks, TokKind::CharLit, &s, start, line, col);
                }
            }
            _ if raw_string_hashes(&s).is_some() => {
                let start = s.i;
                // Skip the prefix (`r`, `br`) and opening hashes + quote.
                let hashes = raw_string_hashes(&s).unwrap_or(0);
                while s.peek(0).is_some_and(|c| c != b'"') {
                    s.bump();
                }
                s.bump();
                let closer = format!("\"{}", "#".repeat(hashes));
                while s.peek(0).is_some() && !s.starts_with(&closer) {
                    s.bump();
                }
                for _ in 0..closer.len() {
                    s.bump();
                }
                push(&mut toks, TokKind::StrLit, &s, start, line, col);
            }
            b'b' if s.peek(1) == Some(b'"') => {
                let start = s.i;
                s.bump();
                scan_quoted(&mut s);
                push(&mut toks, TokKind::StrLit, &s, start, line, col);
            }
            b'b' if s.peek(1) == Some(b'\'') => {
                let start = s.i;
                s.bump();
                s.bump();
                loop {
                    match s.bump() {
                        Some(b'\\') => {
                            s.bump();
                        }
                        Some(b'\'') | None => break,
                        Some(_) => {}
                    }
                }
                push(&mut toks, TokKind::CharLit, &s, start, line, col);
            }
            _ if is_ident_start(b) => {
                let start = s.i;
                while s.peek(0).is_some_and(is_ident_continue) {
                    s.bump();
                }
                push(&mut toks, TokKind::Ident, &s, start, line, col);
            }
            _ if b.is_ascii_digit() => {
                let start = s.i;
                let kind = scan_number(&mut s);
                push(&mut toks, kind, &s, start, line, col);
            }
            _ => {
                let start = s.i;
                let munched = PUNCTS.iter().find(|p| s.starts_with(p));
                match munched {
                    Some(p) => {
                        for _ in 0..p.len() {
                            s.bump();
                        }
                    }
                    None => {
                        s.bump();
                    }
                }
                push(&mut toks, TokKind::Punct, &s, start, line, col);
            }
        }
    }
    toks
}

fn push(toks: &mut Vec<Tok>, kind: TokKind, s: &Scanner<'_>, start: usize, line: u32, col: u32) {
    let text = String::from_utf8_lossy(&s.src[start..s.i]).into_owned();
    toks.push(Tok {
        kind,
        text,
        line,
        col,
    });
}

/// Consumes a `"…"` literal starting at the opening quote.
fn scan_quoted(s: &mut Scanner<'_>) {
    s.bump();
    loop {
        match s.bump() {
            Some(b'\\') => {
                s.bump();
            }
            Some(b'"') | None => break,
            Some(_) => {}
        }
    }
}

/// When the scanner sits on a raw/raw-byte string opener (`r"`, `r#…#"`,
/// `br"`, …), the number of hashes; otherwise `None`. Plain identifiers
/// starting with `r`/`br` (e.g. `rate`) fall through to ident scanning.
fn raw_string_hashes(s: &Scanner<'_>) -> Option<usize> {
    let mut j = match s.peek(0) {
        Some(b'r') => 1,
        Some(b'b') if s.peek(1) == Some(b'r') => 2,
        _ => return None,
    };
    let mut hashes = 0usize;
    while s.peek(j) == Some(b'#') {
        hashes += 1;
        j += 1;
    }
    (s.peek(j) == Some(b'"')).then_some(hashes)
}

/// Scans a numeric literal; returns its kind.
fn scan_number(s: &mut Scanner<'_>) -> TokKind {
    let radix_prefix = s.peek(0) == Some(b'0')
        && matches!(s.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
    if radix_prefix {
        s.bump();
        s.bump();
        while s
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            s.bump();
        }
        return TokKind::IntLit;
    }
    let mut float = false;
    while s.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
        s.bump();
    }
    // Fractional part only when followed by a digit, so `1..3` and
    // `1.max(2)` keep the integer token intact.
    if s.peek(0) == Some(b'.') && s.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
        s.bump();
        while s.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            s.bump();
        }
    }
    if matches!(s.peek(0), Some(b'e' | b'E')) {
        let sign = usize::from(matches!(s.peek(1), Some(b'+' | b'-')));
        if s.peek(1 + sign).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            for _ in 0..=sign {
                s.bump();
            }
            while s.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                s.bump();
            }
        }
    }
    // Suffix (`f64`, `u32`, …) — a float suffix forces float-ness.
    let suffix_start = s.i;
    while s.peek(0).is_some_and(is_ident_continue) {
        s.bump();
    }
    let suffix = &s.src[suffix_start..s.i];
    if suffix == b"f32" || suffix == b"f64" {
        float = true;
    }
    if float {
        TokKind::FloatLit
    } else {
        TokKind::IntLit
    }
}

/// Half-open token-index ranges covered by `#[cfg(test)]`-gated items (or
/// `#[test]` functions): the attribute tokens themselves plus the following
/// item up to its closing brace or terminating semicolon.
///
/// An attribute gates its item when any bare identifier inside the
/// `#[…]` group is `test` — this covers `#[test]`, `#[cfg(test)]`, and
/// `#[cfg(all(test, feature = "x"))]`; string literals like
/// `#[doc = "test"]` do not count because they are not identifier tokens.
pub fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        // Find the matching `]` of the attribute group.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut gates_test = false;
        while j < toks.len() {
            if toks[j].is_punct("[") {
                depth += 1;
            } else if toks[j].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if toks[j].is_ident("test") {
                gates_test = true;
            }
            j += 1;
        }
        if !gates_test {
            i = j + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = j + 1;
        while k < toks.len()
            && toks[k].is_punct("#")
            && toks.get(k + 1).is_some_and(|t| t.is_punct("["))
        {
            let mut d = 0usize;
            while k < toks.len() {
                if toks[k].is_punct("[") {
                    d += 1;
                } else if toks[k].is_punct("]") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        // The item ends at the matching `}` of its first brace block, or at
        // a `;` before any brace opens.
        let mut braces = 0usize;
        let mut end = toks.len();
        while k < toks.len() {
            if toks[k].is_punct("{") {
                braces += 1;
            } else if toks[k].is_punct("}") {
                braces = braces.saturating_sub(1);
                if braces == 0 {
                    end = k + 1;
                    break;
                }
            } else if toks[k].is_punct(";") && braces == 0 {
                end = k + 1;
                break;
            }
            k += 1;
        }
        regions.push((attr_start, end));
        i = end;
    }
    regions
}

/// `true` when token index `i` falls inside any of `regions`.
pub fn in_regions(regions: &[(usize, usize)], i: usize) -> bool {
    regions.iter().any(|&(a, b)| a <= i && i < b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_are_dropped_even_nested() {
        assert!(lex("// unsafe .unwrap()\n/* outer /* unsafe */ still comment */").is_empty());
        let toks = lex("a /* x */ b");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].line, 1);
    }

    #[test]
    fn raw_strings_swallow_contents() {
        let toks = lex(r####"let s = r#"unsafe { x.unwrap() }"#;"####);
        assert!(toks.iter().all(|t| !t.is_ident("unsafe")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::StrLit).count(), 1);
        // An identifier starting with `r` is not a raw string.
        let toks = lex("rate r2 br2");
        assert!(toks.iter().all(|t| t.kind == TokKind::Ident));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::CharLit).count(),
            2
        );
    }

    #[test]
    fn numbers_classify() {
        let toks = lex("1 1.5 1e-3 0x_ff 2.0f64 10f32 7u64 1..3 t.0 1.max(2)");
        let floats: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::FloatLit)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(floats, ["1.5", "1e-3", "2.0f64", "10f32"]);
        assert_eq!(lex("1.5")[0].float_value(), Some(1.5));
        assert_eq!(lex("2_000.5f64")[0].float_value(), Some(2000.5));
        assert_eq!(lex("1e-3")[0].float_value(), Some(1e-3));
    }

    #[test]
    fn maximal_munch_puncts() {
        let toks = lex("a == b != c :: d => e .. f");
        let ops: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(ops, ["==", "!=", "::", "=>", ".."]);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        assert_eq!(
            toks.iter().map(|t| t.line).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        // A multi-line raw string advances the line counter.
        let toks = lex("r\"x\ny\" z");
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn cfg_test_region_covers_module() {
        let src =
            "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn b() { y.unwrap(); } }\nfn c() {}";
        let toks = lex(src);
        let regions = test_regions(&toks);
        assert_eq!(regions.len(), 1);
        let unwraps: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!in_regions(&regions, unwraps[0]));
        assert!(in_regions(&regions, unwraps[1]));
        // `fn c` is outside.
        let c = toks.iter().position(|t| t.is_ident("c")).unwrap();
        assert!(!in_regions(&regions, c));
    }

    #[test]
    fn test_attribute_gates_single_fn() {
        let src = "#[test]\nfn t() { a.unwrap() }\nfn lib() { }";
        let toks = lex(src);
        let regions = test_regions(&toks);
        assert_eq!(regions.len(), 1);
        let lib = toks.iter().position(|t| t.is_ident("lib")).unwrap();
        assert!(!in_regions(&regions, lib));
    }

    #[test]
    fn cfg_not_test_does_not_gate() {
        let src = "#[cfg(feature = \"extra\")]\nfn f() { x.unwrap() }";
        let toks = lex(src);
        assert!(test_regions(&toks).is_empty());
        // And a doc-string mentioning test does not gate either.
        let src = "#[doc = \"test\"]\nfn g() { }";
        assert!(test_regions(&lex(src)).is_empty());
    }

    #[test]
    fn kinds_smoke() {
        let got = kinds("let x: f64 = 0.0;");
        assert_eq!(got[0], (TokKind::Ident, "let".to_string()));
        assert_eq!(got[4], (TokKind::Punct, "=".to_string()));
        assert_eq!(got[5], (TokKind::FloatLit, "0.0".to_string()));
    }
}
