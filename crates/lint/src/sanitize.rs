//! The runtime sanitizer: `gsu-lint sanitize`.
//!
//! Every static determinism rule in this linter has a dynamic witness
//! here. The harness evaluates the paper's fig. 9 baseline sweep plus two
//! catalog scenarios, first serially (`GSU_THREADS=1`, the reference
//! schedule), then across a matrix of thread counts and adversarially
//! permuted worker wake orders (the [`pool::PERMUTE_ENV`] debug hook), and
//! diffs the outputs **bitwise**. The workspace's contract is that every
//! published number is a pure function of its inputs — same bits at any
//! thread count under any schedule — so a single flipped bit is a finding
//! (`sanitize-mismatch`), not a tolerance question.
//!
//! In debug builds the sparse kernels' checked-float tripwires
//! ([`sparsela::checked`]) are armed for the duration: any NaN, infinity,
//! or denormal produced by a matrix op surfaces as a `checked-float`
//! finding naming the kernel.
//!
//! The schedule knobs travel through the environment (that is what the
//! pool reads), so runs are serialized behind a process-wide lock and the
//! prior values are restored on exit — including on error paths. The
//! [`pool::DEFECT_ENV`] hook is deliberately *not* touched: tests set it
//! to plant an order-sensitive reduction and watch this harness catch it.

use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};

use crate::diag::Finding;
use gsu_scenario::{catalog, ScenarioAnalysis, ScenarioSpec};
use performability::{GsuAnalysis, GsuParams, SweepPoint};

/// Thread counts every case is replayed under (`1` doubles as a check
/// that the permutation hook is inert on the inline path).
pub const THREAD_MATRIX: &[usize] = &[1, 2, 4];

/// Wake-order permutation seeds for the full run.
const FULL_SEEDS: &[u64] = &[1, 2, 0xdead_beef];
/// Single seed for `--quick` (CI budget: the whole stage stays well under
/// ten seconds because the quick cases are the catalog's smallest models).
const QUICK_SEEDS: &[u64] = &[1];

/// Catalog scenarios for the full run.
const FULL_SCENARIOS: &[&str] = &["paper-short-window", "two-escorts"];
/// Catalog scenarios for `--quick`.
const QUICK_SCENARIOS: &[&str] = &["paper-short-window", "small-exact"];

/// φ-grid size of the fig. 9 baseline sweep.
const FULL_GRID: usize = 9;
/// φ-grid size under `--quick`.
const QUICK_GRID: usize = 5;

/// Serializes sanitizer runs: the schedule knobs live in the process
/// environment, so two concurrent runs would trample each other.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// What to run.
pub struct SanitizeOptions {
    /// Fewer seeds, smaller grid, smallest scenarios.
    pub quick: bool,
    /// Directory holding the `.gsu` scenario catalog.
    pub scenario_dir: PathBuf,
}

/// The harness outcome: findings (empty on a clean run) plus a human log.
pub struct SanitizeReport {
    /// `sanitize-mismatch` / `checked-float` findings.
    pub findings: Vec<Finding>,
    /// One line per case summarising what was compared.
    pub log: Vec<String>,
    /// Total differential runs executed (excluding baselines).
    pub runs: usize,
}

/// Saved schedule environment, restored on drop so even an error path
/// leaves the process as it found it.
struct EnvState {
    threads: Option<String>,
    permute: Option<String>,
}

impl EnvState {
    fn capture() -> Self {
        EnvState {
            threads: std::env::var(pool::THREADS_ENV).ok(),
            permute: std::env::var(pool::PERMUTE_ENV).ok(),
        }
    }
}

impl Drop for EnvState {
    fn drop(&mut self) {
        restore(pool::THREADS_ENV, self.threads.as_deref());
        restore(pool::PERMUTE_ENV, self.permute.as_deref());
    }
}

fn restore(key: &str, value: Option<&str>) {
    match value {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    }
}

fn set_schedule(threads: usize, permute: Option<u64>) {
    std::env::set_var(pool::THREADS_ENV, threads.to_string());
    restore(pool::PERMUTE_ENV, permute.map(|s| s.to_string()).as_deref());
}

/// One differential case: a name and a replayable evaluation whose result
/// is the exact bit pattern of every output number.
struct Case {
    name: String,
    eval: Box<dyn Fn() -> Result<Vec<u64>, String>>,
}

/// Flattens a curve to the bit patterns under comparison.
fn encode(points: &[SweepPoint]) -> Vec<u64> {
    points
        .iter()
        .flat_map(|p| [p.phi.to_bits(), p.y.to_bits()])
        .collect()
}

/// Builds the case list: fig. 9 plus two catalog scenarios. Each case
/// reconstructs its analysis inside the run so the *whole* pipeline
/// (model build included) executes under the schedule being tested.
fn build_cases(opts: &SanitizeOptions) -> Result<Vec<Case>, String> {
    let grid = if opts.quick { QUICK_GRID } else { FULL_GRID };
    let wanted = if opts.quick {
        QUICK_SCENARIOS
    } else {
        FULL_SCENARIOS
    };

    let mut cases = vec![Case {
        name: "fig9".to_string(),
        eval: Box::new(move || {
            let analysis = GsuAnalysis::new(GsuParams::paper_baseline())
                .map_err(|e| format!("fig9 build failed: {e}"))?;
            let points = analysis
                .sweep_grid(grid)
                .map_err(|e| format!("fig9 sweep failed: {e}"))?;
            Ok(encode(&points))
        }),
    }];

    let specs = catalog::load_dir(&opts.scenario_dir)
        .map_err(|e| format!("loading {}: {e}", opts.scenario_dir.display()))?;
    for name in wanted {
        let spec: ScenarioSpec =
            specs
                .iter()
                .find(|s| s.name == *name)
                .cloned()
                .ok_or_else(|| {
                    format!(
                        "scenario `{name}` not found in {}",
                        opts.scenario_dir.display()
                    )
                })?;
        cases.push(Case {
            name: spec.name.clone(),
            eval: Box::new(move || {
                let analysis = ScenarioAnalysis::new(spec.clone())
                    .map_err(|e| format!("scenario build failed: {e}"))?;
                let points = analysis
                    .curve()
                    .map_err(|e| format!("scenario curve failed: {e}"))?;
                Ok(encode(&points))
            }),
        });
    }
    Ok(cases)
}

/// Turns the checked-float trips accumulated during one run into findings
/// attributed to `case`. The trip text already names the kernel.
fn drain_trips(case: &str, findings: &mut Vec<Finding>) {
    for trip in sparsela::checked::take_trips() {
        findings.push(Finding::new(
            "checked-float",
            format!("sanitize:{case}"),
            trip,
            "a kernel produced a non-finite or denormal value; clamp or guard the \
             inputs where the message points, do not widen tolerances downstream",
        ));
    }
}

/// Describes the first diverging word of two encoded curves.
fn first_divergence(baseline: &[u64], got: &[u64]) -> String {
    if baseline.len() != got.len() {
        return format!(
            "length changed: {} words became {}",
            baseline.len(),
            got.len()
        );
    }
    let differing = baseline.iter().zip(got).filter(|(a, b)| a != b).count();
    let first = baseline.iter().zip(got).position(|(a, b)| a != b);
    match first {
        Some(word) => {
            let field = if word % 2 == 0 { "phi" } else { "y" };
            format!(
                "{differing} of {} words differ; first at point {} (field {field})",
                baseline.len(),
                word / 2,
            )
        }
        None => "no differing word (length mismatch only)".to_string(),
    }
}

/// Runs the differential harness.
///
/// # Errors
///
/// Infrastructure failures only — a missing scenario directory or a case
/// whose *baseline* evaluation fails. Divergence under an alternate
/// schedule is a finding, not an error.
pub fn run(opts: &SanitizeOptions) -> Result<SanitizeReport, String> {
    let _serial = ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let _restore = EnvState::capture();
    let mut span = telemetry::span("lint.sanitize");

    sparsela::checked::enable(true);
    let _ = sparsela::checked::take_trips(); // discard stale trips
    let result = run_locked(opts);
    sparsela::checked::enable(false);

    if let Ok(report) = &result {
        span.record("runs", report.runs);
        span.record("findings", report.findings.len());
    }
    result
}

fn run_locked(opts: &SanitizeOptions) -> Result<SanitizeReport, String> {
    let seeds = if opts.quick { QUICK_SEEDS } else { FULL_SEEDS };
    let cases = build_cases(opts)?;
    let mut findings = Vec::new();
    let mut log = Vec::new();
    let mut runs = 0usize;

    for case in &cases {
        // Reference schedule: serial, unpermuted.
        set_schedule(1, None);
        let baseline = (case.eval)().map_err(|e| format!("{} baseline: {e}", case.name))?;
        drain_trips(&case.name, &mut findings);

        let mut mismatches = 0usize;
        for &threads in THREAD_MATRIX {
            for &seed in seeds {
                set_schedule(threads, Some(seed));
                runs += 1;
                match (case.eval)() {
                    Ok(got) => {
                        if got != baseline {
                            mismatches += 1;
                            findings.push(Finding::new(
                                "sanitize-mismatch",
                                format!("sanitize:{}", case.name),
                                format!(
                                    "`{}` diverged bitwise at GSU_THREADS={threads}, \
                                     wake-order seed {seed}: {}",
                                    case.name,
                                    first_divergence(&baseline, &got),
                                ),
                                "outputs must be bitwise schedule-invariant; hunt the \
                                 order-sensitive reduction (hash iteration, completion-order \
                                 collection, shared-state race) — do not allowlist this",
                            ));
                        }
                    }
                    Err(e) => {
                        mismatches += 1;
                        findings.push(Finding::new(
                            "sanitize-mismatch",
                            format!("sanitize:{}", case.name),
                            format!(
                                "`{}` failed outright at GSU_THREADS={threads}, wake-order \
                                 seed {seed} (baseline succeeded): {e}",
                                case.name,
                            ),
                            "a schedule-dependent failure is a concurrency bug; fix the \
                             race rather than retrying",
                        ));
                    }
                }
                drain_trips(&case.name, &mut findings);
            }
        }
        log.push(format!(
            "{}: {} words × {} schedules (threads {:?} × seeds {:?}): {}",
            case.name,
            baseline.len(),
            THREAD_MATRIX.len() * seeds.len(),
            THREAD_MATRIX,
            seeds,
            if mismatches == 0 {
                "bitwise identical".to_string()
            } else {
                format!("{mismatches} DIVERGENT schedules")
            },
        ));
    }

    Ok(SanitizeReport {
        findings,
        log,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario_dir() -> PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
    }

    fn quick_opts() -> SanitizeOptions {
        SanitizeOptions {
            quick: true,
            scenario_dir: scenario_dir(),
        }
    }

    #[test]
    fn clean_pipeline_is_bitwise_schedule_invariant() {
        // The acceptance criterion itself: fig9 + catalog scenarios produce
        // identical bits under permuted schedules at 1/2/4 threads.
        let report = run(&quick_opts()).unwrap();
        assert!(
            report.findings.is_empty(),
            "sanitizer found divergence: {:?}",
            report.findings
        );
        assert_eq!(report.log.len(), 3);
        assert!(
            report.runs >= 9,
            "expected a full matrix, ran {}",
            report.runs
        );
    }

    #[test]
    fn seeded_completion_order_defect_is_caught() {
        // Plant the pool's order-sensitive collection defect and watch the
        // differential harness catch it by scenario name. Completion order
        // can coincide with spawn order on a lucky schedule, so retry a few
        // times; the serial baseline is immune by construction.
        let _cleanup = EnvState::capture();
        std::env::set_var(pool::DEFECT_ENV, "completion-order");
        let mut caught = Vec::new();
        for _ in 0..3 {
            let report = run(&quick_opts()).unwrap();
            caught = report
                .findings
                .into_iter()
                .filter(|f| f.rule == "sanitize-mismatch")
                .collect();
            if !caught.is_empty() {
                break;
            }
        }
        std::env::remove_var(pool::DEFECT_ENV);
        assert!(!caught.is_empty(), "defect was never caught");
        let named = caught.iter().any(|f| {
            f.message.contains("fig9")
                || f.message.contains("paper-short-window")
                || f.message.contains("small-exact")
        });
        assert!(named, "mismatch must name the scenario: {caught:?}");
        assert!(caught[0].location.starts_with("sanitize:"));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn injected_nan_surfaces_as_checked_float_finding() {
        let _serial = ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        sparsela::checked::enable(true);
        let _ = sparsela::checked::take_trips();
        let dense = sparsela::DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let m = sparsela::CsrMatrix::from_dense(&dense);
        let mut y = vec![0.0; 2];
        m.mul_vec_into(&[f64::NAN, 1.0], &mut y);
        sparsela::checked::enable(false);
        let mut findings = Vec::new();
        drain_trips("unit", &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "checked-float");
        assert!(
            findings[0].message.contains("csr.mul_vec"),
            "trip must name the kernel: {}",
            findings[0].message
        );
        assert_eq!(findings[0].location, "sanitize:unit");
    }
}
