//! Determinism rules over the symbol table: `hash-iteration`,
//! `wall-clock`, and `thread-id`.
//!
//! The common theme: an analysis result must be a pure function of its
//! inputs. `std`'s hash containers randomize their seed per instance, so
//! any *iteration* order leaks randomness into whatever consumes it — float
//! sums, BFS numbering, output files. Wall clocks and thread identities
//! leak the schedule instead. Lookups (`get`, `insert`, `contains_key`,
//! `entry`) stay legal: they are order-free.

use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::symbols::{is_result_affecting, SymbolTable, WALL_CLOCK_SANCTIONED};

/// Methods whose call on a hash container observes iteration order.
const ITERATION_METHODS: &[&str] = &[
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "iter",
    "iter_mut",
    "keys",
    "retain",
    "values",
    "values_mut",
];

/// Runs all determinism rules over one file.
pub fn check(table: &SymbolTable<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_hash_iteration(table, &mut findings);
    check_wall_clock(table, &mut findings);
    check_thread_id(table, &mut findings);
    findings
}

/// `hash-iteration`: iteration over a `HashMap`/`HashSet` binding in a
/// result-affecting crate.
fn check_hash_iteration(table: &SymbolTable<'_>, findings: &mut Vec<Finding>) {
    if !is_result_affecting(table.rel) {
        return;
    }
    let toks = table.toks;
    for (i, t) in toks.iter().enumerate() {
        if !table.lib_code(i) {
            continue;
        }

        // NAME . method (   where NAME is a hash binding and method iterates.
        if t.kind == TokKind::Ident
            && table.is_hash_binding(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.is_punct("."))
        {
            if let (Some(method), Some(open)) = (toks.get(i + 2), toks.get(i + 3)) {
                if method.kind == TokKind::Ident
                    && ITERATION_METHODS.contains(&method.text.as_str())
                    && open.is_punct("(")
                {
                    findings.push(Finding::new(
                        "hash-iteration",
                        table.at(i + 2),
                        format!(
                            "`.{}()` on hash container `{}` in a result-affecting crate",
                            method.text, t.text
                        ),
                        "iterate a BTreeMap/BTreeSet instead, or collect and sort the keys \
                         before iterating",
                    ));
                }
            }
        }

        // for PAT in EXPR {   where EXPR references a hash binding without
        // an iteration method call (that case is caught above).
        if t.is_ident("for") {
            // Find the `in` at bracket depth 0 (destructuring patterns may
            // contain parens), then the loop `{`.
            let mut depth = 0i64;
            let mut j = i + 1;
            let mut in_at = None;
            while j < toks.len() && j < i + 64 {
                let s = &toks[j];
                if s.is_punct("(") || s.is_punct("[") {
                    depth += 1;
                } else if s.is_punct(")") || s.is_punct("]") {
                    depth -= 1;
                } else if s.is_ident("in") && depth <= 0 {
                    in_at = Some(j);
                    break;
                } else if s.is_punct("{") || s.is_punct(";") {
                    break;
                }
                j += 1;
            }
            let Some(in_at) = in_at else { continue };
            let mut depth = 0i64;
            let mut k = in_at + 1;
            while k < toks.len() {
                let s = &toks[k];
                if s.is_punct("(") || s.is_punct("[") {
                    depth += 1;
                } else if s.is_punct(")") || s.is_punct("]") {
                    depth -= 1;
                } else if s.is_punct("{") && depth <= 0 {
                    break;
                } else if s.kind == TokKind::Ident
                    && table.is_hash_binding(&s.text)
                    && !dotted_use(table, k)
                {
                    findings.push(Finding::new(
                        "hash-iteration",
                        table.at(k),
                        format!(
                            "`for … in` over hash container `{}` in a result-affecting crate",
                            s.text
                        ),
                        "iterate a BTreeMap/BTreeSet instead, or collect and sort the keys \
                         before iterating",
                    ));
                    break;
                }
                k += 1;
            }
        }

        // SINK . extend ( … NAME … )  — draining a hash container into
        // another collection still observes its order.
        if t.is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_ident("extend"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
        {
            let mut depth = 0i64;
            let mut k = i + 2;
            while k < toks.len() {
                let s = &toks[k];
                if s.is_punct("(") {
                    depth += 1;
                } else if s.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if s.kind == TokKind::Ident
                    && table.is_hash_binding(&s.text)
                    && !dotted_use(table, k)
                {
                    findings.push(Finding::new(
                        "hash-iteration",
                        table.at(k),
                        format!(
                            "`.extend()` from hash container `{}` in a result-affecting crate",
                            s.text
                        ),
                        "extend from a BTreeMap/BTreeSet or a sorted Vec instead",
                    ));
                    break;
                }
                k += 1;
            }
        }
    }
}

/// `true` when the hash binding at token `i` is used through a `.` (method
/// call or field access). Inside `for`/`extend` expressions only *bare*
/// references (`for x in map`, `v.extend(&set)`) are iteration of the
/// container itself; dotted uses are either order-free lookups
/// (`0..map.len()`, `map.get(&k)`) or iteration methods the method rule
/// already reports — flagging them here would double-count.
fn dotted_use(table: &SymbolTable<'_>, i: usize) -> bool {
    table.toks.get(i + 1).is_some_and(|d| d.is_punct("."))
}

/// `wall-clock`: `Instant::now` / `SystemTime::now` (including through `use
/// … as` renames) in library code of an unsanctioned crate.
fn check_wall_clock(table: &SymbolTable<'_>, findings: &mut Vec<Finding>) {
    let sanctioned =
        crate::symbols::crate_key(table.rel).is_some_and(|c| WALL_CLOCK_SANCTIONED.contains(&c));
    if sanctioned {
        return;
    }
    let toks = table.toks;
    for (i, t) in toks.iter().enumerate() {
        if !table.lib_code(i) || t.kind != TokKind::Ident {
            continue;
        }
        let resolved = table.resolve(&t.text);
        let clock_type = matches!(
            resolved.rsplit("::").next().unwrap_or(resolved),
            "Instant" | "SystemTime"
        ) || matches!(t.text.as_str(), "Instant" | "SystemTime");
        if clock_type
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
        {
            findings.push(Finding::new(
                "wall-clock",
                table.at(i),
                format!(
                    "`{}::now()` in library code outside the sanctioned crates",
                    t.text
                ),
                "results must be pure functions of inputs; derive timing from the enclosing \
                 telemetry span, or move the measurement into a bin/harness",
            ));
        }
    }
}

/// `thread-id`: branching on `thread::current().id()` — which worker runs a
/// task is schedule-dependent, so any logic keyed on it is nondeterministic.
fn check_thread_id(table: &SymbolTable<'_>, findings: &mut Vec<Finding>) {
    let toks = table.toks;
    for (i, t) in toks.iter().enumerate() {
        if !table.lib_code(i) {
            continue;
        }
        let current_call = t.is_ident("thread")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("current"))
            && toks.get(i + 3).is_some_and(|n| n.is_punct("("))
            && toks.get(i + 4).is_some_and(|n| n.is_punct(")"));
        if current_call
            && toks.get(i + 5).is_some_and(|n| n.is_punct("."))
            && toks.get(i + 6).is_some_and(|n| n.is_ident("id"))
        {
            findings.push(Finding::new(
                "thread-id",
                table.at(i),
                "`thread::current().id()` in library code",
                "pass an explicit worker index instead; thread identity is assigned by the \
                 scheduler and varies run to run",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::symbols::build;

    fn run(rel: &str, src: &str) -> Vec<(String, String)> {
        let toks = lex(src);
        let table = build(rel, &toks);
        check(&table)
            .into_iter()
            .map(|f| (f.rule, f.location))
            .collect()
    }

    const NUMERIC: &str = "crates/markov/src/x.rs";

    #[test]
    fn hash_iteration_methods_flagged_lookups_legal() {
        let src = "use std::collections::HashMap;\n\
                   fn f() {\n\
                       let mut m = HashMap::new();\n\
                       m.insert(1, 2.0);\n\
                       let _ = m.get(&1);\n\
                       for (k, v) in m.iter() { let _ = (k, v); }\n\
                   }";
        let got = run(NUMERIC, src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, "hash-iteration");
        // rel:line:col of the `iter` token (string continuations strip the
        // indentation, so `for` starts the line at column 1).
        assert_eq!(got[0].1, format!("{NUMERIC}:6:17"));
    }

    #[test]
    fn for_in_over_map_flagged() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: HashMap<u32, f64>) -> f64 {\n\
                       let mut s = 0.0;\n\
                       for (_, v) in &m { s += v; }\n\
                       s\n\
                   }";
        let got = run(NUMERIC, src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, "hash-iteration");
    }

    #[test]
    fn extend_from_map_flagged() {
        let src = "use std::collections::HashSet;\n\
                   fn f(s: HashSet<u32>) {\n\
                       let mut v = Vec::new();\n\
                       v.extend(s);\n\
                   }";
        let got = run(NUMERIC, src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, "hash-iteration");
    }

    #[test]
    fn order_free_uses_in_loops_are_legal() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: HashMap<usize, f64>, xs: &[f64]) -> f64 {\n\
                       let mut s = 0.0;\n\
                       for i in 0..m.len() { s += xs[i]; }\n\
                       for (i, x) in xs.iter().enumerate() {\n\
                           if let Some(w) = m.get(&i) { s += w * x; }\n\
                       }\n\
                       s\n\
                   }";
        assert!(run(NUMERIC, src).is_empty());
    }

    #[test]
    fn btreemap_and_non_result_crates_are_legal() {
        let src = "use std::collections::BTreeMap;\n\
                   fn f(m: BTreeMap<u32, f64>) { for (_, v) in m.iter() { let _ = v; } }";
        assert!(run(NUMERIC, src).is_empty());
        // The same HashMap iteration outside a result-affecting crate.
        let src = "use std::collections::HashMap;\n\
                   fn f(m: HashMap<u32, f64>) { for (_, v) in m.iter() { let _ = v; } }";
        assert!(run("crates/telemetry/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_in_tests_is_legal() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\n\
                   mod t { fn f(m: HashMap<u32, u32>) { for k in m.keys() { let _ = k; } } }";
        assert!(run(NUMERIC, src).is_empty());
    }

    #[test]
    fn wall_clock_flagged_outside_sanctioned() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }";
        let got = run(NUMERIC, src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, "wall-clock");
        assert!(run("crates/telemetry/src/x.rs", src).is_empty());
        assert!(run("crates/serve/src/x.rs", src).is_empty());
        // Bin context is exempt: CLIs may time themselves.
        assert!(run("crates/markov/src/main.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_sees_through_renames() {
        let src = "use std::time::Instant as Clock;\nfn f() { let _ = Clock::now(); }";
        let got = run(NUMERIC, src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, "wall-clock");
        // An unrelated type named now-ishly is not flagged.
        let src = "struct Clock; impl Clock { fn now() {} }\nfn f() { let _ = Clock::now(); }";
        assert!(run(NUMERIC, src).is_empty());
    }

    #[test]
    fn system_time_now_flagged() {
        let src = "fn f() { let _ = std::time::SystemTime::now(); }";
        let got = run(NUMERIC, src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, "wall-clock");
    }

    #[test]
    fn thread_id_flagged() {
        let src =
            "use std::thread;\nfn f() -> bool { thread::current().id() == thread::current().id() }";
        let got = run(NUMERIC, src);
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().all(|(r, _)| r == "thread-id"));
        // Plain thread::current() without .id() (e.g. for park/unpark) is
        // not flagged.
        let src = "use std::thread;\nfn f() { thread::current().unpark(); }";
        assert!(run(NUMERIC, src).is_empty());
    }
}
