//! Concurrency rules over the symbol table: `guard-across-spawn`,
//! `blocking-io-handler`, and `lock-order-inversion`.
//!
//! All three rules reason about **guard windows**: a `let g = ….lock()` (or
//! `.read()`, `.write()`, `lock_unpoisoned(…)`) binding opens a window that
//! closes at the end of its enclosing block or at an explicit `drop(g)`.
//! Unbound acquisitions (`lock_unpoisoned(&m).push(x)`) are temporaries —
//! their guard dies at the end of the statement and opens no window.
//!
//! * `guard-across-spawn` fires when a pool `spawn`/`map_indexed` call
//!   occurs inside a live window: the tasks may run on other workers that
//!   need the same lock, and whether that deadlocks depends on the
//!   schedule.
//! * `lock-order-inversion` collects, per crate, every ordered pair
//!   "lock B acquired inside A's window"; if both (A, B) and (B, A) are
//!   observed anywhere in the crate, the order is inconsistent and the
//!   classic two-thread deadlock is schedulable.
//! * `blocking-io-handler` is scoped to the serve crate: inside `route`/
//!   `handle_*` functions (the per-request path), filesystem calls block
//!   the accept loop — caches must be built at startup instead.

use std::collections::BTreeMap;

use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::symbols::{crate_key, LockPair, SymbolTable};

/// One live guard window during the scan.
struct Window {
    /// Name the guard is bound to.
    name: String,
    /// Label of the locked object (receiver chain, `self.`-stripped).
    label: String,
    /// Brace depth at the `let`; the window dies when depth drops below.
    depth: i64,
}

/// Runs the concurrency rules over one file, returning findings plus the
/// lock pairs for the cross-file inversion check.
pub fn check(table: &SymbolTable<'_>) -> (Vec<Finding>, Vec<LockPair>) {
    let mut findings = Vec::new();
    let mut pairs = Vec::new();
    scan_guard_windows(table, &mut findings, &mut pairs);
    check_blocking_io(table, &mut findings);
    (findings, pairs)
}

/// `true` when the token at `i` begins a lock acquisition; returns the
/// label of the locked object.
fn acquisition_label(table: &SymbolTable<'_>, i: usize) -> Option<String> {
    let toks = table.toks;
    let t = &toks[i];
    // METHOD form: RECV . lock/read/write (
    if t.is_punct(".")
        && toks
            .get(i + 1)
            .is_some_and(|m| m.is_ident("lock") || m.is_ident("read") || m.is_ident("write"))
        && toks.get(i + 2).is_some_and(|p| p.is_punct("("))
    {
        return Some(receiver_label(table, i));
    }
    // HELPER form: lock_unpoisoned ( &? EXPR )
    if t.is_ident("lock_unpoisoned") && toks.get(i + 1).is_some_and(|p| p.is_punct("(")) {
        let mut label = Vec::new();
        let mut j = i + 2;
        let mut depth = 1i64;
        while j < toks.len() && depth > 0 {
            let s = &toks[j];
            if s.is_punct("(") {
                depth += 1;
            } else if s.is_punct(")") {
                depth -= 1;
            } else if s.is_punct("[") {
                // Stop at indexing: `&self.queues[victim]` labels `queues`.
                break;
            } else if s.kind == TokKind::Ident && s.text != "self" {
                label.push(s.text.clone());
            }
            j += 1;
        }
        if !label.is_empty() {
            return Some(label.join("."));
        }
    }
    None
}

/// Label for the receiver chain ending just before the `.` at `i`:
/// identifiers joined by `.`, `self` dropped, stopping at anything that is
/// not a plain `ident.ident` chain (calls, indexing).
fn receiver_label(table: &SymbolTable<'_>, i: usize) -> String {
    let toks = table.toks;
    let mut parts = Vec::new();
    let mut j = i;
    while j > 0 {
        let prev = &toks[j - 1];
        if prev.kind == TokKind::Ident {
            if prev.text != "self" {
                parts.push(prev.text.clone());
            }
            j -= 1;
            if j > 0 && toks[j - 1].is_punct(".") {
                j -= 1;
                continue;
            }
        }
        break;
    }
    parts.reverse();
    if parts.is_empty() {
        "<expr>".to_string()
    } else {
        parts.join(".")
    }
}

/// Walks the token stream tracking guard windows; emits
/// `guard-across-spawn` findings and collects lock-order pairs.
fn scan_guard_windows(
    table: &SymbolTable<'_>,
    findings: &mut Vec<Finding>,
    pairs: &mut Vec<LockPair>,
) {
    let toks = table.toks;
    let crate_name = crate_key(table.rel).unwrap_or("workspace").to_string();
    let mut windows: Vec<Window> = Vec::new();
    let mut depth = 0i64;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            windows.retain(|w| w.depth <= depth);
        } else if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|p| p.is_punct("("))
            && toks.get(i + 3).is_some_and(|p| p.is_punct(")"))
        {
            if let Some(name) = toks.get(i + 2) {
                windows.retain(|w| w.name != name.text);
            }
        } else if t.is_ident("let") {
            // let [mut] NAME = <expr with acquisition> ;  opens a window.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|n| n.kind == TokKind::Ident) {
                let mut k = j + 1;
                let mut stmt_depth = 0i64;
                while k < toks.len() {
                    let s = &toks[k];
                    if s.is_punct("(") || s.is_punct("[") || s.is_punct("{") {
                        stmt_depth += 1;
                    } else if s.is_punct(")") || s.is_punct("]") || s.is_punct("}") {
                        stmt_depth -= 1;
                    } else if s.is_punct(";") && stmt_depth <= 0 {
                        break;
                    }
                    if let Some(label) = acquisition_label(table, k) {
                        record_pairs(table, &windows, &crate_name, &label, k, pairs);
                        windows.push(Window {
                            name: name.text.clone(),
                            label,
                            depth,
                        });
                        break;
                    }
                    k += 1;
                }
            }
            i += 1;
            continue;
        } else if let Some(label) = acquisition_label(table, i) {
            // Unbound acquisition: a temporary. It still orders against the
            // live windows, but opens none itself.
            record_pairs(table, &windows, &crate_name, &label, i, pairs);
        }

        // A spawn/map call with any guard window live is the hazard.
        if !windows.is_empty() && table.lib_code(i) {
            let spawnish =
                (t.is_ident("spawn") || t.is_ident("map_indexed") || t.is_ident("try_map_indexed"))
                    && toks.get(i + 1).is_some_and(|p| p.is_punct("("));
            if spawnish {
                let held: Vec<&str> = windows.iter().map(|w| w.label.as_str()).collect();
                findings.push(Finding::new(
                    "guard-across-spawn",
                    table.at(i),
                    format!(
                        "`{}()` called while guard(s) on [{}] are live",
                        t.text,
                        held.join(", ")
                    ),
                    "drop the guard (narrow its scope or call drop(guard)) before handing \
                     work to the pool; a worker needing the same lock deadlocks by schedule",
                ));
            }
        }
        i += 1;
    }
}

/// Records one ordered pair per live window when a new lock is acquired.
fn record_pairs(
    table: &SymbolTable<'_>,
    windows: &[Window],
    crate_name: &str,
    label: &str,
    i: usize,
    pairs: &mut Vec<LockPair>,
) {
    if !table.lib_code(i) {
        return;
    }
    for w in windows {
        if w.label != label {
            pairs.push(LockPair {
                crate_key: crate_name.to_string(),
                first: w.label.clone(),
                second: label.to_string(),
                location: table.at(i),
            });
        }
    }
}

/// `blocking-io-handler`: filesystem calls inside the serve crate's
/// per-request functions (`route`, `handle_*`).
fn check_blocking_io(table: &SymbolTable<'_>, findings: &mut Vec<Finding>) {
    if crate_key(table.rel) != Some("serve") {
        return;
    }
    let toks = table.toks;
    for (i, t) in toks.iter().enumerate() {
        if !table.lib_code(i) {
            continue;
        }
        let handler = table
            .parsed
            .enclosing_fn(i)
            .is_some_and(|f| f.name == "route" || f.name.starts_with("handle_"));
        if !handler {
            continue;
        }
        let fs_call = t.is_ident("fs") && toks.get(i + 1).is_some_and(|p| p.is_punct("::"));
        let file_call = t.is_ident("File")
            && toks.get(i + 1).is_some_and(|p| p.is_punct("::"))
            && toks
                .get(i + 2)
                .is_some_and(|m| m.is_ident("open") || m.is_ident("create"));
        if fs_call || file_call {
            let what = if fs_call {
                toks.get(i + 2).map_or("fs call", |m| m.text.as_str())
            } else {
                "File::open"
            };
            findings.push(Finding::new(
                "blocking-io-handler",
                table.at(i),
                format!("blocking filesystem call `{what}` inside a request handler"),
                "read the file once at startup (or on a reload endpoint) and serve the \
                 cached bytes; handlers must touch only memory and the socket",
            ));
        }
    }
}

/// Cross-file pass: one finding per lock pair observed in both orders
/// within a crate. Pairs are keyed order-insensitively and reported once,
/// at the location of the lexicographically-later direction's acquisition.
pub fn lock_order_findings(pairs: &[LockPair]) -> Vec<Finding> {
    let mut directions: BTreeMap<(String, String, String), &LockPair> = BTreeMap::new();
    for p in pairs {
        directions
            .entry((p.crate_key.clone(), p.first.clone(), p.second.clone()))
            .or_insert(p);
    }
    let mut findings = Vec::new();
    for ((krate, a, b), p) in &directions {
        // Report each unordered pair once, from its lexicographically
        // larger direction, so the output is deterministic.
        if a < b {
            continue;
        }
        if let Some(reverse) = directions.get(&(krate.clone(), b.clone(), a.clone())) {
            findings.push(Finding::new(
                "lock-order-inversion",
                p.location.clone(),
                format!(
                    "crate `{krate}` acquires `{a}` then `{b}` here, but `{b}` then `{a}` at {}",
                    reverse.location
                ),
                "pick one acquisition order for the two locks and use it everywhere \
                 (document it where the locks are declared)",
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::symbols::build;

    fn run(rel: &str, src: &str) -> (Vec<(String, String)>, Vec<LockPair>) {
        let toks = lex(src);
        let table = build(rel, &toks);
        let (findings, pairs) = check(&table);
        (
            findings.into_iter().map(|f| (f.rule, f.location)).collect(),
            pairs,
        )
    }

    const LIB: &str = "crates/markov/src/x.rs";

    #[test]
    fn guard_across_spawn_flagged() {
        let src = "fn f(pool: &pool::Pool, m: &std::sync::Mutex<Vec<u32>>) {\n\
                   let guard = m.lock();\n\
                   pool.scope(|s| { s.spawn(|| {}); });\n\
                   drop(guard);\n\
                   }";
        let (got, _) = run(LIB, src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, "guard-across-spawn");
    }

    #[test]
    fn dropped_guard_is_legal() {
        let src = "fn f(pool: &pool::Pool, m: &std::sync::Mutex<Vec<u32>>) {\n\
                   let guard = m.lock();\n\
                   drop(guard);\n\
                   pool.scope(|s| { s.spawn(|| {}); });\n\
                   }";
        let (got, _) = run(LIB, src);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn scoped_guard_is_legal() {
        let src = "fn f(pool: &pool::Pool, m: &std::sync::Mutex<Vec<u32>>) {\n\
                   { let guard = m.lock(); guard.len(); }\n\
                   pool.scope(|s| { s.spawn(|| {}); });\n\
                   }";
        let (got, _) = run(LIB, src);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn temporary_acquisition_is_legal_across_spawn() {
        // An unbound lock temporary dies at the statement end — spawning
        // afterwards is fine.
        let src = "fn f(pool: &pool::Pool, m: &std::sync::Mutex<Vec<u32>>) {\n\
                   m.lock().push(1);\n\
                   pool.scope(|s| { s.spawn(|| {}); });\n\
                   }";
        let (got, _) = run(LIB, src);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn map_indexed_under_guard_flagged() {
        let src = "fn f(p: &pool::Pool, m: &std::sync::RwLock<u32>) {\n\
                   let g = m.read();\n\
                   let _ = p.map_indexed(vec![1], |_, x| x);\n\
                   }";
        let (got, _) = run(LIB, src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, "guard-across-spawn");
    }

    #[test]
    fn lock_pairs_and_inversion() {
        let src_ab = "fn f(a: &M, b: &M) { let g = a.lock(); let h = b.lock(); }";
        let src_ba = "fn g(a: &M, b: &M) { let h = b.lock(); let g = a.lock(); }";
        let (_, mut pairs) = run(LIB, src_ab);
        let (_, pairs2) = run("crates/markov/src/y.rs", src_ba);
        pairs.extend(pairs2);
        let findings = lock_order_findings(&pairs);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "lock-order-inversion");
        assert!(findings[0].message.contains('`'));
        // Consistent order across both files: no finding.
        let (_, mut ok) = run(LIB, src_ab);
        let (_, ok2) = run("crates/markov/src/y.rs", src_ab);
        ok.extend(ok2);
        assert!(lock_order_findings(&ok).is_empty());
        // Same pair in different crates does not collide.
        let (_, mut cross) = run(LIB, src_ab);
        let (_, cross2) = run("crates/telemetry/src/y.rs", src_ba);
        cross.extend(cross2);
        assert!(lock_order_findings(&cross).is_empty());
    }

    #[test]
    fn lock_unpoisoned_helper_is_tracked() {
        let src = "fn f(&self, p: &pool::Pool) {\n\
                   let state = lock_unpoisoned(&self.state);\n\
                   p.scope(|s| { s.spawn(|| {}); });\n\
                   }";
        let (got, _) = run(LIB, src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].0 == "guard-across-spawn");
    }

    #[test]
    fn blocking_io_in_serve_handlers_only() {
        let handler = "fn handle_metrics(s: &State) -> String { \
                       std::fs::read_to_string(\"x\").unwrap_or_default() }";
        let (got, _) = run("crates/serve/src/lib.rs", handler);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, "blocking-io-handler");
        // Startup code in the same crate may read files.
        let startup = "fn load_scenarios(dir: &Path) -> String { \
                       std::fs::read_to_string(dir).unwrap_or_default() }";
        let (got, _) = run("crates/serve/src/lib.rs", startup);
        assert!(got.is_empty(), "{got:?}");
        // Handlers elsewhere are out of scope for this rule.
        let (got, _) = run(LIB, handler);
        assert!(got.is_empty(), "{got:?}");
    }
}
