//! `gsu-lint` CLI: the deny-by-default static-analysis gate.
//!
//! Exit codes: 0 clean (or everything suppressed / warn-only), 1 at least
//! one unsuppressed deny finding, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use gsu_lint::{
    apply_allowlist, diag::Layer, has_deny, report, sanitize, semantics, source, symbols,
    Allowlist, Finding, RULES,
};
use performability::GsuParams;

const USAGE: &str = "\
gsu-lint: static analysis over source policy, symbols, and GSU model semantics

USAGE:
    gsu-lint [--all | --source | --models] [OPTIONS]
    gsu-lint sanitize [--quick] [OPTIONS]
    gsu-lint self-test
    gsu-lint validate-jsonl <FILE>
    gsu-lint --list-rules

OPTIONS:
    --all               run every static pass (default)
    --source            source-policy + symbol passes only
    --models            model-semantics pass only
    --quick             (sanitize) fewer seeds, smallest scenarios; CI budget
    --root <DIR>        workspace root (default: .)
    --format <FMT>      table (default) or jsonl
    --allow <FILE>      allowlist path (default: <root>/lint.allow)
    --emit-telemetry    write findings to <root>/results/lint-findings.jsonl
                        for the gsu-serve /metrics exposition
    --list-rules        print the rule catalog and exit
    -h, --help          this text

EXIT CODES:
    0  no unsuppressed deny findings
    1  at least one unsuppressed deny finding
    2  usage or I/O error";

struct Options {
    run_source: bool,
    run_models: bool,
    root: PathBuf,
    jsonl: bool,
    allow_path: Option<PathBuf>,
    emit_telemetry: bool,
}

fn main() -> ExitCode {
    telemetry::init_from_env("GSU_TELEMETRY");
    telemetry::init_log_from_env("GSU_LOG");
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("gsu-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("self-test") => return run_self_test(),
        Some("validate-jsonl") => {
            let path = args
                .get(1)
                .ok_or_else(|| format!("validate-jsonl needs a file\n\n{USAGE}"))?;
            return run_validate_jsonl(path);
        }
        Some("sanitize") => return run_sanitize(&args[1..]),
        _ => {}
    }

    let opts = parse_options(args)?;
    let mut findings = Vec::new();
    if opts.run_source {
        findings
            .extend(source::lint_tree(&opts.root).map_err(|e| format!("source pass failed: {e}"))?);
        findings.extend(
            symbols::lint_tree(&opts.root).map_err(|e| format!("symbol pass failed: {e}"))?,
        );
    }
    if opts.run_models {
        let mut span = telemetry::span("lint.models");
        let mut model_findings = semantics::check_gsu_models(&GsuParams::paper_baseline());
        // The scenario catalog rides the models pass: every committed .gsu
        // file must parse and compile to semantically sound models. A
        // missing directory just means this tree has no catalog.
        let scenarios_dir = opts.root.join("scenarios");
        if scenarios_dir.is_dir() {
            model_findings.extend(semantics::check_scenarios(&scenarios_dir));
        }
        span.record("findings", model_findings.len());
        findings.extend(model_findings);
    }

    report_and_gate(&opts, findings)
}

/// Shared back half of the static passes and the sanitizer: allowlist,
/// telemetry counters, rendering, exit code.
fn report_and_gate(opts: &Options, findings: Vec<Finding>) -> Result<ExitCode, String> {
    let allow_path = opts
        .allow_path
        .clone()
        .unwrap_or_else(|| opts.root.join("lint.allow"));
    let allow = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
        Allowlist::parse(&text)?
    } else if opts.allow_path.is_some() {
        return Err(format!("allowlist {} not found", allow_path.display()));
    } else {
        Allowlist::default()
    };
    let (reported, suppressed) = apply_allowlist(findings, &allow);

    telemetry::counter("lint.findings.reported", reported.len() as u64);
    telemetry::counter("lint.findings.suppressed", suppressed as u64);
    if opts.emit_telemetry {
        let results_dir = opts.root.join("results");
        std::fs::create_dir_all(&results_dir)
            .map_err(|e| format!("creating {}: {e}", results_dir.display()))?;
        let out = results_dir.join("lint-findings.jsonl");
        std::fs::write(&out, report::render_jsonl(&reported))
            .map_err(|e| format!("writing {}: {e}", out.display()))?;
        eprintln!(
            "gsu-lint: wrote {} record(s) to {}",
            reported.len(),
            out.display()
        );
    }

    if opts.jsonl {
        print!("{}", report::render_jsonl(&reported));
        eprint!("{}", report::render_summary(&reported, suppressed));
    } else {
        print!("{}", report::render_table(&reported));
        print!("{}", report::render_summary(&reported, suppressed));
    }
    Ok(if has_deny(&reported) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

/// `gsu-lint sanitize [--quick]`: the differential-schedule harness.
fn run_sanitize(args: &[String]) -> Result<ExitCode, String> {
    let quick = args.iter().any(|a| a == "--quick");
    let rest: Vec<String> = args.iter().filter(|a| *a != "--quick").cloned().collect();
    let opts = parse_options(&rest)?;
    let report = sanitize::run(&sanitize::SanitizeOptions {
        quick,
        scenario_dir: opts.root.join("scenarios"),
    })?;
    for line in &report.log {
        eprintln!("sanitize: {line}");
    }
    eprintln!(
        "sanitize: {} differential run(s), {} finding(s)",
        report.runs,
        report.findings.len()
    );
    report_and_gate(&opts, report.findings)
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        run_source: true,
        run_models: true,
        root: PathBuf::from("."),
        jsonl: false,
        allow_path: None,
        emit_telemetry: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => {
                opts.run_source = true;
                opts.run_models = true;
            }
            "--source" => {
                opts.run_source = true;
                opts.run_models = false;
            }
            "--models" => {
                opts.run_source = false;
                opts.run_models = true;
            }
            "--root" => {
                opts.root = PathBuf::from(next_value(&mut it, "--root")?);
            }
            "--format" => match next_value(&mut it, "--format")?.as_str() {
                "table" => opts.jsonl = false,
                "jsonl" => opts.jsonl = true,
                other => return Err(format!("unknown format {other:?} (table or jsonl)")),
            },
            "--allow" => {
                opts.allow_path = Some(PathBuf::from(next_value(&mut it, "--allow")?));
            }
            "--emit-telemetry" => opts.emit_telemetry = true,
            "--list-rules" => {
                print_rules();
                std::process::exit(0);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn next_value<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn print_rules() {
    println!("{:<26}  {:<4}  {:<7}  SUMMARY", "RULE", "SEV", "LAYER");
    for r in RULES {
        let layer = match r.layer {
            Layer::Source => "source",
            Layer::Symbol => "symbol",
            Layer::Model => "model",
            Layer::Runtime => "runtime",
        };
        println!(
            "{:<26}  {:<4}  {:<7}  {}",
            r.id, r.severity, layer, r.summary
        );
    }
}

fn run_self_test() -> Result<ExitCode, String> {
    let log = gsu_lint::self_test()?;
    for line in &log {
        println!("self-test: {line}");
    }
    println!("self-test: OK ({} checks)", log.len());
    Ok(ExitCode::SUCCESS)
}

fn run_validate_jsonl(path: &str) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let findings: Vec<Finding> = report::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "validate-jsonl: {path}: {} valid record(s) (schema gsu-lint-v2; v1 accepted)",
        findings.len()
    );
    Ok(ExitCode::SUCCESS)
}
