//! The symbol- and dataflow-aware pass: per-file symbol tables and the
//! parallel tree driver for the [`crate::determinism`] and
//! [`crate::concurrency`] rule families.
//!
//! For every non-vendor `.rs` file this pass lexes, parses
//! ([`crate::parser`]), and builds a [`SymbolTable`]: the `use` bindings,
//! the fn items, the set of local names whose type is (best-effort) known
//! to be a `HashMap`/`HashSet`, and the file's `#[cfg(test)]` regions. The
//! rule families then walk the token stream with that context. Lock
//! acquisition *pairs* (lock B taken while guard A is live) are collected
//! here per file and judged globally per crate after the parallel map, so
//! an A-then-B file and a B-then-A file in the same crate still collide.

use std::path::Path;

use crate::diag::Finding;
use crate::lexer::{self, Tok, TokKind};
use crate::parser::{self, ParsedFile};
use crate::source::{classify, workspace_sources, FileContext};

/// Crate directories whose outputs are part of an analysis result: any
/// schedule- or hash-order-dependence here changes published numbers. The
/// facade crate (`src/`) rides along as `"facade"`.
pub const RESULT_AFFECTING: &[&str] = &[
    "core", "facade", "markov", "san", "scenario", "sim", "sparse",
];

/// Crates whose library code may legitimately read wall clocks: telemetry
/// owns the clock, the bench harness measures with it, and serve stamps
/// request latencies with it. Everything else must stay a pure function of
/// its inputs.
pub const WALL_CLOCK_SANCTIONED: &[&str] = &["bench", "serve", "telemetry"];

/// The crate key of a workspace-relative path: `crates/<dir>/…` maps to
/// `<dir>`, the facade's `src/…` to `facade`.
pub fn crate_key(rel: &str) -> Option<&str> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        return rest.split('/').next();
    }
    if rel.starts_with("src/") {
        return Some("facade");
    }
    None
}

/// `true` when `rel` belongs to a crate whose outputs are analysis results.
pub fn is_result_affecting(rel: &str) -> bool {
    crate_key(rel).is_some_and(|c| RESULT_AFFECTING.contains(&c))
}

/// One observed "lock B acquired while guard on A is live" event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockPair {
    /// Crate the file belongs to (locks are compared within one crate).
    pub crate_key: String,
    /// Label of the lock whose guard was live first.
    pub first: String,
    /// Label of the lock acquired under it.
    pub second: String,
    /// `path:line:col` of the inner acquisition.
    pub location: String,
}

/// Everything the symbol rules know about one file.
pub struct SymbolTable<'a> {
    /// Workspace-relative path (`/`-separated).
    pub rel: &'a str,
    /// The file's token stream.
    pub toks: &'a [Tok],
    /// Parsed item structure.
    pub parsed: ParsedFile,
    /// `#[cfg(test)]` / `#[test]` token regions (rules skip them).
    pub tests: Vec<(usize, usize)>,
    /// Context classification of the file.
    pub context: FileContext,
    /// Local names whose type involves `HashMap`/`HashSet` (best-effort:
    /// `let` initialisers mentioning the types, and `name: HashMap<…>`
    /// annotations on fields, params, and locals).
    pub hash_bindings: Vec<String>,
}

impl SymbolTable<'_> {
    /// Location string `rel:line:col` for token index `i`.
    pub fn at(&self, i: usize) -> String {
        match self.toks.get(i) {
            Some(t) => format!("{}:{}:{}", self.rel, t.line, t.col),
            None => self.rel.to_string(),
        }
    }

    /// `true` when token `i` sits in library (non-test) code.
    pub fn lib_code(&self, i: usize) -> bool {
        self.context == FileContext::Lib && !lexer::in_regions(&self.tests, i)
    }

    /// `true` when `name` is a known hash-container binding.
    pub fn is_hash_binding(&self, name: &str) -> bool {
        self.hash_bindings.iter().any(|b| b == name)
    }

    /// Resolves `local` through the use table, falling back to the name
    /// itself (covers fully spelled-out paths checked by their last
    /// segment).
    pub fn resolve<'b>(&'b self, local: &'b str) -> &'b str {
        self.parsed.resolve(local).unwrap_or(local)
    }
}

/// Builds the symbol table for one file.
pub fn build<'a>(rel: &'a str, toks: &'a [Tok]) -> SymbolTable<'a> {
    let parsed = parser::parse(toks);
    let tests = lexer::test_regions(toks);
    let context = classify(rel);
    let hash_bindings = collect_hash_bindings(toks, &parsed);
    SymbolTable {
        rel,
        toks,
        parsed,
        tests,
        context,
        hash_bindings,
    }
}

/// `true` when the identifier names a std hash container, directly or
/// through the file's use table.
fn is_hash_type(parsed: &ParsedFile, name: &str) -> bool {
    let resolved = parsed.resolve(name).unwrap_or(name);
    matches!(
        resolved.rsplit("::").next().unwrap_or(resolved),
        "HashMap" | "HashSet"
    ) || matches!(name, "HashMap" | "HashSet")
}

/// Best-effort inference of hash-container bindings:
///
/// * `let [mut] NAME … = <expr>;` where the initialiser mentions a hash
///   type (`HashMap::new()`, `collect::<HashSet<_>>()`, full paths, …);
/// * `NAME : HashMap <` / `NAME : HashSet <` annotations — struct fields,
///   fn params, and annotated locals alike.
fn collect_hash_bindings(toks: &[Tok], parsed: &ParsedFile) -> Vec<String> {
    let mut names = Vec::new();
    let mut push = |n: &str| {
        if !names.iter().any(|x| x == n) {
            names.push(n.to_string());
        }
    };
    for (i, t) in toks.iter().enumerate() {
        // Annotation form: NAME : [&]['a][mut] [path::]Hash{Map,Set} <
        if t.kind == TokKind::Ident && toks.get(i + 1).is_some_and(|n| n.is_punct(":")) {
            let mut j = i + 2;
            // Skip reference sigils, lifetimes, and `mut` (`m: &HashMap<…>`
            // params iterate just as nondeterministically as owned ones).
            while toks.get(j).is_some_and(|t| {
                t.is_punct("&")
                    || t.is_punct("&&")
                    || t.is_ident("mut")
                    || t.kind == TokKind::Lifetime
            }) {
                j += 1;
            }
            // Skip a leading path (std :: collections ::).
            while toks.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(j + 1).is_some_and(|n| n.is_punct("::"))
            {
                j += 2;
            }
            if toks
                .get(j)
                .is_some_and(|n| n.is_ident("HashMap") || n.is_ident("HashSet"))
            {
                push(&t.text);
            }
        }
        // Initialiser form: let [mut] NAME [ : … ] = … hash-ish … ;
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|n| n.kind == TokKind::Ident) else {
                continue;
            };
            // Scan the statement to its `;` at bracket depth 0; if any
            // identifier in it is a hash type, NAME is a hash binding.
            let mut depth = 0i64;
            let mut k = j + 1;
            while k < toks.len() {
                let s = &toks[k];
                if s.is_punct("(") || s.is_punct("[") || s.is_punct("{") {
                    depth += 1;
                } else if s.is_punct(")") || s.is_punct("]") || s.is_punct("}") {
                    depth -= 1;
                } else if s.is_punct(";") && depth <= 0 {
                    break;
                } else if s.kind == TokKind::Ident && is_hash_type(parsed, &s.text) {
                    push(&name.text);
                    break;
                }
                k += 1;
            }
        }
    }
    names
}

/// Runs the symbol rules over one file's source text.
pub fn lint_symbols(rel: &str, text: &str) -> Vec<Finding> {
    analyze(rel, text).0
}

/// Runs the symbol rules over one file, also returning the lock pairs for
/// the cross-file inversion check.
pub fn analyze(rel: &str, text: &str) -> (Vec<Finding>, Vec<LockPair>) {
    if classify(rel) == FileContext::Vendor {
        return (Vec::new(), Vec::new());
    }
    let toks = lexer::lex(text);
    let table = build(rel, &toks);
    let mut findings = crate::determinism::check(&table);
    let (concurrency_findings, pairs) = crate::concurrency::check(&table);
    findings.extend(concurrency_findings);
    (findings, pairs)
}

/// Runs the symbol pass over the whole workspace: files fan out on the
/// ambient [`pool::Pool`] via `map_indexed` (deterministic order at any
/// thread count), per-file findings concatenate in sorted path order, and
/// the cross-file lock-order check runs over the merged pairs. The whole
/// pass is wrapped in a `lint.parse` span so `/metrics` shows its cost.
///
/// # Errors
///
/// I/O failures walking or reading sources.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut span = telemetry::span("lint.parse");
    let files = workspace_sources(root)?;
    span.record("files", files.len());
    let per_file: Vec<std::io::Result<(Vec<Finding>, Vec<LockPair>)>> = pool::Pool::current()
        .map_indexed(files, |_, rel| {
            let text = std::fs::read_to_string(root.join(&rel))?;
            Ok(analyze(&rel.to_string_lossy().replace('\\', "/"), &text))
        });
    let mut findings = Vec::new();
    let mut pairs = Vec::new();
    for result in per_file {
        let (f, p) = result?;
        findings.extend(f);
        pairs.extend(p);
    }
    findings.extend(crate::concurrency::lock_order_findings(&pairs));
    span.record("findings", findings.len());
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_keys_classify() {
        assert_eq!(crate_key("crates/markov/src/steady.rs"), Some("markov"));
        assert_eq!(crate_key("src/lib.rs"), Some("facade"));
        assert_eq!(crate_key("scripts/check.sh"), None);
        assert!(is_result_affecting("crates/sparse/src/csr.rs"));
        assert!(is_result_affecting("src/lib.rs"));
        assert!(!is_result_affecting("crates/telemetry/src/lib.rs"));
    }

    #[test]
    fn hash_bindings_from_initialisers_and_annotations() {
        let src = "#![forbid(unsafe_code)]\n\
                   use std::collections::HashMap;\n\
                   struct S { cache: HashMap<u32, f64>, name: String }\n\
                   fn f(byref: &HashMap<u32, f64>, n: &u32) {\n\
                       let mut seen = HashMap::new();\n\
                       let ann: std::collections::HashSet<u32> = Default::default();\n\
                       let plain = Vec::new();\n\
                       seen.insert(1, 2); ann.len(); plain.len();\n\
                   }";
        let toks = lexer::lex(src);
        let table = build("crates/markov/src/x.rs", &toks);
        assert!(table.is_hash_binding("cache"));
        assert!(table.is_hash_binding("seen"));
        assert!(table.is_hash_binding("ann"));
        assert!(table.is_hash_binding("byref"));
        assert!(!table.is_hash_binding("plain"));
        assert!(!table.is_hash_binding("name"));
        assert!(!table.is_hash_binding("n"));
    }

    #[test]
    fn renamed_hash_import_still_detected() {
        let src = "use std::collections::HashMap as FastMap;\n\
                   fn f() { let m = FastMap::new(); m.insert(1, 2); }";
        let toks = lexer::lex(src);
        let table = build("crates/markov/src/x.rs", &toks);
        assert!(table.is_hash_binding("m"));
    }
}
