//! `gsu-lint` — std-only static analysis for the guarded-upgrade workspace.
//!
//! Four passes share one finding pipeline:
//!
//! * **Layer 1 (source policy, [`source`])** — a hand-rolled lexer
//!   ([`lexer`]) walks every non-vendor `.rs` file and enforces the
//!   workspace's coding policy: no `unsafe`, no `.unwrap()`/`panic!` in
//!   library code, no stray `env::var` or `println!`, no float `==`, and a
//!   mandatory `#![forbid(unsafe_code)]` on every crate root.
//! * **Layer 2 (symbols, [`symbols`])** — a lightweight item parser
//!   ([`parser`]) recovers `use` bindings and fn bodies per file, over
//!   which the [`determinism`] rules (no hash-order iteration in
//!   result-affecting crates, no wall clocks outside
//!   telemetry/bench/serve, no thread-id logic) and the [`concurrency`]
//!   rules (no guard held across pool spawns, consistent lock order, no
//!   blocking I/O in serve handlers) run.
//! * **Layer 3 (model semantics, [`semantics`])** — builds the paper's
//!   actual GSU reward models and checks what the type system cannot:
//!   generator rows sum to ~0, rates are finite and non-negative,
//!   reducibility matches the solver each model is handed to, SAN
//!   activities are live, rewards have support, and parameters sit in
//!   their domains.
//! * **Layer 4 (runtime sanitizer, [`sanitize`])** — a differential
//!   harness that re-runs reference scenarios under permuted worker
//!   schedules and thread counts, diffing outputs bitwise, with
//!   checked-float tripwires armed in the sparse kernels.
//!
//! Findings ([`diag::Finding`]) render as a human table or as
//! tamper-evident `gsu-lint-v2` JSONL ([`report`]), can be suppressed by a
//! committed fingerprint allowlist (`lint.allow`), and gate CI: any
//! unsuppressed `deny` finding exits non-zero.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrency;
pub mod determinism;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod sanitize;
pub mod semantics;
pub mod source;
pub mod symbols;

pub use diag::{rule_info, Allowlist, Finding, Severity, RULES, SCHEMA};

/// Fixture that must lint clean despite raw strings containing `unsafe`,
/// commented-out `unwrap()` calls, lifetimes, and the `== 0.0` idiom.
const TRICKY_FIXTURE: &str = include_str!("../fixtures/tricky.rs");
/// Fixture violating every source rule exactly once.
const VIOLATIONS_FIXTURE: &str = include_str!("../fixtures/violations.rs");
/// Fixture violating the symbol-layer (determinism + concurrency) rules.
const SYMBOL_FIXTURE: &str = include_str!("../fixtures/symbol-violations.rs");

/// Path both fixtures pretend to live at: a library crate root, so the full
/// policy (including `forbid-unsafe`) applies.
const FIXTURE_PATH: &str = "crates/fixture/src/lib.rs";
/// Path the symbol fixture pretends to live at: inside a result-affecting
/// crate, so the determinism rules apply at full strength.
const SYMBOL_FIXTURE_PATH: &str = "crates/markov/src/lint_fixture.rs";

/// Splits `findings` into (reported, suppressed-count) under `allow`.
pub fn apply_allowlist(findings: Vec<Finding>, allow: &Allowlist) -> (Vec<Finding>, usize) {
    let before = findings.len();
    let reported: Vec<Finding> = findings.into_iter().filter(|f| !allow.allows(f)).collect();
    let suppressed = before - reported.len();
    (reported, suppressed)
}

/// `true` when `reported` contains a gate-failing finding.
pub fn has_deny(reported: &[Finding]) -> bool {
    reported.iter().any(|f| f.severity == Severity::Deny)
}

/// Runs the built-in self-test: the linter linting known-good and
/// known-bad fixtures, round-tripping its own JSONL, rejecting tampered
/// records, and catching a seeded generator defect. Returns one log line
/// per passed step.
///
/// # Errors
///
/// A description of the first failed step.
pub fn self_test() -> Result<Vec<String>, String> {
    let mut log = Vec::new();

    // 1. Tricky tokens produce no findings.
    let clean = source::lint_source(FIXTURE_PATH, TRICKY_FIXTURE);
    if !clean.is_empty() {
        let rules: Vec<&str> = clean.iter().map(|f| f.rule.as_str()).collect();
        return Err(format!(
            "tricky fixture should lint clean but raised {rules:?} (first at {})",
            clean[0].location
        ));
    }
    log.push(format!(
        "tricky fixture: 0 findings across {} lines of raw strings, nested comments, \
         lifetimes, and sentinel comparisons",
        TRICKY_FIXTURE.lines().count()
    ));

    // 2. The violations fixture trips every source rule exactly once.
    let violations = source::lint_source(FIXTURE_PATH, VIOLATIONS_FIXTURE);
    let mut got: Vec<&str> = violations.iter().map(|f| f.rule.as_str()).collect();
    got.sort_unstable();
    let mut want = vec![
        "float-eq",
        "forbid-unsafe",
        "no-env-var",
        "no-print",
        "no-unwrap",
        "unsafe-block",
    ];
    want.sort_unstable();
    if got != want {
        return Err(format!(
            "violations fixture raised {got:?}, expected exactly {want:?}"
        ));
    }
    log.push(format!(
        "violations fixture: all {} source rules fired exactly once",
        want.len()
    ));

    // 3. JSONL round-trips losslessly through the validating parser.
    let doc = report::render_jsonl(&violations);
    let back = report::parse_jsonl(&doc)
        .map_err(|e| format!("self-emitted jsonl failed validation: {e}"))?;
    if back != violations {
        return Err("jsonl round-trip changed the findings".to_string());
    }
    log.push(format!(
        "jsonl: {} records round-tripped with fingerprints intact",
        back.len()
    ));

    // 4. Tampered records are rejected (severity downgrade attempt).
    let tampered = doc.replace("\"deny\"", "\"warn\"");
    if report::parse_jsonl(&tampered).is_ok() {
        return Err("tampered jsonl (deny -> warn) was accepted".to_string());
    }
    log.push("jsonl: tampered record rejected by fingerprint check".to_string());

    // 5. The semantic pass catches a seeded row-sum defect of 1e-6.
    let dense = sparsela::DenseMatrix::from_vec(2, 2, vec![-1.0, 1.0 + 1e-6, 0.0, 0.0])
        .map_err(|e| format!("self-test matrix construction failed: {e:?}"))?;
    let q = sparsela::CsrMatrix::from_dense(&dense);
    let seeded = semantics::check_generator("self-test", &q, semantics::SolverIntent::Transient);
    let hit = seeded
        .iter()
        .find(|f| f.rule == "ctmc-row-sum")
        .ok_or_else(|| {
            format!("seeded 1e-6 row-sum defect was not caught; findings: {seeded:?}")
        })?;
    if !hit.location.contains("state 0") {
        return Err(format!(
            "row-sum finding should name state 0, got {:?}",
            hit.location
        ));
    }
    log.push("semantics: seeded 1e-6 row-sum defect caught and named state 0".to_string());

    // 6. The symbol pass catches each seeded determinism/concurrency defect
    //    exactly once, and the fingerprints survive a two-line shift (they
    //    key on rule + path + message, not positions).
    let symbol = symbols::lint_symbols(SYMBOL_FIXTURE_PATH, SYMBOL_FIXTURE);
    let mut got: Vec<&str> = symbol.iter().map(|f| f.rule.as_str()).collect();
    got.sort_unstable();
    let want = vec![
        "guard-across-spawn",
        "hash-iteration",
        "thread-id",
        "wall-clock",
    ];
    if got != want {
        return Err(format!(
            "symbol fixture raised {got:?}, expected exactly {want:?}"
        ));
    }
    let shifted_text = format!("\n\n{SYMBOL_FIXTURE}");
    let shifted = symbols::lint_symbols(SYMBOL_FIXTURE_PATH, &shifted_text);
    let prints: Vec<u64> = symbol.iter().map(Finding::fingerprint).collect();
    let shifted_prints: Vec<u64> = shifted.iter().map(Finding::fingerprint).collect();
    if prints != shifted_prints {
        return Err("symbol-rule fingerprints changed under a two-line shift".to_string());
    }
    log.push(format!(
        "symbols: all {} seeded determinism/concurrency defects caught once, \
         fingerprints shift-stable",
        want.len()
    ));

    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes() {
        let log = self_test().unwrap();
        assert_eq!(log.len(), 6);
    }

    #[test]
    fn allowlist_partitions() {
        let findings = source::lint_source(FIXTURE_PATH, VIOLATIONS_FIXTURE);
        let n = findings.len();
        let all: String = findings
            .iter()
            .map(|f| format!("{:016x} {}\n", f.fingerprint(), f.rule))
            .collect();
        let allow = Allowlist::parse(&all).unwrap();
        let (reported, suppressed) = apply_allowlist(findings.clone(), &allow);
        assert!(reported.is_empty());
        assert_eq!(suppressed, n);
        assert!(!has_deny(&reported));
        let (reported, suppressed) = apply_allowlist(findings, &Allowlist::default());
        assert_eq!(reported.len(), n);
        assert_eq!(suppressed, 0);
        assert!(has_deny(&reported));
    }
}
