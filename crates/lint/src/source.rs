//! Layer 1: the lexical source-policy pass.
//!
//! Walks every `.rs` file under the workspace's `crates/*/src` directories
//! (plus the facade crate's `src/`), classifies each file by context, and
//! applies the source rules over the token stream produced by
//! [`crate::lexer`]. Vendored stand-in crates (`crates/vendor/*`) are
//! skipped entirely: they mirror external code and follow their upstreams'
//! policies, not ours.

use std::path::{Path, PathBuf};

use crate::diag::Finding;
use crate::lexer::{self, Tok};

/// Library modules allowed to read process environment variables directly.
/// Everything else must take configuration through parameters so behaviour
/// stays a pure function of inputs.
const ENV_SANCTIONED: &[&str] = &[
    // The sanitizer drives the pool's schedule knobs through the
    // environment (that is the channel the pool reads) and must save and
    // restore the prior values around each run.
    "crates/lint/src/sanitize.rs",
    "crates/pool/src/lib.rs",
    "crates/telemetry/src/lib.rs",
    "crates/telemetry/src/log.rs",
];

/// Library modules allowed to write to stdout/stderr directly — the
/// telemetry logger is the sink everything else must route through.
const PRINT_SANCTIONED: &[&str] = &["crates/telemetry/src/log.rs"];

/// How a file's context modulates the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileContext {
    /// `crates/vendor/*` — skipped entirely.
    Vendor,
    /// Binaries, integration tests, benches, examples: CLI surfaces where
    /// `panic!`/prints are the error-reporting idiom.
    Bin,
    /// `crates/bench` — the experiment harness; prints tables by design.
    Harness,
    /// Everything else: full policy applies.
    Lib,
}

/// Classifies a workspace-relative path (`/`-separated).
pub fn classify(rel: &str) -> FileContext {
    if rel.starts_with("crates/vendor/") {
        return FileContext::Vendor;
    }
    if rel.starts_with("crates/bench/") {
        return FileContext::Harness;
    }
    if rel.contains("/bin/")
        || rel.ends_with("/main.rs")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
    {
        return FileContext::Bin;
    }
    FileContext::Lib
}

/// `true` when `rel` is a library crate root that must carry
/// `#![forbid(unsafe_code)]`.
fn is_lib_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
}

/// Lints one file's source text. `rel` is the workspace-relative path used
/// in locations and for context classification.
pub fn lint_source(rel: &str, text: &str) -> Vec<Finding> {
    let context = classify(rel);
    if context == FileContext::Vendor {
        return Vec::new();
    }
    let toks = lexer::lex(text);
    let tests = lexer::test_regions(&toks);
    let mut findings = Vec::new();
    let at = |t: &Tok| format!("{rel}:{}", t.line);

    for (i, t) in toks.iter().enumerate() {
        // `unsafe` is denied everywhere, test code included — the workspace
        // compiles under #![forbid(unsafe_code)].
        if t.is_ident("unsafe") {
            findings.push(Finding::new(
                "unsafe-block",
                at(t),
                "`unsafe` in workspace code",
                "rewrite with safe primitives; the whole workspace builds under \
                 #![forbid(unsafe_code)]",
            ));
            continue;
        }

        // The remaining rules target library code outside #[cfg(test)].
        let lib_code = context == FileContext::Lib && !lexer::in_regions(&tests, i);
        if !lib_code {
            continue;
        }

        if t.is_punct(".") {
            if let (Some(name), Some(open)) = (toks.get(i + 1), toks.get(i + 2)) {
                if (name.is_ident("unwrap") || name.is_ident("expect")) && open.is_punct("(") {
                    findings.push(Finding::new(
                        "no-unwrap",
                        at(name),
                        format!("`.{}()` in library code", name.text),
                        "propagate the error (`?`), return a typed error, or recover with \
                         unwrap_or_else; reserve unreachable! for proven invariants",
                    ));
                }
            }
        }

        if t.is_ident("panic") && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            findings.push(Finding::new(
                "no-unwrap",
                at(t),
                "`panic!` in library code",
                "return a typed error; use unreachable! only for proven invariants",
            ));
        }

        if (t.is_ident("println")
            || t.is_ident("eprintln")
            || t.is_ident("print")
            || t.is_ident("eprint"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && !PRINT_SANCTIONED.contains(&rel)
        {
            findings.push(Finding::new(
                "no-print",
                at(t),
                format!("`{}!` in a library crate", t.text),
                "emit through telemetry::log (or return the text to the caller)",
            ));
        }

        if t.is_ident("env")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.is_ident("var") || n.is_ident("var_os"))
            && !ENV_SANCTIONED.contains(&rel)
        {
            findings.push(Finding::new(
                "no-env-var",
                at(t),
                "direct environment read in library code",
                "take the value as a parameter, or extend a sanctioned config module",
            ));
        }

        if t.is_punct("==") || t.is_punct("!=") {
            let nonzero_float = |n: Option<&Tok>| {
                n.and_then(Tok::float_value)
                    .is_some_and(|v| v != 0.0 || v.is_nan())
            };
            // Zero-valued literals stay allowed: `x == 0.0` against an exact
            // sentinel (sparsity, "not yet set") is an established idiom
            // here; anything else needs a tolerance.
            if nonzero_float(i.checked_sub(1).and_then(|j| toks.get(j)))
                || nonzero_float(toks.get(i + 1))
            {
                findings.push(Finding::new(
                    "float-eq",
                    at(t),
                    format!("`{}` against a non-zero float literal", t.text),
                    "compare with sparsela::vector::approx_eq(a, b, tol)",
                ));
            }
        }
    }

    if is_lib_crate_root(rel) && !has_forbid_unsafe(&toks) {
        findings.push(Finding::new(
            "forbid-unsafe",
            format!("{rel}:1"),
            "crate root lacks #![forbid(unsafe_code)]",
            "add `#![forbid(unsafe_code)]` beneath the crate docs",
        ));
    }

    findings
}

/// Token-level check for `#![forbid(unsafe_code)]` — immune to the
/// attribute appearing inside a comment or string.
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(8).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && w[3].is_ident("forbid")
            && w[4].is_punct("(")
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(")")
            && w[7].is_punct("]")
    })
}

/// Collects every `.rs` file the policy applies to, workspace-relative and
/// sorted (deterministic report order). Vendor crates are excluded here so
/// the parallel pass never even reads them.
///
/// # Errors
///
/// I/O failures while walking the tree.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let entry = entry?;
            if entry.file_name() == "vendor" || !entry.path().is_dir() {
                continue;
            }
            let src = entry.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        collect_rs(&facade_src, &mut files)?;
    }
    let mut rels: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect();
    rels.sort();
    Ok(rels)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the source pass over the whole workspace, fanning file handlers out
/// on the ambient [`pool::Pool`] (sized by `GSU_THREADS`). Findings come
/// back in deterministic path order regardless of thread count.
///
/// # Errors
///
/// I/O failures walking or reading sources.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut span = telemetry::span("lint.source");
    let files = workspace_sources(root)?;
    span.record("files", files.len());
    let per_file: Vec<std::io::Result<Vec<Finding>>> =
        pool::Pool::current().map_indexed(files, |_, rel| {
            let text = std::fs::read_to_string(root.join(&rel))?;
            Ok(lint_source(
                &rel.to_string_lossy().replace('\\', "/"),
                &text,
            ))
        });
    let mut findings = Vec::new();
    for result in per_file {
        findings.extend(result?);
    }
    span.record("findings", findings.len());
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(rel: &str, src: &str) -> Vec<String> {
        lint_source(rel, src).into_iter().map(|f| f.rule).collect()
    }

    const LIB: &str = "crates/demo/src/lib.rs";

    #[test]
    fn vendor_is_skipped() {
        assert!(rules("crates/vendor/rand/src/lib.rs", "unsafe { }").is_empty());
    }

    #[test]
    fn unsafe_denied_even_in_tests_and_bins() {
        let src = "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod t { fn f() { unsafe { } } }";
        assert_eq!(rules(LIB, src), ["unsafe-block"]);
        assert_eq!(
            rules("crates/demo/src/bin/tool.rs", "fn main() { unsafe { } }"),
            ["unsafe-block"]
        );
    }

    #[test]
    fn unwrap_expect_panic_in_lib_only() {
        let src = "#![forbid(unsafe_code)]\nfn f() { x.unwrap(); y.expect(\"m\"); panic!(\"b\") }";
        assert_eq!(rules(LIB, src), ["no-unwrap", "no-unwrap", "no-unwrap"]);
        // Bins, tests, and the bench harness are exempt.
        assert!(rules("crates/demo/src/bin/t.rs", "fn main() { x.unwrap() }").is_empty());
        // The bench harness is exempt from no-unwrap, but its crate root
        // still owes the forbid attribute.
        assert!(rules(
            "crates/bench/src/lib.rs",
            "#![forbid(unsafe_code)]\nfn f() { x.unwrap() }"
        )
        .is_empty());
        let gated = "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod t { fn f() { x.unwrap() } }";
        assert!(rules(LIB, gated).is_empty());
        // unwrap_or_else is a different identifier, not a violation; and a
        // commented-out unwrap is invisible to the lexer.
        assert!(rules(
            LIB,
            "#![forbid(unsafe_code)]\nfn f() { x.unwrap_or_else(g); /* x.unwrap() */ }"
        )
        .is_empty());
        // unreachable! stays available for invariants.
        assert!(rules(
            LIB,
            "#![forbid(unsafe_code)]\nfn f() { unreachable!(\"proven\") }"
        )
        .is_empty());
    }

    #[test]
    fn env_var_sanctioned_modules() {
        let src = "#![forbid(unsafe_code)]\nfn f() { let _ = std::env::var(\"X\"); }";
        assert_eq!(rules(LIB, src), ["no-env-var"]);
        assert!(rules("crates/pool/src/lib.rs", src).is_empty());
        assert!(rules("crates/telemetry/src/log.rs", src).is_empty());
    }

    #[test]
    fn float_eq_flags_nonzero_only() {
        let base = "#![forbid(unsafe_code)]\n";
        assert_eq!(
            rules(LIB, &format!("{base}fn f(x: f64) -> bool {{ x == 1.5 }}")),
            ["float-eq"]
        );
        assert_eq!(
            rules(
                LIB,
                &format!("{base}fn f(x: f64) -> bool {{ 2.0e-3 != x }}")
            ),
            ["float-eq"]
        );
        assert!(rules(LIB, &format!("{base}fn f(x: f64) -> bool {{ x == 0.0 }}")).is_empty());
        // Integer comparisons are not floats.
        assert!(rules(LIB, &format!("{base}fn f(x: u32) -> bool {{ x == 1 }}")).is_empty());
    }

    #[test]
    fn print_routed_through_telemetry() {
        let src = "#![forbid(unsafe_code)]\nfn f() { println!(\"x\"); eprintln!(\"y\") }";
        assert_eq!(rules(LIB, src), ["no-print", "no-print"]);
        assert!(rules("crates/telemetry/src/log.rs", src).is_empty());
        assert!(rules("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn forbid_unsafe_on_lib_roots() {
        assert_eq!(rules(LIB, "pub fn f() {}"), ["forbid-unsafe"]);
        assert!(rules(LIB, "#![forbid(unsafe_code)]\npub fn f() {}").is_empty());
        // Only genuine attribute tokens count.
        assert_eq!(
            rules(LIB, "// #![forbid(unsafe_code)]\npub fn f() {}"),
            ["forbid-unsafe"]
        );
        // Non-root modules are not required to repeat it.
        assert!(rules("crates/demo/src/other.rs", "pub fn f() {}").is_empty());
    }

    #[test]
    fn findings_carry_file_and_line() {
        let src = "#![forbid(unsafe_code)]\n\nfn f() {\n    x.unwrap();\n}\n";
        let f = &lint_source(LIB, src)[0];
        assert_eq!(f.location, format!("{LIB}:4"));
        assert_eq!(f.severity, crate::diag::Severity::Deny);
    }
}
