//! Findings, the rule catalog, fingerprints, and the `gsu-lint-v2` JSONL
//! schema.
//!
//! A [`Finding`] is one rule violation at one location. Its **fingerprint**
//! is an FNV-1a hash of the rule id, the location with any trailing
//! line/column numbers stripped, and the message — stable across unrelated
//! edits that only shift positions, which is what makes a committed
//! `lint.allow` practical. v2 locations carry `path:line:col`; stripping up
//! to two trailing numeric segments keeps every v1 (`path:line`)
//! fingerprint byte-identical, so existing allowlists keep working.

use std::collections::BTreeSet;
use std::fmt;

/// Version tag carried by every JSONL record.
pub const SCHEMA: &str = "gsu-lint-v2";

/// The previous schema tag; [`parse_jsonl_line`] still accepts it so
/// pre-v2 findings files (and archived results) remain readable.
pub const SCHEMA_V1: &str = "gsu-lint-v1";

/// How a finding affects the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported but never fails the gate.
    Warn,
    /// Fails the gate (exit 1) unless suppressed by `lint.allow`.
    Deny,
}

impl Severity {
    /// The lowercase wire name (`"warn"` / `"deny"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }

    /// Parses the wire name back.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which pass produces a rule's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// The lexical source-policy pass over workspace `.rs` files.
    Source,
    /// The symbol-/dataflow-aware pass over the parsed item structure.
    Symbol,
    /// The model-semantics pass over constructed GSU models.
    Model,
    /// The differential runtime sanitizer (`gsu-lint sanitize`).
    Runtime,
}

/// One entry of the rule catalog.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule id, used in reports, JSONL, and `lint.allow` notes.
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// Producing pass.
    pub layer: Layer,
    /// One-line description shown by `--list-rules`.
    pub summary: &'static str,
}

/// The complete rule catalog. Rule ids in JSONL records must come from this
/// table; `parse_jsonl_line` rejects unknown ids.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "unsafe-block",
        severity: Severity::Deny,
        layer: Layer::Source,
        summary: "no `unsafe` anywhere in workspace code (vendored crates excluded)",
    },
    RuleInfo {
        id: "forbid-unsafe",
        severity: Severity::Deny,
        layer: Layer::Source,
        summary: "every non-vendor library crate root must carry #![forbid(unsafe_code)]",
    },
    RuleInfo {
        id: "no-unwrap",
        severity: Severity::Deny,
        layer: Layer::Source,
        summary: "no .unwrap()/.expect()/panic! in library code outside #[cfg(test)] \
                  (unreachable!/debug_assert! stay available for invariants)",
    },
    RuleInfo {
        id: "no-env-var",
        severity: Severity::Deny,
        layer: Layer::Source,
        summary: "no direct env::var outside the sanctioned config modules",
    },
    RuleInfo {
        id: "float-eq",
        severity: Severity::Deny,
        layer: Layer::Source,
        summary: "no ==/!= against a non-zero float literal; use a tolerance helper \
                  (sparsela::vector::approx_eq)",
    },
    RuleInfo {
        id: "no-print",
        severity: Severity::Deny,
        layer: Layer::Source,
        summary: "no println!/eprintln! in library crates; route through telemetry::log",
    },
    RuleInfo {
        id: "hash-iteration",
        severity: Severity::Deny,
        layer: Layer::Symbol,
        summary: "no iteration (iter/keys/values/into_iter/drain/for-in/extend-from) over a \
                  HashMap/HashSet in a result-affecting crate; lookup-only maps stay legal",
    },
    RuleInfo {
        id: "wall-clock",
        severity: Severity::Deny,
        layer: Layer::Symbol,
        summary: "no Instant::now/SystemTime in library code outside telemetry/bench/serve \
                  (results must be pure functions of inputs)",
    },
    RuleInfo {
        id: "thread-id",
        severity: Severity::Deny,
        layer: Layer::Symbol,
        summary: "no thread::current().id() logic in library code; which worker runs a task \
                  is schedule-dependent",
    },
    RuleInfo {
        id: "guard-across-spawn",
        severity: Severity::Deny,
        layer: Layer::Symbol,
        summary: "no Mutex/RwLock guard held across a pool spawn/map_indexed call \
                  (deadlock-by-schedule hazard)",
    },
    RuleInfo {
        id: "blocking-io-handler",
        severity: Severity::Deny,
        layer: Layer::Symbol,
        summary: "no blocking filesystem I/O inside serve request handlers off the accept \
                  path; cache at startup instead",
    },
    RuleInfo {
        id: "lock-order-inversion",
        severity: Severity::Deny,
        layer: Layer::Symbol,
        summary: "two locks of one crate are acquired in both nesting orders \
                  (A-then-B and B-then-A)",
    },
    RuleInfo {
        id: "sanitize-mismatch",
        severity: Severity::Deny,
        layer: Layer::Runtime,
        summary: "a differential schedule run (threads x permuted wake order) produced \
                  bitwise-different results for the same inputs",
    },
    RuleInfo {
        id: "checked-float",
        severity: Severity::Deny,
        layer: Layer::Runtime,
        summary: "a sparsela kernel produced NaN/Inf/denormal output under checked-float \
                  mode (debug builds)",
    },
    RuleInfo {
        id: "model-build",
        severity: Severity::Deny,
        layer: Layer::Model,
        summary: "a GSU reward model failed to build or generate its state space",
    },
    RuleInfo {
        id: "ctmc-row-sum",
        severity: Severity::Deny,
        layer: Layer::Model,
        summary: "a generator row does not sum to ~0",
    },
    RuleInfo {
        id: "ctmc-negative-rate",
        severity: Severity::Deny,
        layer: Layer::Model,
        summary: "a generator off-diagonal entry is negative",
    },
    RuleInfo {
        id: "ctmc-nonfinite",
        severity: Severity::Deny,
        layer: Layer::Model,
        summary: "a generator entry is NaN or infinite",
    },
    RuleInfo {
        id: "ctmc-not-irreducible",
        severity: Severity::Deny,
        layer: Layer::Model,
        summary: "a chain handed to the steady-state solver is not a unichain \
                  (more than one closed recurrent class)",
    },
    RuleInfo {
        id: "ctmc-no-absorbing",
        severity: Severity::Deny,
        layer: Layer::Model,
        summary: "a chain solved as absorbing has no absorbing state",
    },
    RuleInfo {
        id: "ctmc-absorbing-unreachable",
        severity: Severity::Deny,
        layer: Layer::Model,
        summary: "a state of an absorbing chain cannot reach any absorbing state",
    },
    RuleInfo {
        id: "san-dead-activity",
        severity: Severity::Deny,
        layer: Layer::Model,
        summary: "a timed activity never fires in the tangible chain",
    },
    RuleInfo {
        id: "san-place-bound",
        severity: Severity::Warn,
        layer: Layer::Model,
        summary: "a place exceeds the expected token bound (GSU models are safe nets)",
    },
    RuleInfo {
        id: "san-enabling-eval",
        severity: Severity::Deny,
        layer: Layer::Model,
        summary: "rate evaluation failed in a reachable marking (negative/non-finite rate)",
    },
    RuleInfo {
        id: "san-case-probability",
        severity: Severity::Deny,
        layer: Layer::Model,
        summary: "case-probability evaluation failed in a reachable marking",
    },
    RuleInfo {
        id: "reward-zero-support",
        severity: Severity::Deny,
        layer: Layer::Model,
        summary: "a reward predicate holds in no reachable marking",
    },
    RuleInfo {
        id: "reward-nonfinite",
        severity: Severity::Deny,
        layer: Layer::Model,
        summary: "a reward rate is NaN or infinite in a reachable marking",
    },
    RuleInfo {
        id: "reward-impulse-invalid",
        severity: Severity::Deny,
        layer: Layer::Model,
        summary: "an impulse reward targets a non-timed or dead activity",
    },
    RuleInfo {
        id: "params-domain",
        severity: Severity::Deny,
        layer: Layer::Model,
        summary: "a GsuParams field is outside its domain",
    },
    RuleInfo {
        id: "params-phi-range",
        severity: Severity::Deny,
        layer: Layer::Model,
        summary: "a guarded-operation duration phi lies outside [0, theta]",
    },
    RuleInfo {
        id: "scenario-parse",
        severity: Severity::Deny,
        layer: Layer::Model,
        summary: "a committed .gsu scenario fails to parse, load, or match its file stem",
    },
];

/// Looks a rule up by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// One rule violation at one location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id from [`RULES`].
    pub rule: String,
    /// Effective severity.
    pub severity: Severity,
    /// `path:line` for source findings; a model path such as
    /// `model RMGd / activity 'recover'` for semantic ones.
    pub location: String,
    /// What is wrong, naming the offending token/state/parameter.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
}

impl Finding {
    /// Creates a finding with the catalog severity of `rule` (deny when the
    /// rule id is unknown — failing closed beats failing open).
    pub fn new(
        rule: &str,
        location: impl Into<String>,
        message: impl Into<String>,
        suggestion: impl Into<String>,
    ) -> Finding {
        Finding {
            rule: rule.to_string(),
            severity: rule_info(rule).map_or(Severity::Deny, |r| r.severity),
            location: location.into(),
            message: message.into(),
            suggestion: suggestion.into(),
        }
    }

    /// The location with up to two trailing `:<digits>` segments stripped
    /// (`:line` in v1 locations, `:line:col` in v2 ones), so fingerprints
    /// survive edits that only shift positions. One-segment v1 locations
    /// strip to the same key as before — the second pass is a no-op on a
    /// path ending in `.rs` — which keeps v1 fingerprints byte-identical.
    pub fn fingerprint_key(&self) -> &str {
        let mut key = self.location.as_str();
        for _ in 0..2 {
            match key.rsplit_once(':') {
                Some((head, tail))
                    if !tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit()) =>
                {
                    key = head;
                }
                _ => break,
            }
        }
        key
    }

    /// FNV-1a fingerprint of (rule, line-less location, message).
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for part in [self.rule.as_str(), self.fingerprint_key(), &self.message] {
            h = fnv1a(h, part.as_bytes());
            h = fnv1a(h, &[0]);
        }
        h
    }

    /// Renders the finding as one `gsu-lint-v1` JSONL record.
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"schema\":\"{SCHEMA}\",\"rule\":\"{}\",\"severity\":\"{}\",\
             \"location\":\"{}\",\"message\":\"{}\",\"suggestion\":\"{}\",\
             \"fingerprint\":\"{:016x}\"}}",
            json_escape(&self.rule),
            self.severity,
            json_escape(&self.location),
            json_escape(&self.message),
            json_escape(&self.suggestion),
            self.fingerprint()
        )
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn json_unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code =
                    u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("bad codepoint {code:#x}"))?);
            }
            other => return Err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

/// Parses one flat string-valued JSON object `{"k":"v",...}` — the only
/// shape `gsu-lint-v1` emits.
fn parse_flat_object(line: &str) -> Result<Vec<(String, String)>, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "record is not a JSON object".to_string())?;
    let mut pairs = Vec::new();
    let mut rest = body.trim_start();
    while !rest.is_empty() {
        let mut fields = Vec::new();
        for _ in 0..2 {
            rest = rest.trim_start();
            let inner = rest
                .strip_prefix('"')
                .ok_or_else(|| format!("expected a string at {rest:?}"))?;
            // Find the closing quote, skipping escaped characters.
            let mut end = None;
            let mut skip = false;
            for (i, c) in inner.char_indices() {
                if skip {
                    skip = false;
                } else if c == '\\' {
                    skip = true;
                } else if c == '"' {
                    end = Some(i);
                    break;
                }
            }
            let end = end.ok_or_else(|| "unterminated string".to_string())?;
            fields.push(json_unescape(&inner[..end])?);
            rest = inner[end + 1..].trim_start();
            if fields.len() == 1 {
                rest = rest
                    .strip_prefix(':')
                    .ok_or_else(|| "expected ':' after key".to_string())?;
            }
        }
        let mut fields = fields.into_iter();
        match (fields.next(), fields.next()) {
            (Some(k), Some(v)) => pairs.push((k, v)),
            _ => return Err("malformed key/value pair".to_string()),
        }
        rest = rest.trim_start();
        rest = match rest.strip_prefix(',') {
            Some(tail) => tail.trim_start(),
            None if rest.is_empty() => rest,
            None => return Err(format!("expected ',' or end of object at {rest:?}")),
        };
    }
    Ok(pairs)
}

/// Parses and validates one `gsu-lint-v1` JSONL record: the schema tag must
/// match, the rule id must be in the catalog, the severity must parse, and
/// the embedded fingerprint must equal the recomputed one. This makes the
/// round-trip check in CI an end-to-end integrity test, not a syntax check.
pub fn parse_jsonl_line(line: &str) -> Result<Finding, String> {
    let pairs = parse_flat_object(line)?;
    let get = |key: &str| -> Result<&str, String> {
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| format!("missing field {key:?}"))
    };
    let schema = get("schema")?;
    if schema != SCHEMA && schema != SCHEMA_V1 {
        return Err(format!(
            "schema {schema:?}, expected {SCHEMA:?} (or legacy {SCHEMA_V1:?})"
        ));
    }
    let rule = get("rule")?;
    let info = rule_info(rule).ok_or_else(|| format!("unknown rule id {rule:?}"))?;
    let severity = get("severity")?;
    let severity =
        Severity::parse(severity).ok_or_else(|| format!("unknown severity {severity:?}"))?;
    // The fingerprint does not cover severity, so pin it to the catalog:
    // a record downgrading a deny rule to warn is a tampered record.
    if severity != info.severity {
        return Err(format!(
            "severity {severity} does not match the catalog severity {} for rule {rule}",
            info.severity
        ));
    }
    let finding = Finding {
        rule: rule.to_string(),
        severity,
        location: get("location")?.to_string(),
        message: get("message")?.to_string(),
        suggestion: get("suggestion")?.to_string(),
    };
    let claimed = get("fingerprint")?;
    let expected = format!("{:016x}", finding.fingerprint());
    if claimed != expected {
        return Err(format!(
            "fingerprint {claimed} does not match recomputed {expected} for rule {rule}"
        ));
    }
    Ok(finding)
}

/// A committed suppression list (`lint.allow`): one 16-hex-digit
/// fingerprint per line, `#` comments and blank lines ignored, anything
/// after the fingerprint treated as a note.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    entries: BTreeSet<u64>,
}

impl Allowlist {
    /// Parses the file contents.
    ///
    /// # Errors
    ///
    /// Describes the first malformed line — a typo'd fingerprint silently
    /// suppressing nothing would defeat the gate.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = BTreeSet::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let token = line.split_whitespace().next().unwrap_or_default();
            if token.len() != 16 || !token.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(format!(
                    "lint.allow line {}: expected a 16-hex-digit fingerprint, got {token:?}",
                    i + 1
                ));
            }
            let value = u64::from_str_radix(token, 16)
                .map_err(|_| format!("lint.allow line {}: unparsable fingerprint", i + 1))?;
            entries.insert(value);
        }
        Ok(Allowlist { entries })
    }

    /// Number of suppressions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no suppressions are listed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `finding` is suppressed.
    pub fn allows(&self, finding: &Finding) -> bool {
        self.entries.contains(&finding.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding::new(
            "no-unwrap",
            "crates/demo/src/lib.rs:42",
            "`.unwrap()` in library code",
            "propagate the error or use unwrap_or_else",
        )
    }

    #[test]
    fn catalog_ids_are_unique() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(
                RULES.iter().skip(i + 1).all(|s| s.id != r.id),
                "duplicate rule id {}",
                r.id
            );
        }
    }

    #[test]
    fn fingerprint_ignores_line_numbers() {
        let a = sample();
        let mut b = sample();
        b.location = "crates/demo/src/lib.rs:9000".to_string();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = sample();
        c.message = "different".to_string();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_line_and_column() {
        let mut a = sample();
        a.location = "crates/demo/src/lib.rs:42:7".to_string();
        let mut b = sample();
        b.location = "crates/demo/src/lib.rs:9000:1".to_string();
        assert_eq!(a.fingerprint_key(), "crates/demo/src/lib.rs");
        assert_eq!(a.fingerprint(), b.fingerprint());
        // A v1 single-segment location strips to the same key, so the v2
        // strip rule does not invalidate existing allowlists.
        assert_eq!(a.fingerprint(), sample().fingerprint());
    }

    #[test]
    fn legacy_v1_records_still_parse() {
        let line = sample().to_jsonl().replace(SCHEMA, SCHEMA_V1);
        let back = parse_jsonl_line(&line).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn model_locations_fingerprint_whole() {
        let f = Finding::new("san-dead-activity", "model RMGd / activity 'x'", "m", "s");
        assert_eq!(f.fingerprint_key(), "model RMGd / activity 'x'");
    }

    #[test]
    fn jsonl_round_trips() {
        let f = Finding::new(
            "float-eq",
            "crates/demo/src/lib.rs:7",
            "`==` against float literal 1.5 with a \"quote\" and a \\ backslash",
            "use approx_eq(a, b, tol)",
        );
        let line = f.to_jsonl();
        let back = parse_jsonl_line(&line).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn parse_rejects_tampering() {
        let line = sample().to_jsonl();
        assert!(parse_jsonl_line(&line.replace("no-unwrap", "made-up-rule")).is_err());
        assert!(parse_jsonl_line(&line.replace("deny", "fatal")).is_err());
        // Changing the message invalidates the fingerprint.
        assert!(parse_jsonl_line(&line.replace("library code", "library kode")).is_err());
        assert!(parse_jsonl_line("not json").is_err());
        assert!(parse_jsonl_line("{\"schema\":\"gsu-lint-v0\"}").is_err());
    }

    #[test]
    fn allowlist_parses_and_suppresses() {
        let f = sample();
        let text = format!(
            "# suppressions\n{:016x}  no-unwrap demo\n\n",
            f.fingerprint()
        );
        let allow = Allowlist::parse(&text).unwrap();
        assert_eq!(allow.len(), 1);
        assert!(allow.allows(&f));
        let other = Finding::new("no-print", "x", "y", "z");
        assert!(!allow.allows(&other));
        assert!(Allowlist::parse("zz\n").is_err());
        assert!(Allowlist::parse("1234\n").is_err());
        assert!(Allowlist::parse("").unwrap().is_empty());
    }
}
