//! Layer 2: the model-semantics pass.
//!
//! Unlike the lexical pass, this layer checks the **actual constructed
//! models**: it builds the paper's three SAN reward models (`RMGd`, `RMGp`,
//! `RMNd`) from [`GsuParams`], generates their tangible state spaces, and
//! verifies the properties every solver in the pipeline silently assumes —
//! generator well-formedness, reachability structure matching the solver
//! the model is fed to, SAN liveness/boundedness, and reward-variable
//! well-formedness over the *reachable* markings. Every finding names the
//! offending state, activity, pair, or parameter.

use markov::graph::{can_reach, strongly_connected_components};
use performability::gsu::{rmgd, rmgp, rmnd, GopStateSets};
use performability::GsuParams;
use san::{RewardSpec, SanModel, StateSpace};
use sparsela::CsrMatrix;

use crate::diag::Finding;

/// Which solver family a chain is destined for — determines the structural
/// properties the generator must satisfy on top of well-formedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverIntent {
    /// Steady-state solution: the chain must be a unichain — exactly one
    /// closed recurrent class (transient lead-in states are fine; RMGp's
    /// initial clean-dirty-bit states are transient by design).
    SteadyState,
    /// Absorbing-chain analysis: at least one absorbing state must exist
    /// and every state must be able to reach one.
    Absorbing,
    /// Transient solution only: no structural requirement beyond
    /// well-formedness.
    Transient,
}

/// Absolute row-sum tolerance, scaled to the row's magnitude: construction
/// rounding grows with the exit rate (the GSU chains carry rates up to
/// ~1.3e4), while a genuinely mis-assembled generator is off by far more
/// than 1e-10 relative.
fn row_sum_tolerance(exit_rate: f64) -> f64 {
    f64::max(1e-12, 1e-10 * exit_rate)
}

/// Groups states into strongly connected components and returns the
/// **closed** ones — classes no edge leaves, i.e. the chain's recurrent
/// classes. Each inner vec is sorted ascending.
fn closed_classes(q: &CsrMatrix) -> Vec<Vec<usize>> {
    let (comp, n_comp) = strongly_connected_components(q);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_comp];
    let mut open = vec![false; n_comp];
    for i in 0..q.rows() {
        members[comp[i]].push(i);
        for (j, v) in q.row(i) {
            if v != 0.0 && comp[j] != comp[i] {
                open[comp[i]] = true;
            }
        }
    }
    members
        .into_iter()
        .zip(open)
        .filter(|&(_, is_open)| !is_open)
        .map(|(class, _)| class)
        .collect()
}

/// Checks one CTMC generator matrix for well-formedness and for the
/// structural property demanded by `intent`. `name` labels the model in
/// finding locations.
pub fn check_generator(name: &str, q: &CsrMatrix, intent: SolverIntent) -> Vec<Finding> {
    let mut findings = Vec::new();
    let n = q.rows();
    let mut absorbing = Vec::new();
    for i in 0..n {
        let mut row_sum = 0.0;
        let mut exit = 0.0;
        let mut well_formed = true;
        for (j, v) in q.row(i) {
            if !v.is_finite() {
                findings.push(Finding::new(
                    "ctmc-nonfinite",
                    format!("model {name} / state {i}"),
                    format!("generator entry q[{i},{j}] = {v} is not finite"),
                    "inspect the rate functions feeding this transition",
                ));
                well_formed = false;
                continue;
            }
            if j != i {
                if v < 0.0 {
                    findings.push(Finding::new(
                        "ctmc-negative-rate",
                        format!("model {name} / state {i}"),
                        format!("off-diagonal generator entry q[{i},{j}] = {v} is negative"),
                        "transition rates must be non-negative; check the model generator",
                    ));
                    well_formed = false;
                }
                exit += v.abs();
            }
            row_sum += v;
        }
        if well_formed {
            let tol = row_sum_tolerance(exit);
            if row_sum.abs() > tol {
                findings.push(Finding::new(
                    "ctmc-row-sum",
                    format!("model {name} / state {i}"),
                    format!(
                        "generator row {i} sums to {row_sum:e} (tolerance {tol:e}); \
                         a generator row must sum to 0"
                    ),
                    "the diagonal must equal minus the off-diagonal sum; check the assembly",
                ));
            }
        }
        if exit == 0.0 {
            absorbing.push(i);
        }
    }
    match intent {
        SolverIntent::SteadyState => {
            let closed = closed_classes(q);
            if closed.len() != 1 {
                let reps: Vec<usize> = closed.iter().map(|c| c[0]).collect();
                findings.push(Finding::new(
                    "ctmc-not-irreducible",
                    format!("model {name}"),
                    format!(
                        "chain has {} closed recurrent classes (representative states \
                         {reps:?}) but the steady-state solver requires a unichain",
                        closed.len()
                    ),
                    "merge the recurrent classes or switch to a transient/absorbing solution",
                ));
            }
        }
        SolverIntent::Absorbing => {
            if absorbing.is_empty() {
                findings.push(Finding::new(
                    "ctmc-no-absorbing",
                    format!("model {name}"),
                    "chain is analysed as absorbing but has no absorbing state",
                    "an absorbing analysis needs at least one state with exit rate 0",
                ));
            } else {
                let ok = can_reach(q, &absorbing);
                for (i, reached) in ok.iter().enumerate() {
                    if !reached {
                        findings.push(Finding::new(
                            "ctmc-absorbing-unreachable",
                            format!("model {name} / state {i}"),
                            format!("state {i} cannot reach any absorbing state"),
                            "absorption probabilities are undefined from this state; check \
                             the transition structure",
                        ));
                    }
                }
            }
        }
        SolverIntent::Transient => {}
    }
    findings
}

/// Checks a generated SAN state space: dead timed activities, place bounds,
/// and total evaluation of rate and case-probability functions over every
/// reachable tangible marking.
pub fn check_san(
    name: &str,
    model: &SanModel,
    space: &StateSpace,
    place_bound: u32,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for id in san::structural::dead_timed_activities(model, space) {
        findings.push(Finding::new(
            "san-dead-activity",
            format!("model {name} / activity '{}'", model.activity_name(id)),
            format!(
                "timed activity '{}' never fires in any of the {} reachable markings",
                model.activity_name(id),
                space.n_states()
            ),
            "its enabling predicate can never hold (or its input marking is unreachable); \
             fix the predicate or remove the activity",
        ));
    }
    for (p, b) in san::structural::place_bounds(space).iter().enumerate() {
        if b.max > place_bound {
            findings.push(Finding::new(
                "san-place-bound",
                format!("model {name} / place '{}'", model.place_name_by_index(p)),
                format!(
                    "place '{}' reaches {} tokens (expected bound {place_bound})",
                    model.place_name_by_index(p),
                    b.max
                ),
                "the GSU models are safe nets; an unbounded place usually means a missing \
                 input arc",
            ));
        }
    }
    for i in 0..space.n_states() {
        let marking = space.marking(i);
        match model.enabled_timed_activities(marking) {
            Ok(enabled) => {
                for (id, _) in enabled {
                    if let Err(e) = model.case_distribution_of(id, marking) {
                        findings.push(Finding::new(
                            "san-case-probability",
                            format!(
                                "model {name} / activity '{}' / state {i}",
                                model.activity_name(id)
                            ),
                            format!("case distribution undefined in reachable marking: {e}"),
                            "case probabilities must be finite, non-negative, and not all \
                             zero in every reachable marking where the activity is enabled",
                        ));
                    }
                }
            }
            Err(e) => {
                findings.push(Finding::new(
                    "san-enabling-eval",
                    format!("model {name} / state {i}"),
                    format!("rate evaluation failed in reachable marking {marking}: {e}"),
                    "rate functions must return finite non-negative values in every \
                     reachable marking",
                ));
            }
        }
    }
    findings
}

/// Checks one reward specification against the reachable state space:
/// every predicate-rate pair must hold somewhere, reward rates must stay
/// finite, and impulses must target live timed activities.
pub fn check_reward(
    name: &str,
    spec_name: &str,
    spec: &RewardSpec,
    model: &SanModel,
    space: &StateSpace,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (pair, support) in spec.pair_support(space).iter().enumerate() {
        if *support == 0 {
            findings.push(Finding::new(
                "reward-zero-support",
                format!("model {name} / reward '{spec_name}' / pair {pair}"),
                format!(
                    "predicate-rate pair {pair} of reward '{spec_name}' holds in none of \
                     the {} reachable markings",
                    space.n_states()
                ),
                "the predicate describes an unreachable marking; fix the predicate or the \
                 model",
            ));
        }
    }
    for i in 0..space.n_states() {
        let rate = spec.rate_of(space.marking(i));
        if !rate.is_finite() {
            findings.push(Finding::new(
                "reward-nonfinite",
                format!("model {name} / reward '{spec_name}' / state {i}"),
                format!(
                    "reward rate evaluates to {rate} in reachable marking {}",
                    space.marking(i)
                ),
                "reward rates must be finite in every reachable marking",
            ));
        }
    }
    let dead = san::structural::dead_timed_activities(model, space);
    for id in spec.impulse_activities() {
        let activity = model.activity_name(id);
        if !matches!(model.activity_kind_of(id), san::ActivityKind::Timed) {
            findings.push(Finding::new(
                "reward-impulse-invalid",
                format!("model {name} / reward '{spec_name}' / activity '{activity}'"),
                format!("impulse reward on instantaneous activity '{activity}'"),
                "impulse rewards accrue on timed completions only",
            ));
        } else if dead.contains(&id) {
            findings.push(Finding::new(
                "reward-impulse-invalid",
                format!("model {name} / reward '{spec_name}' / activity '{activity}'"),
                format!("impulse reward on dead activity '{activity}' can never be earned"),
                "the activity never fires; fix its enabling or drop the impulse",
            ));
        }
    }
    findings
}

/// Checks the parameter domain: every `GsuParams` field in range and each
/// candidate guarded-operation duration within `[0, theta]`.
pub fn check_params(params: &GsuParams, phis: &[f64]) -> Vec<Finding> {
    let mut findings = Vec::new();
    if let Err(e) = params.validate() {
        findings.push(Finding::new(
            "params-domain",
            "GsuParams".to_string(),
            e.to_string(),
            "see GsuParams::validate for the per-field domains",
        ));
    }
    for &phi in phis {
        if let Err(e) = params.validate_phi(phi) {
            findings.push(Finding::new(
                "params-phi-range",
                format!("GsuParams / phi = {phi}"),
                e.to_string(),
                "the guarded-operation duration must satisfy 0 <= phi <= theta",
            ));
        }
    }
    findings
}

/// Expected token bound for the GSU nets (all three paper models are safe,
/// i.e. 1-bounded).
pub const GSU_PLACE_BOUND: u32 = 1;

/// Builds the paper's models from `params` and runs every semantic check:
/// `RMGd` (absorbing, guarded mode), `RMGp` (irreducible, solved for
/// steady-state performance levels), and `RMNd` at both µ_new and µ_old
/// (absorbing, normal mode) — plus the reward variables each one carries.
///
/// Construction failures surface as `model-build` findings rather than
/// errors: a model that cannot even be built is precisely what the gate
/// exists to catch.
pub fn check_gsu_models(params: &GsuParams) -> Vec<Finding> {
    let mut span = telemetry::span("lint.models");
    let mut findings = check_params(params, &[0.0, params.theta * 0.5, params.theta]);

    findings.extend(check_one_san(
        "RMGd",
        || -> san::Result<_> {
            let built = rmgd::build(params)?;
            let in_a1 = built.places;
            let spec =
                RewardSpec::new().rate_fn(move |mk| in_a1.in_a1(mk) || in_a1.in_a2(mk), |_| 1.0);
            Ok((built.model, vec![("occupancy".to_string(), spec)]))
        },
        SolverIntent::Absorbing,
        GSU_PLACE_BOUND,
    ));

    findings.extend(check_one_san(
        "RMGp",
        || -> san::Result<_> {
            let built = rmgp::build(params)?;
            let places = built.places;
            Ok((
                built.model,
                vec![
                    ("1-rho1".to_string(), rmgp::one_minus_rho1_spec(&places)),
                    ("1-rho2".to_string(), rmgp::one_minus_rho2_spec(&places)),
                ],
            ))
        },
        SolverIntent::SteadyState,
        GSU_PLACE_BOUND,
    ));

    for (label, mu_first) in [
        ("RMNd[mu_new]", params.mu_new),
        ("RMNd[mu_old]", params.mu_old),
    ] {
        findings.extend(check_one_san(
            label,
            || -> san::Result<_> {
                let built = rmnd::build(params, mu_first)?;
                let failure = built.places.failure;
                let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(failure) == 0, 1.0);
                Ok((built.model, vec![("survival".to_string(), spec)]))
            },
            SolverIntent::Absorbing,
            GSU_PLACE_BOUND,
        ));
    }

    span.record("findings", findings.len());
    findings
}

/// Walks a `.gsu` scenario catalog: every file must parse and match its
/// file stem, and every compiled scenario model (generalized dependability,
/// overhead, and normal-mode SANs) must pass the same generator, SAN, and
/// reward checks the paper-baseline models do — with the solver intent each
/// model is actually fed to.
pub fn check_scenarios(dir: &std::path::Path) -> Vec<Finding> {
    let mut span = telemetry::span("lint.scenarios");
    let mut files: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| path.extension().is_some_and(|ext| ext == "gsu"))
            .collect(),
        Err(e) => {
            return vec![Finding::new(
                "scenario-parse",
                dir.display().to_string(),
                format!("cannot read scenario catalog: {e}"),
                "commit the scenarios/ directory next to the workspace root",
            )];
        }
    };
    files.sort();
    let mut findings = Vec::new();
    let mut checked = 0usize;
    for path in &files {
        let location = path.display().to_string();
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                findings.push(Finding::new(
                    "scenario-parse",
                    location,
                    format!("unreadable scenario file: {e}"),
                    "every committed .gsu file must be readable UTF-8",
                ));
                continue;
            }
        };
        let spec = match gsu_scenario::parse(&text) {
            Ok(spec) => spec,
            Err(e) => {
                findings.push(Finding::new(
                    "scenario-parse",
                    format!("{location}:{}:{}", e.line, e.col),
                    e.message.clone(),
                    "fix the scenario source; the catalog must parse cleanly",
                ));
                continue;
            }
        };
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
        if spec.name != stem {
            findings.push(Finding::new(
                "scenario-parse",
                location,
                format!(
                    "scenario name `{}` does not match file stem `{stem}`",
                    spec.name
                ),
                "rename the file or the scenario so catalog lookups stay unambiguous",
            ));
            continue;
        }
        checked += 1;
        findings.extend(check_scenario_models(&spec));
    }
    span.record("scenarios", checked);
    span.record("findings", findings.len());
    findings
}

/// Compiles one scenario's three generalized models and runs the full
/// semantic battery on each.
pub fn check_scenario_models(spec: &gsu_scenario::ScenarioSpec) -> Vec<Finding> {
    use gsu_scenario::model as scen;

    let name = &spec.name;
    let bound = scenario_place_bound(spec);
    let mut findings = check_params(&spec.params, &spec.phi_grid);
    findings.extend(check_one_san(
        &format!("scenario:{name}/Gd"),
        || -> performability::Result<_> {
            let built = scen::build_gd(spec)?;
            let places = built.places.clone();
            let occupancy =
                RewardSpec::new().rate_fn(move |mk| places.in_a1(mk) || places.in_a2(mk), |_| 1.0);
            Ok((built.model, vec![("occupancy".to_string(), occupancy)]))
        },
        SolverIntent::Absorbing,
        bound,
    ));
    findings.extend(check_one_san(
        &format!("scenario:{name}/Gp"),
        || -> performability::Result<_> {
            let built = scen::build_gp(spec)?;
            let places = built.places;
            Ok((
                built.model,
                vec![
                    ("1-rho1".to_string(), scen::one_minus_rho1_spec(&places)),
                    ("1-rho2".to_string(), scen::one_minus_rho2_spec(&places)),
                ],
            ))
        },
        SolverIntent::SteadyState,
        bound,
    ));
    for (label, mu_first) in [
        ("mu_new", spec.params.mu_new),
        ("mu_old", spec.params.mu_old),
    ] {
        findings.extend(check_one_san(
            &format!("scenario:{name}/Np[{label}]"),
            || -> performability::Result<_> {
                let built = scen::build_np(spec, mu_first)?;
                let failure = built.places.failure;
                let survival = RewardSpec::new().rate_when(move |mk| mk.tokens(failure) == 0, 1.0);
                Ok((built.model, vec![("survival".to_string(), survival)]))
            },
            SolverIntent::Absorbing,
            bound,
        ));
    }
    findings
}

/// The token bound a scenario's compiled models are allowed to reach. The
/// base nets are safe, but phase-type expansions count stages (or branch
/// indices) in a single place, and staged rollouts count completed waves.
fn scenario_place_bound(spec: &gsu_scenario::ScenarioSpec) -> u32 {
    fn dist_bound(dist: &gsu_scenario::Dist) -> u32 {
        match dist {
            gsu_scenario::Dist::Exp { .. } => 1,
            gsu_scenario::Dist::Erlang { k, .. } => *k as u32,
            gsu_scenario::Dist::Hyper { branches } => branches.len() as u32,
            gsu_scenario::Dist::Det { stages, .. } => *stages as u32,
        }
    }
    let waves = spec
        .waves
        .as_ref()
        .map_or(1, |w| w.count.saturating_sub(1) as u32);
    GSU_PLACE_BOUND
        .max(dist_bound(&spec.at))
        .max(dist_bound(&spec.ckpt))
        .max(waves)
}

/// Builds one model + its reward specs, generates the state space, and
/// runs the generator, SAN, and reward checks.
fn check_one_san<E: std::fmt::Display>(
    name: &str,
    build: impl FnOnce() -> Result<(SanModel, Vec<(String, RewardSpec)>), E>,
    intent: SolverIntent,
    place_bound: u32,
) -> Vec<Finding> {
    let (model, specs) = match build() {
        Ok(built) => built,
        Err(e) => {
            return vec![Finding::new(
                "model-build",
                format!("model {name}"),
                format!("model construction failed: {e}"),
                "the builder rejected its own structure; fix the model definition",
            )];
        }
    };
    let space = match StateSpace::generate(&model, &Default::default()) {
        Ok(space) => space,
        Err(e) => {
            return vec![Finding::new(
                "model-build",
                format!("model {name}"),
                format!("state-space generation failed: {e}"),
                "reachability exploration must terminate cleanly for every GSU model",
            )];
        }
    };
    let mut findings = check_generator(name, space.ctmc().generator(), intent);
    findings.extend(check_san(name, &model, &space, place_bound));
    for (spec_name, spec) in &specs {
        findings.extend(check_reward(name, spec_name, spec, &model, &space));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use san::Activity;

    fn csr(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
        let mut data = vec![0.0; n * n];
        for &(i, j, v) in entries {
            data[i * n + j] = v;
        }
        CsrMatrix::from_dense(&sparsela::DenseMatrix::from_vec(n, n, data).unwrap())
    }

    fn rule_at(findings: &[Finding], rule: &str) -> Vec<String> {
        findings
            .iter()
            .filter(|f| f.rule == rule)
            .map(|f| f.location.clone())
            .collect()
    }

    #[test]
    fn clean_generator_passes_all_intents() {
        let q = csr(2, &[(0, 0, -1.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, -2.0)]);
        for intent in [SolverIntent::SteadyState, SolverIntent::Transient] {
            assert!(check_generator("m", &q, intent).is_empty());
        }
    }

    #[test]
    fn row_sum_off_by_1e6_names_the_state() {
        // Row 1 sums to 1e-6 — far above tolerance at these rates.
        let q = csr(
            2,
            &[(0, 0, -1.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, -2.0 + 1e-6)],
        );
        let findings = check_generator("broken", &q, SolverIntent::Transient);
        assert_eq!(
            rule_at(&findings, "ctmc-row-sum"),
            ["model broken / state 1"]
        );
        // …while fp-noise-sized residue passes.
        let q = csr(
            2,
            &[(0, 0, -1.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, -2.0 + 1e-13)],
        );
        assert!(check_generator("ok", &q, SolverIntent::Transient).is_empty());
    }

    #[test]
    fn negative_offdiagonal_and_nonfinite_are_named() {
        let q = csr(2, &[(0, 0, 0.5), (0, 1, -0.5), (1, 1, 0.0)]);
        let findings = check_generator("neg", &q, SolverIntent::Transient);
        assert_eq!(
            rule_at(&findings, "ctmc-negative-rate"),
            ["model neg / state 0"]
        );
        let q = csr(1, &[(0, 0, f64::NAN)]);
        let findings = check_generator("nan", &q, SolverIntent::Transient);
        assert_eq!(
            rule_at(&findings, "ctmc-nonfinite"),
            ["model nan / state 0"]
        );
    }

    #[test]
    fn solver_intent_structure() {
        // Absorbing chain: state 1 absorbs. A unichain, so it passes
        // SteadyState too (the stationary law is the point mass at 1).
        let q = csr(2, &[(0, 0, -1.0), (0, 1, 1.0)]);
        assert!(check_generator("m", &q, SolverIntent::SteadyState).is_empty());
        assert!(check_generator("m", &q, SolverIntent::Absorbing).is_empty());
        // Two absorbing states = two closed classes: not a unichain.
        let q2 = csr(2, &[]);
        let findings = check_generator("m", &q2, SolverIntent::SteadyState);
        assert_eq!(rule_at(&findings, "ctmc-not-irreducible"), ["model m"]);
        assert!(findings[0].message.contains("2 closed recurrent classes"));
        // Irreducible chain: passes SteadyState, fails Absorbing (no absorber).
        let q = csr(2, &[(0, 0, -1.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, -2.0)]);
        assert!(check_generator("m", &q, SolverIntent::SteadyState).is_empty());
        assert_eq!(
            rule_at(
                &check_generator("m", &q, SolverIntent::Absorbing),
                "ctmc-no-absorbing"
            ),
            ["model m"]
        );
        // Two components, one absorbing but unreachable from the other.
        let q = csr(3, &[(0, 0, -1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, -1.0)]);
        let findings = check_generator("m", &q, SolverIntent::Absorbing);
        let locs = rule_at(&findings, "ctmc-absorbing-unreachable");
        assert_eq!(locs, ["model m / state 0", "model m / state 1"]);
    }

    #[test]
    fn dead_activity_is_named() {
        let mut m = SanModel::new("toy");
        let p = m.add_place("p", 1);
        m.add_activity(Activity::timed("live", 1.0).with_input_arc(p, 1))
            .unwrap();
        m.add_activity(Activity::timed("never", 1.0).with_enabling(|_| false))
            .unwrap();
        let space = StateSpace::generate(&m, &Default::default()).unwrap();
        let findings = check_san("toy", &m, &space, 1);
        assert_eq!(
            rule_at(&findings, "san-dead-activity"),
            ["model toy / activity 'never'"]
        );
    }

    #[test]
    fn place_bound_warns_by_name() {
        let mut m = SanModel::new("q");
        let p = m.add_place("buffer", 0);
        m.add_activity(
            Activity::timed("in", 1.0)
                .with_enabling(move |mk| mk.tokens(p) < 3)
                .with_output_arc(p, 1),
        )
        .unwrap();
        m.add_activity(Activity::timed("out", 1.0).with_input_arc(p, 1))
            .unwrap();
        let space = StateSpace::generate(&m, &Default::default()).unwrap();
        let findings = check_san("q", &m, &space, 1);
        assert_eq!(
            rule_at(&findings, "san-place-bound"),
            ["model q / place 'buffer'"]
        );
        assert_eq!(findings[0].severity, crate::diag::Severity::Warn);
        assert!(check_san("q", &m, &space, 3)
            .iter()
            .all(|f| f.rule != "san-place-bound"));
    }

    #[test]
    fn reward_on_unreachable_marking_is_denied() {
        let mut m = SanModel::new("r");
        let p = m.add_place("p", 1);
        m.add_activity(Activity::timed("drain", 1.0).with_input_arc(p, 1))
            .unwrap();
        let space = StateSpace::generate(&m, &Default::default()).unwrap();
        // Reachable markings hold 0 or 1 tokens; 5 is unreachable.
        let spec = RewardSpec::new()
            .rate_when(move |mk| mk.tokens(p) == 5, 1.0)
            .rate_when(move |mk| mk.tokens(p) == 1, 2.0);
        let findings = check_reward("r", "busted", &spec, &m, &space);
        assert_eq!(
            rule_at(&findings, "reward-zero-support"),
            ["model r / reward 'busted' / pair 0"]
        );
    }

    #[test]
    fn impulse_on_dead_activity_is_denied() {
        let mut m = SanModel::new("i");
        let p = m.add_place("p", 1);
        m.add_activity(Activity::timed("live", 1.0).with_input_arc(p, 1))
            .unwrap();
        let dead = m
            .add_activity(Activity::timed("never", 1.0).with_enabling(|_| false))
            .unwrap();
        let space = StateSpace::generate(&m, &Default::default()).unwrap();
        let spec = RewardSpec::new()
            .rate_when(|_| true, 1.0)
            .impulse_on(dead, 1.0);
        let findings = check_reward("i", "imp", &spec, &m, &space);
        assert_eq!(
            rule_at(&findings, "reward-impulse-invalid"),
            ["model i / reward 'imp' / activity 'never'"]
        );
    }

    #[test]
    fn phi_beyond_theta_is_denied() {
        let params = GsuParams::paper_baseline();
        let findings = check_params(&params, &[0.0, params.theta, params.theta + 1.0]);
        assert_eq!(
            rule_at(&findings, "params-phi-range"),
            [format!("GsuParams / phi = {}", params.theta + 1.0)]
        );
        let mut bad = params;
        bad.coverage = 1.5;
        let findings = check_params(&bad, &[]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "params-domain");
        assert!(findings[0].message.contains("coverage"));
    }

    #[test]
    fn shipped_gsu_models_are_clean() {
        let findings = check_gsu_models(&GsuParams::paper_baseline());
        assert!(
            findings.is_empty(),
            "expected a clean bill for the paper models, got: {findings:#?}"
        );
    }

    const GOOD_SCENARIO: &str = "\
scenario \"good\"
theta 50
lambda 40
mu_new 0.02
mu_old 0.0000001
coverage 0.95
p_ext 0.1
at exp 200
ckpt exp 200
escorts 2
phi_grid 0 25 50
";

    fn scenario_fixture_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gsu-lint-scen-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn clean_scenario_catalog_passes() {
        let dir = scenario_fixture_dir("clean");
        std::fs::write(dir.join("good.gsu"), GOOD_SCENARIO).unwrap();
        let findings = check_scenarios(&dir);
        assert!(
            findings.is_empty(),
            "expected a clean bill for the fixture catalog, got: {findings:#?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seeded_parse_defect_fires_scenario_parse_with_position() {
        let dir = scenario_fixture_dir("defect");
        // Two seeded defects: a syntax error (line 3: unknown key) and a
        // name/stem mismatch. Both must fire `scenario-parse`, nothing else.
        std::fs::write(
            dir.join("broken.gsu"),
            "scenario \"broken\"\ntheta 50\nlambduh 40\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("misnamed.gsu"),
            GOOD_SCENARIO.replace("\"good\"", "\"other\""),
        )
        .unwrap();
        let findings = check_scenarios(&dir);
        let parse = rule_at(&findings, "scenario-parse");
        assert_eq!(parse.len(), 2, "{findings:#?}");
        assert!(
            parse[0].ends_with("broken.gsu:3:1"),
            "defect location should carry line and column: {}",
            parse[0]
        );
        assert!(parse[1].ends_with("misnamed.gsu"), "{}", parse[1]);
        assert!(
            findings.iter().all(|f| f.rule == "scenario-parse"),
            "a file that fails to load must not cascade into model findings: {findings:#?}"
        );
        let mismatch = findings
            .iter()
            .find(|f| f.location.ends_with("misnamed.gsu"))
            .unwrap();
        assert!(
            mismatch.message.contains("does not match file stem"),
            "{mismatch:#?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scenario_model_defect_is_caught_by_the_battery() {
        // A parseable scenario whose compiled models violate solver
        // contracts: mu_old = 0 makes every old-version process
        // incorruptible, so old-version fault-manifestation activities are
        // dead in the dependability and normal-mode models — the liveness
        // check must fire, and every finding must name a scenario model.
        let text = GOOD_SCENARIO.replace("mu_old 0.0000001", "mu_old 0");
        let spec = gsu_scenario::parse(&text).unwrap();
        let findings = check_scenario_models(&spec);
        assert!(
            !findings.is_empty(),
            "a structurally degenerate scenario must not pass the battery"
        );
        assert!(
            findings.iter().any(|f| f.rule == "san-dead-activity"),
            "dead fault-manifestation activities must be reported: {findings:#?}"
        );
        assert!(
            findings
                .iter()
                .all(|f| f.location.contains("model scenario:good/")),
            "every finding must name the scenario model it came from: {findings:#?}"
        );
    }
}
