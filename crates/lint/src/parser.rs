//! A lightweight item parser over the [`crate::lexer`] token stream.
//!
//! This is not a Rust grammar: it recovers exactly the item structure the
//! symbol pass ([`crate::symbols`]) needs — `use` declarations (with `as`
//! renames and `{…}` groups flattened to one binding per imported name) and
//! `fn` items with the token range of their body block — and nothing else.
//! The parser is total: any token sequence, including text that is not
//! Rust at all, produces a [`ParsedFile`] without panicking, and every
//! recorded token index points into the input slice. Items it cannot make
//! sense of are skipped, never guessed at; a rule that sees no item simply
//! stays silent (fail-open is acceptable here because the lexical pass
//! still runs everywhere).

use crate::lexer::Tok;

/// One name bound by a `use` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// The name in scope after the import (the last path segment, or the
    /// `as` alias; `*` for glob imports).
    pub local: String,
    /// The full `::`-joined source path.
    pub path: String,
    /// Token index of the binding's final segment (for locations).
    pub tok: usize,
}

/// One `fn` item (free function, method, or nested fn alike).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub kw: usize,
    /// Half-open token range of the body `{ … }` including both braces;
    /// `None` for bodiless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
}

/// The item structure recovered from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Every `use` binding, in source order.
    pub uses: Vec<UseDecl>,
    /// Every `fn` item, in source order of the `fn` keyword. Bodies of
    /// nested fns are contained in (not subtracted from) their parents'.
    pub fns: Vec<FnItem>,
}

impl ParsedFile {
    /// The innermost fn whose body contains token index `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(a, b)| a <= i && i < b))
            .min_by_key(|f| f.body.map_or(usize::MAX, |(a, b)| b - a))
    }

    /// Resolves a local name through the `use` table to its full path.
    pub fn resolve(&self, local: &str) -> Option<&str> {
        self.uses
            .iter()
            .find(|u| u.local == local)
            .map(|u| u.path.as_str())
    }
}

/// Parses the token stream into its item structure. Total: never panics,
/// and every index in the result is a valid index into `toks`.
pub fn parse(toks: &[Tok]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("use") {
            i = parse_use(toks, i, &mut out.uses);
        } else if toks[i].is_ident("fn") {
            i = parse_fn(toks, i, &mut out.fns);
        } else {
            i += 1;
        }
    }
    out
}

/// Parses `use <tree>;` starting at the `use` keyword; returns the index
/// just past the terminating `;` (or wherever recovery stopped).
fn parse_use(toks: &[Tok], start: usize, uses: &mut Vec<UseDecl>) -> usize {
    // Find the terminating `;` at zero brace-group depth first, so a
    // malformed tree can always be skipped wholesale.
    let mut end = start + 1;
    let mut depth = 0usize;
    while end < toks.len() {
        if toks[end].is_punct("{") {
            depth += 1;
        } else if toks[end].is_punct("}") {
            depth = depth.saturating_sub(1);
        } else if toks[end].is_punct(";") && depth == 0 {
            break;
        }
        end += 1;
    }
    let tree = &toks[start + 1..end.min(toks.len())];
    collect_use_tree(tree, start + 1, &mut Vec::new(), uses);
    end.min(toks.len()) + 1
}

/// Flattens one use tree (already stripped of `use` and `;`) into bindings.
/// `offset` is the token index of `tree[0]` in the file's stream.
fn collect_use_tree(
    tree: &[Tok],
    offset: usize,
    prefix: &mut Vec<String>,
    uses: &mut Vec<UseDecl>,
) {
    let mut i = 0;
    let depth_before = prefix.len();
    while i < tree.len() {
        let t = &tree[i];
        if t.is_punct("::") {
            i += 1;
        } else if t.is_punct("{") {
            // Split the group body on top-level commas and recurse per arm.
            let mut j = i + 1;
            let mut depth = 1usize;
            let mut arm_start = j;
            while j < tree.len() && depth > 0 {
                if tree[j].is_punct("{") {
                    depth += 1;
                } else if tree[j].is_punct("}") {
                    depth -= 1;
                    if depth == 0 && arm_start < j {
                        collect_use_tree(&tree[arm_start..j], offset + arm_start, prefix, uses);
                    }
                } else if tree[j].is_punct(",") && depth == 1 {
                    if arm_start < j {
                        collect_use_tree(&tree[arm_start..j], offset + arm_start, prefix, uses);
                    }
                    arm_start = j + 1;
                }
                j += 1;
            }
            prefix.truncate(depth_before);
            return; // a group always ends its branch
        } else if t.is_punct("*") {
            uses.push(UseDecl {
                local: "*".to_string(),
                path: format!("{}::*", prefix.join("::")),
                tok: offset + i,
            });
            prefix.truncate(depth_before);
            return;
        } else if t.is_ident("as") {
            // Rebind the path accumulated so far under the alias. Anything
            // but an identifier after `as` is malformed — skip the binding.
            if let Some(alias) = tree
                .get(i + 1)
                .filter(|a| matches!(a.kind, crate::lexer::TokKind::Ident))
            {
                uses.push(UseDecl {
                    local: alias.text.clone(),
                    path: prefix.join("::"),
                    tok: offset + i + 1,
                });
            }
            prefix.truncate(depth_before);
            return;
        } else if matches!(t.kind, crate::lexer::TokKind::Ident) {
            prefix.push(t.text.clone());
            // A segment followed by `::` continues the path; otherwise it is
            // the binding (unless an `as` or group follows, handled above).
            let continues = tree.get(i + 1).is_some_and(|n| n.is_punct("::"));
            let aliased = tree.get(i + 1).is_some_and(|n| n.is_ident("as"));
            if !continues && !aliased {
                uses.push(UseDecl {
                    local: t.text.clone(),
                    path: prefix.join("::"),
                    tok: offset + i,
                });
                prefix.truncate(depth_before);
                return;
            }
            i += 1;
        } else {
            // Attributes, `pub`, lifetimes in odd places: skip.
            i += 1;
        }
    }
    prefix.truncate(depth_before);
}

/// Parses a `fn` item starting at the `fn` keyword; returns the index to
/// resume scanning from (just *inside* the body, so nested fns are found).
fn parse_fn(toks: &[Tok], kw: usize, fns: &mut Vec<FnItem>) -> usize {
    let Some(name_tok) = toks.get(kw + 1) else {
        return kw + 1;
    };
    if !matches!(name_tok.kind, crate::lexer::TokKind::Ident) {
        return kw + 1;
    }
    let name = name_tok.text.clone();
    // Scan the signature for the body `{` or a terminating `;`, skipping
    // anything nested in (), [] (const-generic defaults with braces will
    // misparse; they do not occur in this workspace).
    let mut i = kw + 2;
    let mut paren = 0i64;
    let mut body = None;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") {
            paren += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            paren -= 1;
        } else if paren <= 0 && t.is_punct(";") {
            break;
        } else if paren <= 0 && t.is_punct("{") {
            // Match the body's closing brace.
            let mut depth = 0usize;
            let mut j = i;
            let mut close = toks.len();
            while j < toks.len() {
                if toks[j].is_punct("{") {
                    depth += 1;
                } else if toks[j].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        close = j + 1;
                        break;
                    }
                }
                j += 1;
            }
            body = Some((i, close));
            break;
        }
        i += 1;
    }
    fns.push(FnItem { name, kw, body });
    match body {
        // Resume just inside the body so nested items are still visited.
        Some((open, _)) => open + 1,
        None => i + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn uses(src: &str) -> Vec<(String, String)> {
        parse(&lex(src))
            .uses
            .into_iter()
            .map(|u| (u.local, u.path))
            .collect()
    }

    #[test]
    fn simple_and_renamed_uses() {
        assert_eq!(
            uses("use std::collections::HashMap;"),
            [(
                "HashMap".to_string(),
                "std::collections::HashMap".to_string()
            )]
        );
        assert_eq!(
            uses("use std::time::Instant as Clock;"),
            [("Clock".to_string(), "std::time::Instant".to_string())]
        );
    }

    #[test]
    fn grouped_and_nested_uses_flatten() {
        let got = uses("use std::collections::{HashMap, HashSet, hash_map::Entry};");
        assert_eq!(
            got,
            [
                (
                    "HashMap".to_string(),
                    "std::collections::HashMap".to_string()
                ),
                (
                    "HashSet".to_string(),
                    "std::collections::HashSet".to_string()
                ),
                (
                    "Entry".to_string(),
                    "std::collections::hash_map::Entry".to_string()
                ),
            ]
        );
        assert_eq!(
            uses("use a::{b::{c, d as e}, f::*};"),
            [
                ("c".to_string(), "a::b::c".to_string()),
                ("e".to_string(), "a::b::d".to_string()),
                ("*".to_string(), "a::f::*".to_string()),
            ]
        );
    }

    #[test]
    fn fns_with_bodies_and_nesting() {
        let toks = lex("fn outer() { fn inner() { } } trait T { fn decl(&self); }");
        let parsed = parse(&toks);
        let names: Vec<&str> = parsed.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "decl"]);
        assert!(parsed.fns[0].body.is_some());
        assert!(parsed.fns[1].body.is_some());
        assert!(parsed.fns[2].body.is_none());
        // inner's body nests inside outer's.
        let (oa, ob) = parsed.fns[0].body.unwrap();
        let (ia, ib) = parsed.fns[1].body.unwrap();
        assert!(oa < ia && ib <= ob);
        // enclosing_fn picks the innermost.
        assert_eq!(parsed.enclosing_fn(ia).unwrap().name, "inner");
    }

    #[test]
    fn signature_punctuation_does_not_confuse_body_detection() {
        let toks = lex("fn f<T: Into<String>>(x: [u8; 2]) -> Result<(), E> where T: Sized { x }");
        let parsed = parse(&toks);
        assert_eq!(parsed.fns.len(), 1);
        let (a, b) = parsed.fns[0].body.unwrap();
        assert!(toks[a].is_punct("{") && toks[b - 1].is_punct("}"));
    }

    #[test]
    fn garbage_never_panics_and_indices_are_valid() {
        for src in [
            "use ;",
            "use a::{b,,};",
            "use a::{",
            "fn",
            "fn 3",
            "fn f(",
            "fn f() {",
            "} } { { use fn as as :: ;",
            "use a as ;",
        ] {
            let toks = lex(src);
            let parsed = parse(&toks);
            for u in &parsed.uses {
                assert!(u.tok < toks.len());
            }
            for f in &parsed.fns {
                assert!(f.kw < toks.len());
                if let Some((a, b)) = f.body {
                    assert!(a < b && b <= toks.len());
                }
            }
        }
    }

    #[test]
    fn resolve_looks_through_renames() {
        let parsed = parse(&lex("use std::time::Instant as Clock;"));
        assert_eq!(parsed.resolve("Clock"), Some("std::time::Instant"));
        assert_eq!(parsed.resolve("Instant"), None);
    }
}
