//! Rendering: the human table, the per-rule summary, and JSONL I/O.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::diag::{parse_jsonl_line, rule_info, Finding, Severity};

/// Renders findings as an aligned human-readable table (empty string for no
/// findings).
pub fn render_table(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return String::new();
    }
    let rule_w = findings
        .iter()
        .map(|f| f.rule.len())
        .chain(["RULE".len()])
        .max()
        .unwrap_or(4);
    let loc_w = findings
        .iter()
        .map(|f| f.location.len())
        .chain(["LOCATION".len()])
        .max()
        .unwrap_or(8);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<rule_w$}  {:<4}  {:<loc_w$}  MESSAGE",
        "RULE", "SEV", "LOCATION"
    );
    for f in findings {
        let _ = writeln!(
            out,
            "{:<rule_w$}  {:<4}  {:<loc_w$}  {}",
            f.rule, f.severity, f.location, f.message
        );
        if !f.suggestion.is_empty() {
            let _ = writeln!(
                out,
                "{:<rule_w$}  {:<4}  {:<loc_w$}    -> {}",
                "", "", "", f.suggestion
            );
        }
    }
    out
}

/// Renders the per-rule summary table that closes every run: counts of
/// reported findings per rule, plus how many findings `lint.allow`
/// suppressed.
pub fn render_summary(reported: &[Finding], allowed: usize) -> String {
    let mut counts: BTreeMap<&str, (Severity, usize)> = BTreeMap::new();
    for f in reported {
        let entry = counts.entry(f.rule.as_str()).or_insert((f.severity, 0));
        entry.1 += 1;
    }
    let mut out = String::new();
    if counts.is_empty() {
        let _ = writeln!(out, "gsu-lint: no findings");
    } else {
        let _ = writeln!(out, "gsu-lint: findings by rule");
        for (rule, (severity, n)) in &counts {
            let summary = rule_info(rule).map_or("", |r| r.summary);
            let _ = writeln!(out, "  {n:>4}  {severity:<4}  {rule:<26}  {summary}");
        }
    }
    if allowed > 0 {
        let _ = writeln!(out, "  {allowed:>4}  suppressed by lint.allow");
    }
    let denies = reported
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    let _ = writeln!(
        out,
        "gsu-lint: {} finding(s), {} deny -> {}",
        reported.len(),
        denies,
        if denies == 0 { "PASS" } else { "FAIL" }
    );
    out
}

/// Renders findings as `gsu-lint-v1` JSONL, one record per line.
pub fn render_jsonl(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_jsonl());
        out.push('\n');
    }
    out
}

/// Parses a whole JSONL document, validating every record (see
/// [`parse_jsonl_line`]). Blank lines are ignored; an empty document is a
/// valid empty report.
///
/// # Errors
///
/// Describes the first malformed record with its line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        findings.push(parse_jsonl_line(line).map_err(|e| format!("jsonl line {}: {e}", i + 1))?);
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding::new("no-unwrap", "crates/a/src/lib.rs:3", "`.unwrap()`", "use ?"),
            Finding::new(
                "san-place-bound",
                "model RMGd / place 'x'",
                "4 tokens",
                "check arcs",
            ),
        ]
    }

    #[test]
    fn table_aligns_and_mentions_everything() {
        let table = render_table(&sample());
        assert!(table.contains("no-unwrap"));
        assert!(table.contains("deny"));
        assert!(table.contains("warn"));
        assert!(table.contains("model RMGd / place 'x'"));
        assert!(table.contains("-> use ?"));
        assert!(render_table(&[]).is_empty());
    }

    #[test]
    fn summary_counts_and_verdict() {
        let summary = render_summary(&sample(), 2);
        assert!(summary.contains("findings by rule"));
        assert!(summary.contains("suppressed by lint.allow"));
        assert!(summary.contains("1 deny -> FAIL"));
        // Warn-only findings pass.
        let warn_only = vec![sample().remove(1)];
        assert!(render_summary(&warn_only, 0).contains("0 deny -> PASS"));
        assert!(render_summary(&[], 0).contains("no findings"));
    }

    #[test]
    fn jsonl_document_round_trips() {
        let findings = sample();
        let doc = render_jsonl(&findings);
        assert_eq!(doc.lines().count(), 2);
        let back = parse_jsonl(&doc).unwrap();
        assert_eq!(back, findings);
        assert!(parse_jsonl("").unwrap().is_empty());
        assert!(parse_jsonl("\n\n").unwrap().is_empty());
        let err = parse_jsonl("{\"schema\":\"nope\"}").unwrap_err();
        assert!(err.contains("line 1"));
    }
}
