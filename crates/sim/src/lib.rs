//! Discrete-event simulation of the MDCD guarded software upgrading
//! protocol.
//!
//! The original study planned to validate its parameters and constituent
//! measures on JPL's Future Deliveries Testbed (paper §7). That testbed is
//! not available, so this crate provides the substitute: a discrete-event
//! simulator of the three-process avionics configuration (`P1new`, `P1old`,
//! `P2`) executing the MDCD protocol over a mission window `[0, θ]` with a
//! guarded-operation prefix `[0, φ]`:
//!
//! * exponential message generation per process (rate λ, external with
//!   probability `p_ext`);
//! * acceptance tests (duration `Exp(α)`, coverage `c`) on external messages
//!   of potentially contaminated processes;
//! * checkpoint establishment (duration `Exp(β)`) on confidence-lowering
//!   message receipts, per the MDCD rule;
//! * fault manifestation (`Exp(µ)`), contamination propagation through
//!   internal messages, error detection, rollback recovery, and failure on
//!   undetected erroneous external messages.
//!
//! Each run yields one sample path of the paper's §3.2 classification —
//! `S1` (upgrade succeeds), `S2` (error detected, safely downgraded), or the
//! worthless third category — together with the accrued mission worth `W_φ`
//! of Eq. 4, measured (not modelled): forward-progress time is clocked
//! per process, excluding AT and checkpoint blocking.
//!
//! [`MonteCarlo`] aggregates replications into estimates of `E[W_φ]`, the
//! sample-path class probabilities, and the performability index `Y(φ)`
//! with confidence intervals — cross-validating the analytic
//! model-translation pipeline of the `performability` crate end to end.
//!
//! # Example
//!
//! ```
//! use mdcd_sim::{MonteCarlo, SimConfig};
//! use performability::GsuParams;
//!
//! let config = SimConfig::new(GsuParams::paper_baseline(), 7000.0).unwrap();
//! let summary = MonteCarlo::new(config).with_replications(200).with_seed(7).run();
//! assert!(summary.p_s1 + summary.p_s2 + summary.p_s3 > 0.999);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod distribution;
mod engine;
mod estimate;
pub mod fast;
mod rng;
pub mod shadow;
pub mod trace;

pub use config::{GammaMode, SimConfig};
pub use distribution::WorthDistribution;
pub use engine::{simulate_run, simulate_run_with_log, PathClass, RunOutcome};
pub use estimate::{
    estimate_y, estimate_y_curve, estimate_y_matched, EngineKind, MonteCarlo, SimSummary, YEstimate,
};
pub use fast::{calibrate, simulate_run_hybrid, Calibration};
pub use rng::SimRng;
pub use shadow::{run_until_admitted, simulate_validation, CampaignOutcome, ValidationLog};
pub use trace::{simulate_run_traced, MissionTrace, TraceEvent};
