//! Simulation configuration.

use performability::{GsuParams, PerfError};

/// How the discount factor γ of Eq. 4 is applied to `S2` sample paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GammaMode {
    /// Per-path discount `γ(τ) = 1 − τ/θ` using that path's actual
    /// detection time — the natural simulation counterpart of the paper's
    /// `γ = 1 − τ/θ` policy (which applies the *mean* detection time as a
    /// constant).
    PerPath,
    /// A fixed discount, e.g. to mirror an analytic evaluation exactly.
    Constant(f64),
    /// No discount (γ = 1).
    None,
}

/// Configuration of one simulated scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// The GSU parameter set (Table 3 style).
    pub params: GsuParams,
    /// Guarded-operation duration φ ∈ `[0, θ]`.
    pub phi: f64,
    /// Discount policy for unsuccessful-but-safe upgrades.
    pub gamma: GammaMode,
}

impl SimConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns parameter/φ validation failures from the `performability`
    /// layer.
    pub fn new(params: GsuParams, phi: f64) -> Result<Self, PerfError> {
        params.validate()?;
        params.validate_phi(phi)?;
        Ok(SimConfig {
            params,
            phi,
            gamma: GammaMode::PerPath,
        })
    }

    /// Replaces the γ mode.
    pub fn with_gamma(mut self, gamma: GammaMode) -> Self {
        self.gamma = gamma;
        self
    }

    pub(crate) fn gamma_for(&self, detection_time: f64) -> f64 {
        match self.gamma {
            GammaMode::PerPath => (1.0 - detection_time / self.params.theta).clamp(0.0, 1.0),
            GammaMode::Constant(g) => g.clamp(0.0, 1.0),
            GammaMode::None => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        let p = GsuParams::paper_baseline();
        assert!(SimConfig::new(p, 7000.0).is_ok());
        assert!(SimConfig::new(p, -1.0).is_err());
        assert!(SimConfig::new(p, 1e9).is_err());
        let mut bad = p;
        bad.lambda = -1.0;
        assert!(SimConfig::new(bad, 0.0).is_err());
    }

    #[test]
    fn gamma_modes() {
        let c = SimConfig::new(GsuParams::paper_baseline(), 5000.0).unwrap();
        assert_eq!(c.gamma_for(2500.0), 0.75);
        assert_eq!(
            c.with_gamma(GammaMode::Constant(0.5)).gamma_for(2500.0),
            0.5
        );
        assert_eq!(c.with_gamma(GammaMode::None).gamma_for(2500.0), 1.0);
        // Clamping.
        assert_eq!(c.gamma_for(20_000.0), 0.0);
        assert_eq!(c.with_gamma(GammaMode::Constant(3.0)).gamma_for(0.0), 1.0);
    }
}
