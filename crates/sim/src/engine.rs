//! The single-run discrete-event engine.

use crate::trace::TraceEvent;
use crate::{SimConfig, SimRng};

/// Sample-path classification of §3.2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathClass {
    /// `S1`: no error through φ; the upgraded system serves the rest of the
    /// mission window successfully.
    S1,
    /// `S2`: an error was detected during guarded operation and the system
    /// safely downgraded; the recovered system survives to θ.
    S2,
    /// The worthless third category: failure at any point (undetected
    /// error, AT coverage miss, or post-recovery/post-upgrade failure).
    S3,
}

/// The result of one simulated mission window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// Path classification.
    pub class: PathClass,
    /// Accrued mission worth `W_φ` per Eq. 4 (0 for `S3`).
    pub worth: f64,
    /// Detection time τ, when an error was detected.
    pub detection_time: Option<f64>,
    /// Failure time, when the system failed.
    pub failure_time: Option<f64>,
    /// Forward-progress time of the active first process within the guarded
    /// segment (the measured `ρ_{τ,1}·τ` of Eq. 4).
    pub progress_p1: f64,
    /// Forward-progress time of `P2` within the guarded segment.
    pub progress_p2: f64,
    /// Number of acceptance tests executed.
    pub at_count: u64,
    /// Number of checkpoints established.
    pub checkpoint_count: u64,
    /// Fraction of the guarded segment during which `P2` was considered
    /// potentially contaminated (dirty bit set) — used to calibrate the
    /// hybrid engine's episode initialization.
    pub p2_dirty_fraction: f64,
}

/// Index of the three processes.
// The paper names the processes P1new/P1old/P2; keep its vocabulary even
// though every variant shares the enum's `P` prefix.
#[allow(clippy::enum_variant_names)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum P {
    P1New = 0,
    P1Old = 1,
    P2 = 2,
}

/// What a blocked process is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    /// Acceptance test on the process's own external message.
    AcceptanceTest,
    /// Checkpoint establishment triggered by a message receipt.
    Checkpoint,
}

#[derive(Debug, Clone, Copy)]
struct ProcState {
    contaminated: bool,
    dirty: bool,
    /// Completion time and kind of the current blocking operation.
    block: Option<(f64, Block)>,
    /// When the block started (for progress accounting).
    block_start: f64,
    /// Next message emission time (meaningful while unblocked).
    next_msg: f64,
    /// Next fault manifestation.
    fault_time: f64,
    /// Accumulated blocking time, clipped to the guarded segment.
    blocked_total: f64,
}

impl ProcState {
    fn new() -> Self {
        ProcState {
            contaminated: false,
            dirty: false,
            block: None,
            block_start: 0.0,
            next_msg: f64::INFINITY,
            fault_time: f64::INFINITY,
            blocked_total: 0.0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Guarded operation: P1new active under escort.
    Gop,
    /// Normal mode with the upgraded pair (P1new, P2) — after a successful φ.
    NormalUpgraded,
    /// Normal mode with the downgraded pair (P1old, P2) — after recovery.
    NormalRecovered,
}

/// Simulates one mission window `[0, θ]` and returns its outcome.
///
/// The engine advances a three-process state machine from event to event;
/// there are at most seven pending timestamps (per-process message, fault,
/// and block-completion timers plus the φ boundary), so a priority queue is
/// unnecessary.
pub fn simulate_run(config: &SimConfig, rng: &mut SimRng) -> RunOutcome {
    Engine::new(config, rng, None).run()
}

/// Like [`simulate_run`], additionally appending protocol events to `log`
/// (fault manifestations, AT/checkpoint starts, detection, failure, guard
/// conclusion) — the simulated counterpart of the MDCD onboard error log.
pub fn simulate_run_with_log(
    config: &SimConfig,
    rng: &mut SimRng,
    log: &mut Vec<TraceEvent>,
) -> RunOutcome {
    Engine::new(config, rng, Some(log)).run()
}

struct Engine<'a> {
    cfg: &'a SimConfig,
    rng: &'a mut SimRng,
    trace: Option<&'a mut Vec<TraceEvent>>,
    t: f64,
    mode: Mode,
    procs: [ProcState; 3],
    detection_time: Option<f64>,
    failure_time: Option<f64>,
    /// End of the guarded worth-measurement segment: min(φ, τ). Set when
    /// the segment closes.
    guarded_end: f64,
    at_count: u64,
    checkpoint_count: u64,
    /// When P2's dirty bit was last set (None while clear).
    p2_dirty_since: Option<f64>,
    /// Accumulated dirty time, clipped to the guarded segment.
    p2_dirty_total: f64,
}

impl<'a> Engine<'a> {
    fn new(
        cfg: &'a SimConfig,
        rng: &'a mut SimRng,
        trace: Option<&'a mut Vec<TraceEvent>>,
    ) -> Self {
        Engine {
            cfg,
            rng,
            trace,
            t: 0.0,
            mode: Mode::Gop,
            procs: [ProcState::new(), ProcState::new(), ProcState::new()],
            detection_time: None,
            failure_time: None,
            guarded_end: cfg.phi,
            at_count: 0,
            checkpoint_count: 0,
            p2_dirty_since: None,
            p2_dirty_total: 0.0,
        }
    }

    /// Sets P2's dirty bit, accumulating its occupancy time (clipped to the
    /// guarded segment).
    fn set_p2_dirty(&mut self, value: bool) {
        let t = self.t;
        let seg = self.guarded_end;
        let was = self.procs[P::P2 as usize].dirty;
        if value && !was {
            self.p2_dirty_since = Some(t);
        } else if !value && was {
            if let Some(since) = self.p2_dirty_since.take() {
                self.p2_dirty_total += (t.min(seg) - since.min(seg)).max(0.0);
            }
        }
        self.p(P::P2).dirty = value;
    }

    fn p(&mut self, which: P) -> &mut ProcState {
        &mut self.procs[which as usize]
    }

    fn log(&mut self, event: TraceEvent) {
        if let Some(log) = self.trace.as_deref_mut() {
            log.push(event);
        }
    }

    fn run(mut self) -> RunOutcome {
        let mut events: u64 = 0;
        let params = self.cfg.params;
        let theta = params.theta;
        let phi = self.cfg.phi;

        // Initial timers.
        self.p(P::P1New).fault_time = self.rng.exp(params.mu_new);
        self.p(P::P1Old).fault_time = self.rng.exp(params.mu_old);
        self.p(P::P2).fault_time = self.rng.exp(params.mu_old);
        self.p(P::P1New).next_msg = self.rng.exp(params.lambda);
        self.p(P::P2).next_msg = self.rng.exp(params.lambda);
        if phi == 0.0 {
            self.mode = Mode::NormalUpgraded;
            self.guarded_end = 0.0;
        }

        while self.failure_time.is_none() {
            // Collect candidate events.
            let mut next_time = theta;
            #[derive(Clone, Copy, PartialEq, Eq)]
            enum Ev {
                End,
                PhiBoundary,
                Fault(P),
                Message(P),
                BlockDone(P),
            }
            let mut next_ev = Ev::End;
            let consider = |time: f64, ev: Ev, next_time: &mut f64, next_ev: &mut Ev| {
                if time < *next_time {
                    *next_time = time;
                    *next_ev = ev;
                }
            };

            if self.mode == Mode::Gop {
                consider(phi, Ev::PhiBoundary, &mut next_time, &mut next_ev);
            }
            for which in [P::P1New, P::P1Old, P::P2] {
                let ps = self.procs[which as usize];
                consider(
                    ps.fault_time,
                    Ev::Fault(which),
                    &mut next_time,
                    &mut next_ev,
                );
                if let Some((done, _)) = ps.block {
                    consider(done, Ev::BlockDone(which), &mut next_time, &mut next_ev);
                } else if self.sends_messages(which) {
                    consider(
                        ps.next_msg,
                        Ev::Message(which),
                        &mut next_time,
                        &mut next_ev,
                    );
                }
            }

            self.t = next_time;
            events += 1;
            match next_ev {
                Ev::End => break,
                Ev::PhiBoundary => {
                    // Guarded operation concludes; the upgraded pair
                    // continues in normal mode with whatever latent state it
                    // has (the paper argues dormant contamination here is
                    // negligible; the simulator keeps it, which lets tests
                    // quantify that claim).
                    self.mode = Mode::NormalUpgraded;
                    self.guarded_end = phi;
                    self.log(TraceEvent::GuardConcluded { time: phi });
                }
                Ev::Fault(which) => {
                    self.p(which).contaminated = true;
                    self.p(which).fault_time = f64::INFINITY;
                    let time = self.t;
                    self.log(TraceEvent::FaultManifested {
                        time,
                        process: which as usize,
                    });
                }
                Ev::Message(which) => self.handle_message(which),
                Ev::BlockDone(which) => self.handle_block_done(which),
            }
        }

        // Wall-clock reads stay out of this crate (the trajectory must be a
        // pure function of the seed); throughput is derivable from the
        // enclosing span's duration and these counters.
        if telemetry::enabled() {
            telemetry::counter("sim.engine.runs", 1);
            telemetry::counter("sim.engine.events", events);
            telemetry::observe("sim.engine.events_per_run", events as f64);
        }
        self.finish()
    }

    /// Whether a process emits messages in the current mode.
    fn sends_messages(&self, which: P) -> bool {
        match (self.mode, which) {
            // P1old's outputs are suppressed during G-OP and it is retired
            // after a successful upgrade.
            (Mode::Gop, P::P1Old) | (Mode::NormalUpgraded, P::P1Old) => false,
            // P1new is retired after recovery.
            (Mode::NormalRecovered, P::P1New) => false,
            _ => true,
        }
    }

    fn handle_message(&mut self, which: P) {
        let params = self.cfg.params;
        let external = self.rng.bernoulli(params.p_ext);
        let t = self.t;
        // Schedule the sender's next message now; a block will simply delay
        // its delivery past the completion.
        let gap = self.rng.exp(params.lambda);
        self.p(which).next_msg = t + gap;

        match self.mode {
            Mode::Gop => self.gop_message(which, external),
            Mode::NormalUpgraded | Mode::NormalRecovered => self.normal_message(which, external),
        }
    }

    fn gop_message(&mut self, which: P, external: bool) {
        let params = self.cfg.params;
        let t = self.t;
        match which {
            P::P1New => {
                if external {
                    // Always potentially contaminated => AT.
                    let d = self.rng.exp(params.alpha);
                    self.start_block(P::P1New, Block::AcceptanceTest, d);
                } else {
                    // Internal receipt by P2: actual propagation plus the
                    // confidence drop (dirty bit; checkpoint if P2 was
                    // believed clean and is free to take one).
                    if self.procs[P::P1New as usize].contaminated {
                        self.p(P::P2).contaminated = true;
                    }
                    let p2 = &self.procs[P::P2 as usize];
                    if !p2.dirty && p2.block.is_none() {
                        let d = self.rng.exp(params.beta);
                        self.start_block(P::P2, Block::Checkpoint, d);
                    }
                    self.set_p2_dirty(true);
                }
            }
            P::P2 => {
                if external {
                    if self.procs[P::P2 as usize].dirty {
                        let d = self.rng.exp(params.alpha);
                        self.start_block(P::P2, Block::AcceptanceTest, d);
                    } else if self.procs[P::P2 as usize].contaminated {
                        // Believed clean, actually contaminated, no AT: the
                        // erroneous message reaches the external world.
                        self.fail(t);
                    }
                } else {
                    // Internal receipt by P1new and the shadow P1old.
                    if self.procs[P::P2 as usize].contaminated {
                        self.p(P::P1New).contaminated = true;
                        self.p(P::P1Old).contaminated = true;
                    }
                    // P1old checkpoints on a confidence-lowering receipt.
                    if self.procs[P::P2 as usize].dirty {
                        let p1o = &mut self.procs[P::P1Old as usize];
                        if !p1o.dirty && p1o.block.is_none() {
                            let d = self.rng.exp(params.beta);
                            self.start_block(P::P1Old, Block::Checkpoint, d);
                        }
                        self.p(P::P1Old).dirty = true;
                    }
                }
            }
            P::P1Old => unreachable!("P1old does not send during G-OP"),
        }
    }

    fn normal_message(&mut self, which: P, external: bool) {
        let t = self.t;
        let peer = match which {
            P::P2 => match self.mode {
                Mode::NormalUpgraded => P::P1New,
                _ => P::P1Old,
            },
            other => {
                // `sends_messages` retires P1old after a successful upgrade
                // and P1new after a recovery; whichever first process is
                // still active talks to P2.
                debug_assert!(
                    !(other == P::P1Old && self.mode == Mode::NormalUpgraded),
                    "retired P1old sent a message"
                );
                debug_assert!(
                    !(other == P::P1New && self.mode == Mode::NormalRecovered),
                    "retired P1new sent a message"
                );
                P::P2
            }
        };
        if self.procs[which as usize].contaminated {
            if external {
                self.fail(t);
            } else {
                self.p(peer).contaminated = true;
            }
        }
    }

    fn start_block(&mut self, which: P, kind: Block, duration: f64) {
        let t = self.t;
        if kind == Block::AcceptanceTest {
            self.at_count += 1;
            self.log(TraceEvent::AcceptanceTestStarted {
                time: t,
                process: which as usize,
            });
        } else {
            self.checkpoint_count += 1;
            self.log(TraceEvent::CheckpointStarted {
                time: t,
                process: which as usize,
            });
        }
        let ps = self.p(which);
        debug_assert!(ps.block.is_none(), "process already blocked");
        ps.block = Some((t + duration, kind));
        ps.block_start = t;
    }

    fn handle_block_done(&mut self, which: P) {
        let params = self.cfg.params;
        let t = self.t;
        let Some((_, kind)) = self.procs[which as usize].block else {
            unreachable!("block-done event fired for a process with no pending block");
        };
        // Account blocking time against the guarded worth segment, and
        // restart the process's message clock from the completion instant
        // (emissions queued behind the block would otherwise fire in the
        // past; the restart is equivalent by memorylessness).
        {
            let segment_end = self.guarded_end;
            let next_msg = t + self.rng.exp(params.lambda);
            let ps = self.p(which);
            let start = ps.block_start.min(segment_end);
            let end = t.min(segment_end);
            ps.blocked_total += (end - start).max(0.0);
            ps.block = None;
            ps.next_msg = next_msg;
        }

        match kind {
            Block::Checkpoint => {
                if which == P::P2 {
                    self.set_p2_dirty(true);
                } else {
                    self.p(which).dirty = true;
                }
            }
            Block::AcceptanceTest => {
                if self.procs[which as usize].contaminated {
                    if self.rng.bernoulli(params.coverage) {
                        self.detect(t);
                    } else {
                        self.fail(t);
                    }
                } else {
                    // Scenario 1/2 of the paper: the AT passes and the
                    // process (and its message lineage) is judged clean.
                    self.set_p2_dirty(false);
                }
            }
        }
    }

    /// Successful error detection: MDCD recovery rolls the system back to a
    /// validity-consistent global state and downgrades to (P1old, P2).
    fn detect(&mut self, t: f64) {
        debug_assert!(self.detection_time.is_none(), "detection happens once");
        self.detection_time = Some(t);
        self.log(TraceEvent::ErrorDetected { time: t });
        self.guarded_end = self.guarded_end.min(t);
        self.mode = Mode::NormalRecovered;
        let params = self.cfg.params;
        // Interrupted safeguard operations are abandoned (account their
        // blocking up to τ).
        for which in [P::P1New, P::P1Old, P::P2] {
            let segment_end = self.guarded_end;
            let ps = self.p(which);
            if ps.block.is_some() {
                let start = ps.block_start.min(segment_end);
                ps.blocked_total += (t.min(segment_end) - start).max(0.0);
                ps.block = None;
            }
        }
        // Rollback restores validated states; latent bugs remain, so fresh
        // manifestation clocks are drawn for the surviving processes.
        self.p(P::P1Old).contaminated = false;
        self.p(P::P2).contaminated = false;
        self.p(P::P1Old).dirty = false;
        self.set_p2_dirty(false);
        self.p(P::P1Old).fault_time = t + self.rng.exp(params.mu_old);
        self.p(P::P2).fault_time = t + self.rng.exp(params.mu_old);
        self.p(P::P1Old).next_msg = t + self.rng.exp(params.lambda);
        self.p(P::P2).next_msg = t + self.rng.exp(params.lambda);
    }

    fn fail(&mut self, t: f64) {
        if self.failure_time.is_none() {
            self.failure_time = Some(t);
            self.guarded_end = self.guarded_end.min(t);
            self.log(TraceEvent::SystemFailed { time: t });
        }
    }

    fn finish(mut self) -> RunOutcome {
        let theta = self.cfg.params.theta;
        let seg = self.guarded_end;
        if let Some(since) = self.p2_dirty_since.take() {
            let end = self.t.max(seg);
            self.p2_dirty_total += (end.min(seg) - since.min(seg)).max(0.0);
        }

        // Residual blocking at the end of the measured segment.
        let blocked = |ps: &ProcState| -> f64 {
            let mut total = ps.blocked_total;
            if let Some((_, _)) = ps.block {
                let start = ps.block_start.min(seg);
                total += (seg - start).max(0.0);
            }
            total
        };
        let progress_p1 = (seg - blocked(&self.procs[P::P1New as usize])).max(0.0);
        let progress_p2 = (seg - blocked(&self.procs[P::P2 as usize])).max(0.0);

        let (class, worth) = if self.failure_time.is_some() {
            (PathClass::S3, 0.0)
        } else if let Some(tau) = self.detection_time {
            let gamma = self.cfg.gamma_for(tau);
            let w = gamma * (progress_p1 + progress_p2 + 2.0 * (theta - tau));
            (PathClass::S2, w)
        } else {
            let w = progress_p1 + progress_p2 + 2.0 * (theta - self.cfg.phi);
            (PathClass::S1, w)
        };

        RunOutcome {
            class,
            worth,
            detection_time: self.detection_time,
            failure_time: self.failure_time,
            progress_p1,
            progress_p2,
            at_count: self.at_count,
            checkpoint_count: self.checkpoint_count,
            p2_dirty_fraction: if seg > 0.0 {
                (self.p2_dirty_total / seg).clamp(0.0, 1.0)
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use performability::GsuParams;

    /// Scaled-down parameters: same structure as Table 3 (λ ≫ µ, α = β ≫ λ)
    /// but ~4000 message events per run instead of ~24 million, so the
    /// event-exact engine is testable in debug builds.
    fn small_params() -> GsuParams {
        GsuParams {
            theta: 50.0,
            lambda: 40.0,
            mu_new: 0.02,
            mu_old: 1e-7,
            coverage: 0.95,
            p_ext: 0.1,
            alpha: 200.0,
            beta: 200.0,
        }
    }

    fn run_one(params: GsuParams, phi: f64, seed: u64) -> RunOutcome {
        let cfg = SimConfig::new(params, phi).unwrap();
        let mut rng = SimRng::from_seed(seed);
        simulate_run(&cfg, &mut rng)
    }

    #[test]
    fn deterministic_given_seed() {
        let p = small_params();
        let a = run_one(p, 30.0, 123);
        let b = run_one(p, 30.0, 123);
        assert_eq!(a, b);
    }

    #[test]
    fn perfect_software_yields_s1_with_overhead_shaped_worth() {
        let mut p = small_params();
        p.mu_new = 1e-12;
        p.mu_old = 0.0;
        let phi = 30.0;
        let out = run_one(p, phi, 5);
        assert_eq!(out.class, PathClass::S1);
        assert!(out.failure_time.is_none());
        assert!(out.detection_time.is_none());
        // Worth = ρ1·φ + ρ2·φ + 2(θ−φ) < 2θ because overhead is still paid.
        assert!(out.worth < 2.0 * p.theta);
        assert!(out.worth > 0.95 * 2.0 * p.theta);
        assert!(out.at_count > 0);
        assert!(out.checkpoint_count > 0);
        assert!(out.p2_dirty_fraction > 0.5);
    }

    #[test]
    fn phi_zero_is_unguarded() {
        let p = small_params();
        let out = run_one(p, 0.0, 11);
        assert_eq!(out.at_count, 0);
        assert_eq!(out.checkpoint_count, 0);
        assert!(out.detection_time.is_none());
        match out.class {
            PathClass::S1 => assert_eq!(out.worth, 2.0 * p.theta),
            PathClass::S3 => assert_eq!(out.worth, 0.0),
            PathClass::S2 => panic!("cannot detect without guarded operation"),
        }
    }

    #[test]
    fn very_unreliable_software_mostly_detected_or_failed() {
        let mut p = small_params();
        p.mu_new = 2.0; // fault manifests almost immediately
        let mut s2 = 0;
        let mut s3 = 0;
        for seed in 0..200 {
            let out = run_one(p, 40.0, seed);
            match out.class {
                PathClass::S1 => panic!("fault should manifest: {out:?}"),
                PathClass::S2 => s2 += 1,
                PathClass::S3 => s3 += 1,
            }
        }
        // Coverage 0.95 per erroneous message, though a contaminated P2 can
        // slip; detection should still dominate.
        assert!(s2 > s3, "s2={s2} s3={s3}");
    }

    #[test]
    fn detection_implies_consistent_outcome() {
        let mut p = small_params();
        p.mu_new = 0.05;
        for seed in 0..200 {
            let out = run_one(p, 45.0, seed);
            if out.class == PathClass::S2 {
                let tau = out.detection_time.expect("S2 has a detection time");
                assert!(out.failure_time.is_none());
                assert!(tau < p.theta);
                assert!(out.worth <= 2.0 * p.theta);
            }
            if out.class == PathClass::S3 {
                assert!(out.failure_time.is_some());
                assert_eq!(out.worth, 0.0);
            }
        }
    }

    #[test]
    fn progress_never_exceeds_segment() {
        let p = small_params();
        for seed in 0..100 {
            let out = run_one(p, 30.0, seed);
            let seg = out.detection_time.unwrap_or(30.0).min(30.0);
            assert!(out.progress_p1 <= seg + 1e-9);
            assert!(out.progress_p2 <= seg + 1e-9);
            assert!((0.0..=1.0).contains(&out.p2_dirty_fraction));
        }
    }

    #[test]
    fn overhead_counts_scale_with_phi() {
        let mut p = small_params();
        p.mu_new = 1e-12; // isolate the overhead process
        let short: u64 = (0..20).map(|s| run_one(p, 5.0, s).at_count).sum();
        let long: u64 = (0..20).map(|s| run_one(p, 40.0, s).at_count).sum();
        assert!(long > 4 * short, "short={short} long={long}");
    }

    #[test]
    fn measured_overhead_matches_renewal_formula() {
        let mut p = small_params();
        p.mu_new = 1e-12;
        p.mu_old = 0.0;
        let phi = 50.0;
        let mut progress = 0.0;
        for seed in 0..50 {
            progress += run_one(p, phi, seed).progress_p1;
        }
        let rho1 = progress / (50.0 * phi);
        let want = 1.0 - (p.p_ext / p.alpha) / (1.0 / p.lambda + p.p_ext / p.alpha);
        assert!((rho1 - want).abs() < 0.01, "{rho1} vs {want}");
    }

    #[test]
    fn gamma_none_increases_s2_worth() {
        let mut p = small_params();
        p.mu_new = 0.05;
        let cfg = SimConfig::new(p, 40.0).unwrap();
        for seed in 0..200 {
            let mut r1 = SimRng::from_seed(seed);
            let mut r2 = SimRng::from_seed(seed);
            let with = simulate_run(&cfg, &mut r1);
            let without = simulate_run(&cfg.with_gamma(crate::GammaMode::None), &mut r2);
            if with.class == PathClass::S2 {
                assert!(without.worth >= with.worth);
            }
        }
    }
}
