//! The empirical distribution of mission worth — performability in Meyer's
//! original sense.
//!
//! The paper works with the *expectation* `E[W_φ]` because that is what the
//! translated reward variables deliver; Meyer's performability (its ref [4])
//! is the full probability distribution of accumulated performance. The
//! simulator sees every sample path's worth, so it can estimate that
//! distribution directly: this module collects it with quantiles, the
//! empirical CDF, and the three-class decomposition made visible (the atom
//! at 0 from `S3`, the `S2` mass discounted by γ, and the `S1` mass near
//! `2θ − (2−ρΣ)φ`).

use crate::{simulate_run_hybrid, Calibration, SimConfig, SimRng};

/// The empirical worth distribution from replicated simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct WorthDistribution {
    /// Sorted sample of accrued worths (one per replication).
    samples: Vec<f64>,
    /// The scenario's ideal worth `2θ`, for normalization.
    ideal: f64,
}

impl WorthDistribution {
    /// Collects `replications` worth samples for the configuration using
    /// the hybrid engine.
    pub fn collect(config: &SimConfig, replications: usize, seed: u64) -> Self {
        // Calibrate once, like MonteCarlo does.
        let mut cal_rng = SimRng::stream(seed, u64::MAX);
        let cal = crate::calibrate(&config.params, 40_000, &mut cal_rng);
        Self::collect_with_calibration(config, &cal, replications, seed)
    }

    /// Like [`WorthDistribution::collect`] with a pre-computed calibration.
    pub fn collect_with_calibration(
        config: &SimConfig,
        cal: &Calibration,
        replications: usize,
        seed: u64,
    ) -> Self {
        let n = replications.max(1);
        let mut samples: Vec<f64> = (0..n)
            .map(|i| {
                let mut rng = SimRng::stream(seed, i as u64);
                simulate_run_hybrid(config, cal, &mut rng).worth
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        WorthDistribution {
            samples,
            ideal: 2.0 * config.params.theta,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were collected (cannot happen via `collect`).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The empirical CDF `P[W ≤ w]`.
    pub fn cdf(&self, w: f64) -> f64 {
        let idx = self.samples.partition_point(|&s| s <= w);
        idx as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile (by the nearest-rank rule).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile level in [0, 1]");
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        self.samples[rank - 1]
    }

    /// Sample mean — converges to the paper's `E[W_φ]`.
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// The atom at zero, `P[W = 0]` — the worthless `S3` mass.
    pub fn zero_mass(&self) -> f64 {
        self.samples.iter().take_while(|&&w| w == 0.0).count() as f64 / self.samples.len() as f64
    }

    /// A fixed-width ASCII histogram over `[0, 2θ]` with `bins` bins.
    pub fn histogram(&self, bins: usize) -> String {
        use std::fmt::Write as _;
        let bins = bins.max(1);
        let mut counts = vec![0usize; bins];
        for &w in &self.samples {
            let b = ((w / self.ideal) * bins as f64) as usize;
            counts[b.min(bins - 1)] += 1;
        }
        let max = counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (b, &c) in counts.iter().enumerate() {
            let lo = self.ideal * b as f64 / bins as f64;
            let bar = "#".repeat((c * 40).div_ceil(max).min(40));
            let _ = writeln!(
                out,
                "{:>9.0}..{:<9.0} {:>6} {}",
                lo,
                self.ideal * (b + 1) as f64 / bins as f64,
                c,
                bar
            );
        }
        out
    }
}

/// Convenience: the worth distributions of the guarded and unguarded
/// scenarios side by side (what Meyer-style performability evaluation of
/// the duration decision looks like).
///
/// # Errors
///
/// Propagates configuration validation failures.
pub fn compare_guarded_unguarded(
    params: performability::GsuParams,
    phi: f64,
    replications: usize,
    seed: u64,
) -> Result<(WorthDistribution, WorthDistribution), performability::PerfError> {
    let guarded = WorthDistribution::collect(&SimConfig::new(params, phi)?, replications, seed);
    let unguarded = WorthDistribution::collect(
        &SimConfig::new(params, 0.0)?,
        replications,
        seed.wrapping_add(0x5EED),
    );
    Ok((guarded, unguarded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MonteCarlo;
    use performability::GsuParams;

    fn dist(phi: f64, n: usize) -> WorthDistribution {
        let params = GsuParams::paper_baseline();
        WorthDistribution::collect(&SimConfig::new(params, phi).unwrap(), n, 5)
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let d = dist(7000.0, 2000);
        assert_eq!(d.len(), 2000);
        assert!(!d.is_empty());
        let mut last = 0.0;
        for w in [0.0, 5000.0, 10_000.0, 15_000.0, 20_000.0] {
            let c = d.cdf(w);
            assert!(c >= last);
            last = c;
        }
        assert_eq!(d.cdf(20_000.0), 1.0);
        assert_eq!(d.cdf(-1.0), 0.0);
    }

    #[test]
    fn zero_atom_matches_s3_mass() {
        let params = GsuParams::paper_baseline();
        let cfg = SimConfig::new(params, 7000.0).unwrap();
        let d = WorthDistribution::collect(&cfg, 3000, 9);
        let mc = MonteCarlo::new(cfg)
            .with_replications(3000)
            .with_seed(9)
            .run();
        assert!(
            (d.zero_mass() - mc.p_s3).abs() < 1e-9,
            "atom {} vs P(S3) {}",
            d.zero_mass(),
            mc.p_s3
        );
        assert!((d.mean() - mc.mean_worth).abs() < 1e-9);
    }

    #[test]
    fn quantiles_bracket_and_order() {
        let d = dist(6000.0, 2000);
        let q10 = d.quantile(0.1);
        let q50 = d.quantile(0.5);
        let q90 = d.quantile(0.9);
        assert!(q10 <= q50 && q50 <= q90);
        assert!(q90 <= 2.0 * 10_000.0);
        assert_eq!(d.quantile(0.0), d.quantile(1e-9));
    }

    #[test]
    fn guarding_removes_mass_from_zero() {
        let params = GsuParams::paper_baseline();
        let (guarded, unguarded) = compare_guarded_unguarded(params, 7000.0, 2500, 3).unwrap();
        // Unguarded: failure nullifies worth with prob ≈ 1 − e^{−1} ≈ 0.63.
        assert!((unguarded.zero_mass() - 0.632).abs() < 0.04);
        // Guarding converts most of that atom into discounted S2 worth.
        assert!(guarded.zero_mass() < 0.25);
        assert!(guarded.mean() > unguarded.mean());
    }

    #[test]
    fn histogram_renders_all_bins() {
        let d = dist(5000.0, 500);
        let h = d.histogram(10);
        assert_eq!(h.lines().count(), 10);
        assert!(h.contains('#'));
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn quantile_domain_checked() {
        dist(1000.0, 10).quantile(1.5);
    }
}
