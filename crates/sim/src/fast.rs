//! The hybrid two-level simulation engine.
//!
//! The exact engine (`simulate_run`) executes every message event — about
//! `2λθ ≈ 2.4·10⁷` events per replication at the paper's parameters, which
//! makes Monte-Carlo estimation at mission scale impractical. This module
//! exploits the same timescale separation the paper's analysis does
//! (§3.3: overhead events reach steady state long before any fault
//! manifests):
//!
//! * a **calibration pass** ([`calibrate`]) runs the exact engine
//!   fault-free over a short window to *measure* the steady-state
//!   forward-progress fractions `ρ1`, `ρ2` and the dirty-bit occupancy of
//!   `P2`;
//! * the **skeleton** ([`simulate_run_hybrid`]) then jumps from fault
//!   manifestation to fault manifestation, and simulates the protocol at
//!   message granularity only inside the short **error episodes** that
//!   follow a manifestation (detection or failure resolves within a few
//!   message cycles, i.e. minutes of mission time).
//!
//! Agreement between the two engines at scaled-down parameters is asserted
//! in this module's tests and in the workspace integration tests.

use crate::engine::{PathClass, RunOutcome};
use crate::{simulate_run, SimConfig, SimRng};
use performability::GsuParams;

/// Steady-state protocol quantities measured by [`calibrate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Forward-progress fraction of `P1new` under guarded operation.
    pub rho1: f64,
    /// Forward-progress fraction of `P2` under guarded operation.
    pub rho2: f64,
    /// Fraction of time `P2`'s dirty bit is set under guarded operation.
    pub p2_dirty: f64,
}

/// Measures the steady-state overhead quantities by running the exact
/// engine fault-free for roughly `events` message events.
pub fn calibrate(params: &GsuParams, events: usize, rng: &mut SimRng) -> Calibration {
    // Horizon chosen so each of the two sending processes emits ~events/2
    // messages.
    let horizon = (events as f64 / (2.0 * params.lambda)).max(4.0 / params.lambda);
    let mut p = *params;
    p.mu_new = f64::MIN_POSITIVE; // fault-free within any finite horizon
    p.mu_old = 0.0;
    p.theta = horizon;
    let cfg = match SimConfig::new(p, horizon) {
        Ok(cfg) => cfg,
        // The overrides (µ_new = MIN_POSITIVE, µ_old = 0, θ = horizon > 0)
        // keep any caller-valid parameter set valid.
        Err(e) => unreachable!("calibration parameters are valid: {e}"),
    };
    let out = simulate_run(&cfg, rng);
    debug_assert_eq!(out.class, PathClass::S1);
    Calibration {
        rho1: (out.progress_p1 / horizon).clamp(0.0, 1.0),
        rho2: (out.progress_p2 / horizon).clamp(0.0, 1.0),
        p2_dirty: out.p2_dirty_fraction,
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EpisodeEnd {
    Detected(f64),
    Failed(f64),
}

/// Simulates one mission window with the two-level scheme.
///
/// Semantics match [`simulate_run`] with three documented approximations:
/// the guarded-segment progress is `ρ_i·segment` with the calibrated
/// fractions instead of per-path measured blocking; the dirty-bit state at a
/// manifestation instant is sampled from its calibrated occupancy; and the
/// `at_count`/`checkpoint_count` fields count only episode events (the
/// steady background volume is `λ·p_ext·t` ATs by construction).
pub fn simulate_run_hybrid(config: &SimConfig, cal: &Calibration, rng: &mut SimRng) -> RunOutcome {
    let params = config.params;
    let theta = params.theta;
    let phi = config.phi;

    let mut at_count = 0u64;
    let mut checkpoint_count = 0u64;

    // --- Guarded operation: jump to the first relevant manifestation. ----
    let mut detection: Option<f64> = None;
    let mut failure: Option<f64> = None;

    if phi > 0.0 {
        // Shadow-process (P1old) faults are irrelevant during G-OP: its
        // outputs are suppressed and recovery restores validated state.
        // Episodes are terminal (detection or failure — contamination never
        // clears without recovery), so only the first manifestation matters.
        let fault_p1n = rng.exp(params.mu_new);
        let fault_p2 = rng.exp(params.mu_old);
        let (first, p1n_faulted) = if fault_p1n <= fault_p2 {
            (fault_p1n, true)
        } else {
            (fault_p2, false)
        };
        if first < phi {
            match gop_episode(
                params,
                cal,
                first,
                phi,
                p1n_faulted,
                rng,
                &mut at_count,
                &mut checkpoint_count,
            ) {
                EpisodeEnd::Detected(tau) => detection = Some(tau),
                EpisodeEnd::Failed(tf) => failure = Some(tf),
            }
        }
    }

    // --- Normal mode remainder. ------------------------------------------
    let (seg, class_if_survives) = match (detection, failure) {
        (_, Some(tf)) => (tf.min(phi), PathClass::S3),
        (Some(tau), None) => (tau.min(phi), PathClass::S2),
        (None, None) => (phi, PathClass::S1),
    };

    if failure.is_none() {
        let start = detection.unwrap_or(phi);
        // After recovery the old version (µ_old) is active; after a
        // successful upgrade the new one (µ_new) is. Surviving processes
        // are clean at the hand-over (recovery restores validated state;
        // the analytic model makes the same assumption).
        let mu_active = if detection.is_some() {
            params.mu_old
        } else {
            params.mu_new
        };
        let fault_a = start + rng.exp(mu_active);
        let fault_b = start + rng.exp(params.mu_old);
        let first = fault_a.min(fault_b);
        if first < theta {
            // An unprotected contaminated process fails the system at its
            // first erroneous external message; internal messages merely
            // propagate. Either way failure follows within a few message
            // cycles — simulate them.
            let tf = normal_failure_time(params, first, rng);
            if tf < theta {
                failure = Some(tf);
            }
        }
    }

    let class = if failure.is_some() {
        PathClass::S3
    } else {
        class_if_survives
    };

    let progress_p1 = cal.rho1 * seg;
    let progress_p2 = cal.rho2 * seg;
    let worth = match (class, detection) {
        (PathClass::S3, _) => 0.0,
        (PathClass::S2, Some(tau)) => {
            config.gamma_for(tau) * (progress_p1 + progress_p2 + 2.0 * (theta - tau))
        }
        (PathClass::S2, None) => unreachable!("S2 has a detection time"),
        (PathClass::S1, _) => progress_p1 + progress_p2 + 2.0 * (theta - phi),
    };

    RunOutcome {
        class,
        worth,
        detection_time: detection,
        failure_time: failure,
        progress_p1,
        progress_p2,
        at_count,
        checkpoint_count,
        p2_dirty_fraction: cal.p2_dirty,
    }
}

/// Message-level episode from a fault manifestation during guarded
/// operation until detection or failure.
#[allow(clippy::too_many_arguments)]
fn gop_episode(
    params: GsuParams,
    cal: &Calibration,
    start: f64,
    phi: f64,
    p1n_faulted: bool,
    rng: &mut SimRng,
    at_count: &mut u64,
    checkpoint_count: &mut u64,
) -> EpisodeEnd {
    let mut t = start;
    let mut ctn_p1n = p1n_faulted;
    let mut ctn_p2 = !p1n_faulted;
    let mut dirty2 = rng.bernoulli(cal.p2_dirty);

    loop {
        let dt_p1n = rng.exp(params.lambda);
        let dt_p2 = rng.exp(params.lambda);
        let (dt, p1n_sends) = if dt_p1n <= dt_p2 {
            (dt_p1n, true)
        } else {
            (dt_p2, false)
        };
        t += dt;
        let in_gop = t < phi;
        let external = rng.bernoulli(params.p_ext);

        if p1n_sends {
            if external {
                if in_gop {
                    *at_count += 1;
                    let done = t + rng.exp(params.alpha);
                    if ctn_p1n {
                        return if rng.bernoulli(params.coverage) {
                            EpisodeEnd::Detected(done)
                        } else {
                            EpisodeEnd::Failed(done)
                        };
                    }
                    dirty2 = false;
                } else if ctn_p1n {
                    // Past φ: no safeguard, erroneous message escapes.
                    return EpisodeEnd::Failed(t);
                }
            } else {
                if ctn_p1n {
                    ctn_p2 = true;
                }
                if in_gop {
                    if !dirty2 {
                        *checkpoint_count += 1;
                    }
                    dirty2 = true;
                }
            }
        } else if external {
            if in_gop && dirty2 {
                *at_count += 1;
                let done = t + rng.exp(params.alpha);
                if ctn_p2 {
                    return if rng.bernoulli(params.coverage) {
                        EpisodeEnd::Detected(done)
                    } else {
                        EpisodeEnd::Failed(done)
                    };
                }
                dirty2 = false;
            } else if ctn_p2 {
                return EpisodeEnd::Failed(t);
            }
        } else if ctn_p2 {
            ctn_p1n = true;
        }
    }
}

/// Time at which an unprotected system with a freshly contaminated process
/// fails: the contaminated set grows by internal messages and the system
/// fails at the first external message from a contaminated process.
fn normal_failure_time(params: GsuParams, start: f64, rng: &mut SimRng) -> f64 {
    let mut t = start;
    let mut contaminated = 1usize; // out of the two active processes
    loop {
        // Superposition of the contaminated processes' message streams.
        t += rng.exp(params.lambda * contaminated as f64);
        if rng.bernoulli(params.p_ext) {
            return t;
        }
        contaminated = 2; // internal message contaminates the peer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GammaMode;

    /// Scaled-down parameters where the exact engine is fast enough to act
    /// as ground truth.
    fn small_params() -> GsuParams {
        GsuParams {
            theta: 50.0,
            lambda: 40.0,
            mu_new: 0.02,
            mu_old: 1e-7,
            coverage: 0.95,
            p_ext: 0.1,
            alpha: 200.0,
            beta: 200.0,
        }
    }

    #[test]
    fn calibration_measures_sensible_fractions() {
        let mut rng = SimRng::from_seed(1);
        let cal = calibrate(&small_params(), 20_000, &mut rng);
        // 1−ρ1 ≈ (p_ext/α)/(1/λ + p_ext/α) = 0.0196.
        assert!((cal.rho1 - 0.98).abs() < 0.01, "rho1 = {}", cal.rho1);
        assert!(cal.rho2 > 0.9 && cal.rho2 < 1.0, "rho2 = {}", cal.rho2);
        assert!(cal.p2_dirty > 0.5, "p2_dirty = {}", cal.p2_dirty);
    }

    #[test]
    fn hybrid_agrees_with_exact_on_class_probabilities() {
        let params = small_params();
        let phi = 30.0;
        let cfg = SimConfig::new(params, phi).unwrap();
        let mut rng = SimRng::from_seed(7);
        let cal = calibrate(&params, 20_000, &mut rng);

        let n = 2000;
        let mut exact = [0usize; 3];
        let mut hybrid = [0usize; 3];
        let mut exact_worth = 0.0;
        let mut hybrid_worth = 0.0;
        for i in 0..n {
            let mut r1 = SimRng::stream(100, i);
            let mut r2 = SimRng::stream(200, i);
            let a = simulate_run(&cfg, &mut r1);
            let b = simulate_run_hybrid(&cfg, &cal, &mut r2);
            exact[a.class as usize] += 1;
            hybrid[b.class as usize] += 1;
            exact_worth += a.worth;
            hybrid_worth += b.worth;
        }
        for k in 0..3 {
            let pe = exact[k] as f64 / n as f64;
            let ph = hybrid[k] as f64 / n as f64;
            assert!(
                (pe - ph).abs() < 0.05,
                "class {k}: exact {pe} vs hybrid {ph}"
            );
        }
        let we = exact_worth / n as f64;
        let wh = hybrid_worth / n as f64;
        assert!(
            (we - wh).abs() / we < 0.05,
            "worth exact {we} vs hybrid {wh}"
        );
    }

    #[test]
    fn hybrid_is_deterministic() {
        let params = small_params();
        let cfg = SimConfig::new(params, 25.0).unwrap();
        let mut r = SimRng::from_seed(3);
        let cal = calibrate(&params, 5_000, &mut r);
        let mut a = SimRng::from_seed(9);
        let mut b = SimRng::from_seed(9);
        assert_eq!(
            simulate_run_hybrid(&cfg, &cal, &mut a),
            simulate_run_hybrid(&cfg, &cal, &mut b)
        );
    }

    #[test]
    fn hybrid_phi_zero_never_detects() {
        let params = small_params();
        let cfg = SimConfig::new(params, 0.0).unwrap();
        let cal = Calibration {
            rho1: 0.98,
            rho2: 0.95,
            p2_dirty: 0.9,
        };
        for seed in 0..100 {
            let mut rng = SimRng::from_seed(seed);
            let out = simulate_run_hybrid(&cfg, &cal, &mut rng);
            assert!(out.detection_time.is_none());
            assert_ne!(out.class, PathClass::S2);
            if out.class == PathClass::S1 {
                assert_eq!(out.worth, 2.0 * params.theta);
            }
        }
    }

    #[test]
    fn hybrid_handles_paper_scale_quickly() {
        // The whole point: 500 mission-scale replications in well under a
        // second.
        let params = GsuParams::paper_baseline();
        let cfg = SimConfig::new(params, 7000.0).unwrap();
        let cal = Calibration {
            rho1: 0.98,
            rho2: 0.955,
            p2_dirty: 0.9,
        };
        let mut s2 = 0;
        for seed in 0..500 {
            let mut rng = SimRng::from_seed(seed);
            let out = simulate_run_hybrid(&cfg, &cal, &mut rng);
            if out.class == PathClass::S2 {
                s2 += 1;
                assert!(out.detection_time.unwrap() <= 7000.0 + 1.0);
            }
        }
        // Detection prob ≈ c·(1 − e^{−µφ}) ≈ 0.478.
        let frac = s2 as f64 / 500.0;
        assert!((frac - 0.48).abs() < 0.07, "S2 fraction {frac}");
    }

    #[test]
    fn hybrid_gamma_modes_respected() {
        let params = GsuParams::paper_baseline();
        let cal = Calibration {
            rho1: 0.98,
            rho2: 0.955,
            p2_dirty: 0.9,
        };
        let base = SimConfig::new(params, 9000.0).unwrap();
        for seed in 0..200 {
            let mut r1 = SimRng::from_seed(seed);
            let mut r2 = SimRng::from_seed(seed);
            let with = simulate_run_hybrid(&base, &cal, &mut r1);
            let without = simulate_run_hybrid(&base.with_gamma(GammaMode::None), &cal, &mut r2);
            if with.class == PathClass::S2 {
                assert!(without.worth >= with.worth);
            } else {
                assert_eq!(with.worth, without.worth);
            }
        }
    }
}
