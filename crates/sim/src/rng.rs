//! Random-number utilities for the simulator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded random source with the distributions the protocol simulation
/// needs. Deterministic for a given seed, so experiments are reproducible.
///
/// # Example
///
/// ```
/// use mdcd_sim::SimRng;
///
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.exp(2.0), b.exp(2.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent stream for replication `index` — a SplitMix64
    /// hash decorrelates adjacent indices.
    pub fn stream(seed: u64, index: u64) -> Self {
        let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self::from_seed(z ^ (z >> 31))
    }

    /// Samples `Exp(rate)` by inversion. A zero rate yields `+∞` (the event
    /// never happens), matching how the models treat absent transitions.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or NaN.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate >= 0.0, "exponential rate must be >= 0, got {rate}");
        if rate == 0.0 {
            return f64::INFINITY;
        }
        // gen::<f64>() is in [0, 1); use 1−u to avoid ln(0).
        let u: f64 = self.inner.gen();
        -(1.0 - u).ln() / rate
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        let u: f64 = self.inner.gen();
        u < p.clamp(0.0, 1.0)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::stream(1, 5);
        let mut b = SimRng::stream(1, 5);
        for _ in 0..10 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn distinct_streams_differ() {
        let mut a = SimRng::stream(1, 5);
        let mut b = SimRng::stream(1, 6);
        let same = (0..10).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 3);
    }

    #[test]
    fn exp_mean_is_reciprocal_rate() {
        let mut rng = SimRng::from_seed(99);
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exp(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exp_zero_rate_is_never() {
        let mut rng = SimRng::from_seed(1);
        assert_eq!(rng.exp(0.0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "rate must be >= 0")]
    fn exp_negative_rate_panics() {
        SimRng::from_seed(1).exp(-1.0);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = SimRng::from_seed(7);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SimRng::from_seed(7);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-0.5));
        assert!(rng.bernoulli(1.5));
    }
}
