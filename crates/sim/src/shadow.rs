//! Shadow-mode onboard validation (the first GSU stage, paper §2).
//!
//! During onboard validation the new version executes alongside the old one
//! with its outputs suppressed but *selectively logged*; discrepancies
//! against the proven version reveal fault manifestations, and the onboard
//! error log is downloaded for Bayesian reliability analysis. This module
//! simulates that stage: manifestations form a Poisson process at the
//! (unknown to the analyst) true rate, and the log drives the
//! `performability::validation` inference — closing the loop of the
//! paper's Figure 1 lifecycle (see the `upgrade_campaign` example).

use performability::validation::{FaultRatePosterior, StoppingRule};
use performability::Result;

use crate::SimRng;

/// The onboard error log produced by a validation window.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationLog {
    /// Times (hours from validation start) at which fault manifestations
    /// were observed, ascending.
    pub manifestation_times: Vec<f64>,
    /// Total shadow-mode exposure covered by this log (hours).
    pub exposure: f64,
}

impl ValidationLog {
    /// Number of manifestations in the log.
    pub fn fault_count(&self) -> u64 {
        self.manifestation_times.len() as u64
    }

    /// Applies this log to a prior as one conjugate update.
    ///
    /// # Errors
    ///
    /// Propagates posterior-update validation failures.
    pub fn update(&self, prior: FaultRatePosterior) -> Result<FaultRatePosterior> {
        prior.observe(self.fault_count(), self.exposure)
    }
}

/// Simulates a shadow-mode validation window of `duration` hours with true
/// manifestation rate `mu_true`.
pub fn simulate_validation(mu_true: f64, duration: f64, rng: &mut SimRng) -> ValidationLog {
    assert!(mu_true >= 0.0, "rate must be >= 0");
    assert!(
        duration >= 0.0 && duration.is_finite(),
        "duration must be finite"
    );
    let mut times = Vec::new();
    let mut t = rng.exp(mu_true);
    while t < duration {
        times.push(t);
        t += rng.exp(mu_true);
    }
    ValidationLog {
        manifestation_times: times,
        exposure: duration,
    }
}

/// Outcome of an adaptive validation campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// The posterior after all observed chunks.
    pub posterior: FaultRatePosterior,
    /// Total exposure spent.
    pub exposure: f64,
    /// Total manifestations observed.
    pub faults: u64,
    /// Whether the stopping rule was met within the budget.
    pub admitted: bool,
}

/// Runs validation in `chunk`-hour increments, updating the posterior after
/// each chunk, until the stopping rule admits the upgrade or `max_exposure`
/// is spent — the operational shape of the Littlewood–Wright procedure.
///
/// # Errors
///
/// Propagates posterior-update failures; `chunk` must be positive.
pub fn run_until_admitted(
    mu_true: f64,
    prior: FaultRatePosterior,
    rule: &StoppingRule,
    chunk: f64,
    max_exposure: f64,
    rng: &mut SimRng,
) -> Result<CampaignOutcome> {
    if !chunk.is_finite() || chunk <= 0.0 {
        return Err(performability::PerfError::InvalidParameter {
            name: "chunk",
            value: chunk,
            expected: "finite and > 0",
        });
    }
    let mut posterior = prior;
    let mut exposure = 0.0;
    let mut faults = 0u64;
    while exposure < max_exposure {
        if rule.satisfied(&posterior) {
            return Ok(CampaignOutcome {
                posterior,
                exposure,
                faults,
                admitted: true,
            });
        }
        let window = chunk.min(max_exposure - exposure);
        let log = simulate_validation(mu_true, window, rng);
        faults += log.fault_count();
        posterior = log.update(posterior)?;
        exposure += window;
    }
    let admitted = rule.satisfied(&posterior);
    Ok(CampaignOutcome {
        posterior,
        exposure,
        faults,
        admitted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_count_tracks_rate() {
        let mut rng = SimRng::from_seed(5);
        let mu = 1e-3;
        let duration = 1e6;
        let log = simulate_validation(mu, duration, &mut rng);
        let expected = mu * duration; // 1000
        let got = log.fault_count() as f64;
        assert!((got - expected).abs() < 4.0 * expected.sqrt(), "{got}");
        assert!(log.manifestation_times.windows(2).all(|w| w[0] <= w[1]));
        assert!(log.manifestation_times.iter().all(|&t| t < duration));
    }

    #[test]
    fn zero_rate_never_manifests() {
        let mut rng = SimRng::from_seed(1);
        let log = simulate_validation(0.0, 1e9, &mut rng);
        assert_eq!(log.fault_count(), 0);
    }

    #[test]
    fn update_applies_conjugacy() {
        let mut rng = SimRng::from_seed(2);
        let log = simulate_validation(1e-2, 1000.0, &mut rng);
        let prior = FaultRatePosterior::weakly_informative(1e-3).unwrap();
        let post = log.update(prior).unwrap();
        assert_eq!(post.shape, prior.shape + log.fault_count() as f64);
        assert_eq!(post.rate, prior.rate + 1000.0);
    }

    #[test]
    fn reliable_software_gets_admitted() {
        // True rate well below the target: the campaign should admit within
        // a reasonable budget.
        let mut rng = SimRng::from_seed(7);
        let rule = StoppingRule::new(1e-4, 0.9).unwrap();
        let prior = FaultRatePosterior::weakly_informative(1e-4).unwrap();
        let outcome = run_until_admitted(1e-6, prior, &rule, 5_000.0, 200_000.0, &mut rng).unwrap();
        assert!(outcome.admitted, "{outcome:?}");
        assert!(outcome.posterior.probability_below(1e-4) >= 0.9);
        assert!(outcome.exposure <= 200_000.0);
    }

    #[test]
    fn buggy_software_fails_admission() {
        // True rate 100× the target: the posterior concentrates above the
        // target and the rule keeps refusing.
        let mut rng = SimRng::from_seed(9);
        let rule = StoppingRule::new(1e-4, 0.9).unwrap();
        let prior = FaultRatePosterior::weakly_informative(1e-4).unwrap();
        let outcome = run_until_admitted(1e-2, prior, &rule, 2_000.0, 50_000.0, &mut rng).unwrap();
        assert!(!outcome.admitted, "{outcome:?}");
        assert!(outcome.faults > 100);
        assert!(outcome.posterior.mean() > 1e-3);
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let rule = StoppingRule::new(1e-4, 0.8).unwrap();
        let prior = FaultRatePosterior::weakly_informative(1e-4).unwrap();
        let mut a = SimRng::from_seed(11);
        let mut b = SimRng::from_seed(11);
        let oa = run_until_admitted(5e-5, prior, &rule, 1_000.0, 30_000.0, &mut a).unwrap();
        let ob = run_until_admitted(5e-5, prior, &rule, 1_000.0, 30_000.0, &mut b).unwrap();
        assert_eq!(oa, ob);
    }

    #[test]
    fn invalid_chunk_rejected() {
        let rule = StoppingRule::new(1e-4, 0.9).unwrap();
        let prior = FaultRatePosterior::weakly_informative(1e-4).unwrap();
        let mut rng = SimRng::from_seed(1);
        assert!(run_until_admitted(1e-5, prior, &rule, 0.0, 1e4, &mut rng).is_err());
    }
}
