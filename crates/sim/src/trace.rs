//! Event traces — the simulator's "onboard error log".
//!
//! The MDCD design maintains an onboard log that ground operators download
//! to understand what the protocol did (paper §2). The traced engine
//! records the same story for a simulated mission: every protocol-relevant
//! event with its timestamp, renderable as a human-readable log and
//! queryable by the tests.

use std::fmt;

use crate::engine::RunOutcome;
use crate::{SimConfig, SimRng};

/// One protocol event in a simulated mission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A fault manifested in a process (0 = P1new, 1 = P1old, 2 = P2).
    FaultManifested {
        /// Simulation time (hours).
        time: f64,
        /// Process index.
        process: usize,
    },
    /// An acceptance test started.
    AcceptanceTestStarted {
        /// Simulation time (hours).
        time: f64,
        /// Process whose message is validated.
        process: usize,
    },
    /// A checkpoint establishment started.
    CheckpointStarted {
        /// Simulation time (hours).
        time: f64,
        /// Process being checkpointed.
        process: usize,
    },
    /// An error was detected; recovery/downgrade follows.
    ErrorDetected {
        /// Simulation time (hours).
        time: f64,
    },
    /// The system failed (undetected erroneous external message).
    SystemFailed {
        /// Simulation time (hours).
        time: f64,
    },
    /// Guarded operation concluded without error at φ.
    GuardConcluded {
        /// Simulation time (hours).
        time: f64,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn time(&self) -> f64 {
        match *self {
            TraceEvent::FaultManifested { time, .. }
            | TraceEvent::AcceptanceTestStarted { time, .. }
            | TraceEvent::CheckpointStarted { time, .. }
            | TraceEvent::ErrorDetected { time }
            | TraceEvent::SystemFailed { time }
            | TraceEvent::GuardConcluded { time } => time,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [&str; 3] = ["P1new", "P1old", "P2"];
        let name = |p: usize| NAMES.get(p).copied().unwrap_or("?");
        match *self {
            TraceEvent::FaultManifested { time, process } => {
                write!(f, "[{time:12.4}] fault manifested in {}", name(process))
            }
            TraceEvent::AcceptanceTestStarted { time, process } => {
                write!(
                    f,
                    "[{time:12.4}] acceptance test on {} message",
                    name(process)
                )
            }
            TraceEvent::CheckpointStarted { time, process } => {
                write!(f, "[{time:12.4}] checkpoint of {}", name(process))
            }
            TraceEvent::ErrorDetected { time } => {
                write!(f, "[{time:12.4}] ERROR DETECTED — downgrading to P1old")
            }
            TraceEvent::SystemFailed { time } => {
                write!(f, "[{time:12.4}] SYSTEM FAILURE")
            }
            TraceEvent::GuardConcluded { time } => {
                write!(
                    f,
                    "[{time:12.4}] guarded operation concluded; upgrade committed"
                )
            }
        }
    }
}

/// A mission trace: the outcome plus the condensed event log.
///
/// Built by [`simulate_run_traced`]. Message sends themselves are not
/// logged (there are millions); only safeguard and dependability events
/// appear, which is also what a real onboard log would record.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionTrace {
    /// The run's outcome (identical to the untraced engine's).
    pub outcome: RunOutcome,
    /// Chronological protocol events.
    pub events: Vec<TraceEvent>,
}

impl MissionTrace {
    /// Events of a given kind-discriminating predicate.
    pub fn events_where<F: Fn(&TraceEvent) -> bool>(&self, pred: F) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| pred(e)).collect()
    }

    /// Renders the log like a downloaded onboard error log.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(out, "{e}");
        }
        out
    }
}

/// Runs the event-exact engine with instrumentation, collecting the full
/// protocol event log.
///
/// Note the log grows with `λ·φ` (one entry per AT/checkpoint); use
/// scaled-down parameters or short windows when tracing, exactly as a real
/// onboard log would be bounded.
pub fn simulate_run_traced(config: &SimConfig, seed: u64) -> MissionTrace {
    let mut rng = SimRng::from_seed(seed);
    let mut events = Vec::new();
    let outcome = crate::engine::simulate_run_with_log(config, &mut rng, &mut events);
    MissionTrace { outcome, events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use performability::GsuParams;

    fn small_params() -> GsuParams {
        GsuParams {
            theta: 50.0,
            lambda: 40.0,
            mu_new: 0.05,
            mu_old: 1e-7,
            coverage: 0.95,
            p_ext: 0.1,
            alpha: 200.0,
            beta: 200.0,
        }
    }

    #[test]
    fn trace_outcome_matches_untraced_run() {
        let cfg = SimConfig::new(small_params(), 30.0).unwrap();
        for seed in 0..50 {
            let traced = simulate_run_traced(&cfg, seed);
            let mut rng = SimRng::from_seed(seed);
            let plain = crate::simulate_run(&cfg, &mut rng);
            assert_eq!(traced.outcome, plain);
        }
    }

    #[test]
    fn safeguard_events_match_outcome_counters() {
        let cfg = SimConfig::new(small_params(), 30.0).unwrap();
        for seed in 0..20 {
            let t = simulate_run_traced(&cfg, seed);
            let ats = t
                .events_where(|e| matches!(e, TraceEvent::AcceptanceTestStarted { .. }))
                .len() as u64;
            let ckpts = t
                .events_where(|e| matches!(e, TraceEvent::CheckpointStarted { .. }))
                .len() as u64;
            assert_eq!(ats, t.outcome.at_count);
            assert_eq!(ckpts, t.outcome.checkpoint_count);
        }
    }

    #[test]
    fn detection_is_preceded_by_a_fault() {
        let cfg = SimConfig::new(small_params(), 45.0).unwrap();
        for seed in 0..60 {
            let t = simulate_run_traced(&cfg, seed);
            if let Some(det) = t.outcome.detection_time {
                let fault_before = t
                    .events
                    .iter()
                    .any(|e| matches!(e, TraceEvent::FaultManifested { time, .. } if *time <= det));
                assert!(fault_before, "detection without a prior fault: {t:?}");
            }
        }
    }

    #[test]
    fn terminal_event_matches_class() {
        let cfg = SimConfig::new(small_params(), 40.0).unwrap();
        for seed in 0..100 {
            let t = simulate_run_traced(&cfg, seed);
            match t.outcome.class {
                crate::PathClass::S1 => {
                    assert!(t
                        .events
                        .iter()
                        .any(|e| matches!(e, TraceEvent::GuardConcluded { .. })));
                }
                crate::PathClass::S2 => {
                    assert!(t
                        .events
                        .iter()
                        .any(|e| matches!(e, TraceEvent::ErrorDetected { .. })));
                    assert!(!t
                        .events
                        .iter()
                        .any(|e| matches!(e, TraceEvent::SystemFailed { .. })));
                }
                crate::PathClass::S3 => {
                    assert!(t
                        .events
                        .iter()
                        .any(|e| matches!(e, TraceEvent::SystemFailed { .. })));
                }
            }
        }
    }

    #[test]
    fn events_are_chronological() {
        let cfg = SimConfig::new(small_params(), 45.0).unwrap();
        for seed in 0..50 {
            let t = simulate_run_traced(&cfg, seed);
            for w in t.events.windows(2) {
                assert!(w[0].time() <= w[1].time());
            }
        }
    }

    #[test]
    fn render_produces_one_line_per_event() {
        let cfg = SimConfig::new(small_params(), 30.0).unwrap();
        let t = simulate_run_traced(&cfg, 3);
        let log = t.render();
        assert_eq!(log.lines().count(), t.events.len());
    }

    #[test]
    fn display_is_informative() {
        let cases = [
            TraceEvent::FaultManifested {
                time: 1.0,
                process: 0,
            },
            TraceEvent::AcceptanceTestStarted {
                time: 2.0,
                process: 2,
            },
            TraceEvent::CheckpointStarted {
                time: 3.0,
                process: 1,
            },
            TraceEvent::ErrorDetected { time: 4.0 },
            TraceEvent::SystemFailed { time: 5.0 },
            TraceEvent::GuardConcluded { time: 6.0 },
        ];
        let rendered: Vec<String> = cases.iter().map(|e| e.to_string()).collect();
        assert!(rendered[0].contains("P1new"));
        assert!(rendered[1].contains("P2"));
        assert!(rendered[2].contains("P1old"));
        assert!(rendered[3].contains("DETECTED"));
        assert!(rendered[4].contains("FAILURE"));
        assert!(rendered[5].contains("concluded"));
        assert_eq!(cases[3].time(), 4.0);
    }
}
