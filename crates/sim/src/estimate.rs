//! Monte-Carlo aggregation of simulation runs.

use performability::{GsuParams, PerfError};

use crate::fast::{calibrate, simulate_run_hybrid};
use crate::{simulate_run, PathClass, SimConfig, SimRng};

/// Which simulation engine a [`MonteCarlo`] experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Event-exact engine: every message, AT, and checkpoint is simulated.
    /// Cost grows with `λ·θ`; use for scaled-down validation scenarios.
    Exact,
    /// Two-level hybrid engine (see [`crate::fast`]): steady-state overhead
    /// is calibrated once, fault episodes are simulated at message
    /// granularity. Use for mission-scale parameters.
    #[default]
    Hybrid,
}

/// Replicated simulation of one scenario.
///
/// # Example
///
/// ```
/// use mdcd_sim::{MonteCarlo, SimConfig};
/// use performability::GsuParams;
///
/// let cfg = SimConfig::new(GsuParams::paper_baseline(), 5000.0).unwrap();
/// let summary = MonteCarlo::new(cfg).with_replications(100).with_seed(3).run();
/// assert_eq!(summary.replications, 100);
/// assert!(summary.mean_worth <= 2.0 * 10_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    config: SimConfig,
    replications: usize,
    seed: u64,
    engine: EngineKind,
    calibration_events: usize,
}

impl MonteCarlo {
    /// Creates an experiment with defaults (1000 replications, seed 0,
    /// hybrid engine).
    pub fn new(config: SimConfig) -> Self {
        MonteCarlo {
            config,
            replications: 1000,
            seed: 0,
            engine: EngineKind::default(),
            calibration_events: 40_000,
        }
    }

    /// Selects the simulation engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the number of replications.
    pub fn with_replications(mut self, replications: usize) -> Self {
        self.replications = replications.max(1);
        self
    }

    /// Sets the base seed (each replication derives an independent stream).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs all replications and aggregates.
    pub fn run(&self) -> SimSummary {
        let mut span = telemetry::span("sim.monte_carlo");
        span.record("phi", self.config.phi);
        span.record("replications", self.replications);
        span.record(
            "engine",
            match self.engine {
                EngineKind::Exact => "exact",
                EngineKind::Hybrid => "hybrid",
            },
        );
        if telemetry::enabled() {
            telemetry::counter("sim.replications", self.replications as u64);
        }
        let calibration = match self.engine {
            EngineKind::Hybrid => {
                let mut rng = SimRng::stream(self.seed, u64::MAX);
                Some(calibrate(
                    &self.config.params,
                    self.calibration_events,
                    &mut rng,
                ))
            }
            EngineKind::Exact => None,
        };
        let n = self.replications;
        let workers = pool::Pool::current();
        span.record("threads", workers.threads());

        // Fan replications across the pool in contiguous index chunks. Each
        // replication seeds its own decorrelated stream from its *global*
        // index, and the fold below consumes outcomes in ascending index
        // order, so the summary is bit-identical at any thread count (and to
        // the pre-pool serial loop).
        let chunk_len = n.div_ceil(workers.threads().max(1) * 8).max(1);
        let chunks: Vec<std::ops::Range<usize>> = (0..n)
            .step_by(chunk_len)
            .map(|start| start..(start + chunk_len).min(n))
            .collect();
        let run_chunk = |_: usize, range: std::ops::Range<usize>| -> Vec<crate::RunOutcome> {
            range
                .map(|i| {
                    let mut rng = SimRng::stream(self.seed, i as u64);
                    match &calibration {
                        Some(cal) => simulate_run_hybrid(&self.config, cal, &mut rng),
                        None => simulate_run(&self.config, &mut rng),
                    }
                })
                .collect()
        };
        let outcomes = workers.map_indexed(chunks, run_chunk);

        let mut worth_sum = 0.0;
        let mut worth_sq_sum = 0.0;
        let mut counts = [0usize; 3];
        let mut detection_sum = 0.0;
        let mut detections = 0usize;
        let mut progress1 = 0.0;
        let mut progress2 = 0.0;
        let mut guarded_time = 0.0;

        for out in outcomes.iter().flatten() {
            worth_sum += out.worth;
            worth_sq_sum += out.worth * out.worth;
            counts[match out.class {
                PathClass::S1 => 0,
                PathClass::S2 => 1,
                PathClass::S3 => 2,
            }] += 1;
            if let Some(tau) = out.detection_time {
                detection_sum += tau;
                detections += 1;
            }
            let seg = out
                .detection_time
                .unwrap_or(self.config.phi)
                .min(self.config.phi);
            if out.failure_time.is_none() || out.detection_time.is_some() {
                progress1 += out.progress_p1;
                progress2 += out.progress_p2;
                guarded_time += seg;
            }
        }

        let mean = worth_sum / n as f64;
        let var = (worth_sq_sum / n as f64 - mean * mean).max(0.0);
        let half_width = 1.96 * (var / n as f64).sqrt();

        SimSummary {
            replications: n,
            mean_worth: mean,
            worth_half_width_95: half_width,
            p_s1: counts[0] as f64 / n as f64,
            p_s2: counts[1] as f64 / n as f64,
            p_s3: counts[2] as f64 / n as f64,
            mean_detection_time: if detections > 0 {
                Some(detection_sum / detections as f64)
            } else {
                None
            },
            mean_rho: if guarded_time > 0.0 {
                Some((progress1 / guarded_time, progress2 / guarded_time))
            } else {
                None
            },
        }
    }
}

/// Aggregated results of a Monte-Carlo experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSummary {
    /// Number of replications run.
    pub replications: usize,
    /// Sample mean of the accrued worth `W_φ`.
    pub mean_worth: f64,
    /// 95% confidence half-width of the worth mean (normal approximation).
    pub worth_half_width_95: f64,
    /// Fraction of `S1` paths (upgrade succeeded).
    pub p_s1: f64,
    /// Fraction of `S2` paths (detected and safely downgraded).
    pub p_s2: f64,
    /// Fraction of worthless paths.
    pub p_s3: f64,
    /// Mean detection time among detecting paths.
    pub mean_detection_time: Option<f64>,
    /// Measured forward-progress fractions `(ρ1, ρ2)` over the guarded
    /// segment (surviving paths only).
    pub mean_rho: Option<(f64, f64)>,
}

impl std::fmt::Display for SimSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "E[W] = {:.1} ± {:.1} over {} reps; S1/S2/S3 = {:.3}/{:.3}/{:.3}",
            self.mean_worth,
            self.worth_half_width_95,
            self.replications,
            self.p_s1,
            self.p_s2,
            self.p_s3
        )
    }
}

/// A simulation-based estimate of the performability index.
#[derive(Debug, Clone, PartialEq)]
pub struct YEstimate {
    /// Point estimate of `Y(φ)`.
    pub y: f64,
    /// Approximate 95% half-width (delta method on the worth means).
    pub half_width_95: f64,
    /// Summary of the guarded scenario.
    pub guarded: SimSummary,
    /// Summary of the unguarded (φ = 0) scenario.
    pub unguarded: SimSummary,
}

/// Estimates `Y(φ)` by simulating both the guarded and the unguarded
/// scenario (Eq. 1 evaluated on sample means).
///
/// # Errors
///
/// Propagates configuration validation failures.
pub fn estimate_y(
    params: GsuParams,
    phi: f64,
    replications: usize,
    seed: u64,
) -> Result<YEstimate, PerfError> {
    let guarded = MonteCarlo::new(SimConfig::new(params, phi)?)
        .with_replications(replications)
        .with_seed(seed)
        .run();
    let unguarded = MonteCarlo::new(SimConfig::new(params, 0.0)?)
        .with_replications(replications)
        .with_seed(seed.wrapping_add(0x5EED))
        .run();

    let ideal = 2.0 * params.theta;
    let denom = ideal - guarded.mean_worth;
    let numer = ideal - unguarded.mean_worth;
    let y = if denom > 0.0 { numer / denom } else { f64::NAN };

    // Delta method: Var(N/D) ≈ (N/D)²·(Var(N)/N² + Var(D)/D²) with the
    // worth half-widths standing in for the deviations.
    let half_width = if denom > 0.0 && numer > 0.0 {
        y * ((unguarded.worth_half_width_95 / numer).powi(2)
            + (guarded.worth_half_width_95 / denom).powi(2))
        .sqrt()
    } else {
        f64::NAN
    };

    Ok(YEstimate {
        y,
        half_width_95: half_width,
        guarded,
        unguarded,
    })
}

/// Estimates `Y(φ)` like [`estimate_y`], but with the guarded run's `S2`
/// discount pinned to a caller-supplied γ (normally the analytic point's
/// value) and an explicit engine choice. Matching γ removes the one
/// modelling difference between the simulator's per-path discount and the
/// analytic `γ = 1 − τ̄/θ`, so analytic-vs-simulation comparisons test the
/// translation itself — the cross-validation harness of the scenario
/// catalog runs on this.
///
/// # Errors
///
/// Propagates configuration validation failures.
pub fn estimate_y_matched(
    params: GsuParams,
    phi: f64,
    gamma: f64,
    replications: usize,
    seed: u64,
    engine: EngineKind,
) -> Result<YEstimate, PerfError> {
    let guarded_cfg = SimConfig::new(params, phi)?.with_gamma(crate::GammaMode::Constant(gamma));
    let guarded = MonteCarlo::new(guarded_cfg)
        .with_engine(engine)
        .with_replications(replications)
        .with_seed(seed)
        .run();
    let unguarded = MonteCarlo::new(SimConfig::new(params, 0.0)?)
        .with_engine(engine)
        .with_replications(replications)
        .with_seed(seed.wrapping_add(0x5EED))
        .run();

    let ideal = 2.0 * params.theta;
    let denom = ideal - guarded.mean_worth;
    let numer = ideal - unguarded.mean_worth;
    let y = if denom > 0.0 { numer / denom } else { f64::NAN };
    let half_width = if denom > 0.0 && numer > 0.0 {
        y * ((unguarded.worth_half_width_95 / numer).powi(2)
            + (guarded.worth_half_width_95 / denom).powi(2))
        .sqrt()
    } else {
        f64::NAN
    };

    Ok(YEstimate {
        y,
        half_width_95: half_width,
        guarded,
        unguarded,
    })
}

/// Estimates `Y(φ)` over a whole φ grid — the simulation counterpart of
/// `GsuAnalysis::sweep_grid`, reusing one unguarded baseline run for every
/// grid point.
///
/// # Errors
///
/// Propagates configuration validation failures.
pub fn estimate_y_curve(
    params: GsuParams,
    phis: &[f64],
    replications: usize,
    seed: u64,
) -> Result<Vec<(f64, YEstimate)>, PerfError> {
    let unguarded = MonteCarlo::new(SimConfig::new(params, 0.0)?)
        .with_replications(replications)
        .with_seed(seed.wrapping_add(0x5EED))
        .run();
    let ideal = 2.0 * params.theta;
    let numer = ideal - unguarded.mean_worth;

    phis.iter()
        .map(|&phi| {
            let guarded = MonteCarlo::new(SimConfig::new(params, phi)?)
                .with_replications(replications)
                .with_seed(seed.wrapping_add(phi.to_bits()))
                .run();
            let denom = ideal - guarded.mean_worth;
            let y = if denom > 0.0 { numer / denom } else { f64::NAN };
            let half_width = if denom > 0.0 && numer > 0.0 {
                y * ((unguarded.worth_half_width_95 / numer).powi(2)
                    + (guarded.worth_half_width_95 / denom).powi(2))
                .sqrt()
            } else {
                f64::NAN
            };
            Ok((
                phi,
                YEstimate {
                    y,
                    half_width_95: half_width,
                    guarded,
                    unguarded: unguarded.clone(),
                },
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> GsuParams {
        GsuParams::paper_baseline()
    }

    #[test]
    fn summary_probabilities_partition() {
        let cfg = SimConfig::new(baseline(), 7000.0).unwrap();
        let s = MonteCarlo::new(cfg)
            .with_replications(300)
            .with_seed(1)
            .run();
        assert!((s.p_s1 + s.p_s2 + s.p_s3 - 1.0).abs() < 1e-12);
        assert!(s.mean_worth > 0.0);
        assert!(s.worth_half_width_95 > 0.0);
    }

    #[test]
    fn reproducible_with_same_seed() {
        let cfg = SimConfig::new(baseline(), 5000.0).unwrap();
        let a = MonteCarlo::new(cfg)
            .with_replications(50)
            .with_seed(9)
            .run();
        let b = MonteCarlo::new(cfg)
            .with_replications(50)
            .with_seed(9)
            .run();
        assert_eq!(a, b);
    }

    #[test]
    fn s1_fraction_tracks_survival_probability() {
        // P(S1) ≈ exp(−µnew·θ) ≈ 0.368 at the baseline.
        let cfg = SimConfig::new(baseline(), 6000.0).unwrap();
        let s = MonteCarlo::new(cfg)
            .with_replications(2000)
            .with_seed(4)
            .run();
        assert!((s.p_s1 - 0.368).abs() < 0.04, "p_s1 = {}", s.p_s1);
    }

    #[test]
    fn measured_rho_matches_analytic_steady_state() {
        let cfg = SimConfig::new(baseline(), 8000.0).unwrap();
        let s = MonteCarlo::new(cfg)
            .with_replications(300)
            .with_seed(2)
            .run();
        let (rho1, rho2) = s.mean_rho.expect("guarded paths exist");
        // Paper: ρ1 ≈ 0.98, ρ2 ≈ 0.95 at α=β=6000.
        assert!((rho1 - 0.98).abs() < 0.01, "rho1 = {rho1}");
        assert!((rho2 - 0.96).abs() < 0.02, "rho2 = {rho2}");
    }

    #[test]
    fn exact_engine_runs_scaled_scenarios() {
        let params = GsuParams {
            theta: 50.0,
            lambda: 40.0,
            mu_new: 0.02,
            mu_old: 1e-7,
            coverage: 0.95,
            p_ext: 0.1,
            alpha: 200.0,
            beta: 200.0,
        };
        let cfg = SimConfig::new(params, 30.0).unwrap();
        let s = MonteCarlo::new(cfg)
            .with_engine(EngineKind::Exact)
            .with_replications(100)
            .with_seed(8)
            .run();
        assert!((s.p_s1 + s.p_s2 + s.p_s3 - 1.0).abs() < 1e-12);
        assert!(s.mean_worth > 0.0);
    }

    #[test]
    fn y_estimate_shows_guarded_benefit() {
        let est = estimate_y(baseline(), 7000.0, 1500, 11).unwrap();
        assert!(
            est.y > 1.0,
            "guarded operation should pay off: Y = {} ± {}",
            est.y,
            est.half_width_95
        );
        assert!(est.half_width_95 < 0.5);
    }

    #[test]
    fn y_curve_shares_the_baseline_and_rises_then_falls() {
        let curve = estimate_y_curve(baseline(), &[2000.0, 6000.0, 10_000.0], 1500, 3).unwrap();
        assert_eq!(curve.len(), 3);
        // All points share the identical unguarded baseline.
        assert_eq!(curve[0].1.unguarded, curve[1].1.unguarded);
        // The middle of the grid should beat the short guard (Fig. 9 shape).
        assert!(curve[1].1.y > curve[0].1.y);
        for (phi, est) in &curve {
            assert!(est.y.is_finite(), "φ={phi}");
        }
    }

    #[test]
    fn summary_display_is_informative() {
        let cfg = SimConfig::new(baseline(), 4000.0).unwrap();
        let s = MonteCarlo::new(cfg)
            .with_replications(50)
            .with_seed(1)
            .run();
        let line = s.to_string();
        assert!(line.contains("S1/S2/S3"));
        assert!(line.contains("50 reps"));
    }

    #[test]
    fn matched_gamma_estimate_is_reproducible() {
        let a = estimate_y_matched(baseline(), 7000.0, 0.8, 400, 11, EngineKind::Hybrid).unwrap();
        let b = estimate_y_matched(baseline(), 7000.0, 0.8, 400, 11, EngineKind::Hybrid).unwrap();
        assert_eq!(a, b);
        assert!(a.y.is_finite());
        assert!(a.y > 1.0, "Y = {}", a.y);
    }

    #[test]
    fn unguarded_scenario_has_no_detection() {
        let est = estimate_y(baseline(), 4000.0, 200, 5).unwrap();
        assert_eq!(est.unguarded.p_s2, 0.0);
        assert!(est.unguarded.mean_detection_time.is_none());
    }
}
