//! Property tests for [`transient::distribution_batch`]: the shared-prefix
//! batched entry point must agree with repeated single-`t` solves to well
//! below the accuracy the performability measures need.

use markov::transient::{self, Method, Options};
use markov::Ctmc;
use proptest::prelude::*;

/// A random dense-ish CTMC over `n` states with rates in (0, scale].
fn arb_ctmc(n: usize, scale: f64) -> impl Strategy<Value = Ctmc> {
    proptest::collection::vec(0.0..1.0f64, n * n).prop_map(move |raw| {
        let mut transitions = Vec::new();
        for (k, v) in raw.iter().enumerate() {
            let (i, j) = (k / n, k % n);
            if i != j && *v > 0.3 {
                transitions.push((i, j, *v * scale));
            }
        }
        // Guarantee irreducibility with a base cycle.
        for i in 0..n {
            transitions.push((i, (i + 1) % n, 0.05 * scale));
        }
        Ctmc::from_transitions(n, transitions).expect("valid random chain")
    })
}

/// A random ascending time grid, possibly starting at 0 and possibly with
/// repeated points.
fn arb_grid(max_len: usize, horizon: f64) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..horizon, 1..max_len).prop_map(|mut times| {
        times.sort_by(|a, b| a.total_cmp(b));
        times
    })
}

fn assert_batch_matches_single(
    chain: &Ctmc,
    times: &[f64],
    opts: &Options,
) -> std::result::Result<(), proptest::test_runner::TestCaseError> {
    let pi0 = chain.point_distribution(0);
    let batch = transient::distribution_batch(chain, &pi0, times, opts).unwrap();
    prop_assert_eq!(batch.len(), times.len());
    for (&t, pi) in times.iter().zip(&batch) {
        let solo = transient::distribution(chain, &pi0, t, opts).unwrap();
        let diff = sparsela::vector::diff_norm_inf(pi, &solo);
        prop_assert!(diff < 1e-12, "t={t}: batch vs single diff {diff:.3e}");
        prop_assert!(sparsela::vector::is_stochastic(pi, 1e-9));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_matches_single_auto(
        chain in arb_ctmc(5, 3.0),
        times in arb_grid(7, 8.0),
    ) {
        assert_batch_matches_single(&chain, &times, &Options::default())?;
    }

    #[test]
    fn batch_matches_single_forced_uniformization(
        chain in arb_ctmc(4, 2.0),
        times in arb_grid(6, 12.0),
    ) {
        let opts = Options {
            method: Method::Uniformization,
            ..Default::default()
        };
        assert_batch_matches_single(&chain, &times, &opts)?;
    }

    #[test]
    fn batch_matches_single_forced_expm(
        chain in arb_ctmc(4, 2.0),
        times in arb_grid(6, 10.0),
    ) {
        // Single-t expm solves from zero vs. batched incremental propagation
        // with cached propagators: agreement is limited by the conditioning
        // of e^{Qt}, comfortably within 1e-12 for these small chains.
        let opts = Options {
            method: Method::MatrixExponential,
            ..Default::default()
        };
        assert_batch_matches_single(&chain, &times, &opts)?;
    }

    #[test]
    fn batch_without_steady_state_detection(
        chain in arb_ctmc(5, 3.0),
        times in arb_grid(5, 30.0),
    ) {
        let opts = Options {
            steady_state_detection: false,
            max_uniformization_steps: 50_000_000,
            ..Default::default()
        };
        assert_batch_matches_single(&chain, &times, &opts)?;
    }
}

#[test]
fn batch_matches_at_times_bitwise_on_expm_path() {
    // Equal gaps on the matrix-exponential path must reuse one propagator
    // and reproduce `distribution_at_times` *bitwise*: this is the guarantee
    // `GsuAnalysis::sweep_incremental` relies on.
    let chain = Ctmc::from_transitions(3, [(0, 1, 4000.0), (1, 2, 1500.0), (2, 0, 900.0)]).unwrap();
    let pi0 = chain.point_distribution(0);
    let times: Vec<f64> = (1..=8).map(|k| k as f64 * 1250.0).collect();
    let opts = Options::default();
    let incremental = transient::distribution_at_times(&chain, &pi0, &times, &opts).unwrap();
    let batched = transient::distribution_batch(&chain, &pi0, &times, &opts).unwrap();
    for (a, b) in incremental.iter().zip(&batched) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn batch_edge_cases() {
    let chain = Ctmc::from_transitions(2, [(0, 1, 2.0), (1, 0, 3.0)]).unwrap();
    let pi0 = [0.25, 0.75];
    let opts = Options::default();
    assert!(transient::distribution_batch(&chain, &pi0, &[], &opts)
        .unwrap()
        .is_empty());
    let zeros = transient::distribution_batch(&chain, &pi0, &[0.0, 0.0], &opts).unwrap();
    assert_eq!(zeros, vec![pi0.to_vec(), pi0.to_vec()]);
    let mixed = transient::distribution_batch(&chain, &pi0, &[0.0, 1.0, 1.0], &opts).unwrap();
    assert_eq!(mixed[0], pi0.to_vec());
    assert_eq!(mixed[1], mixed[2]);
    assert!(transient::distribution_batch(&chain, &pi0, &[2.0, 1.0], &opts).is_err());

    // All-absorbing chain: distribution never moves.
    let frozen = Ctmc::from_transitions(2, std::iter::empty()).unwrap();
    let out = transient::distribution_batch(&frozen, &pi0, &[1.0, 5.0], &opts).unwrap();
    assert_eq!(out, vec![pi0.to_vec(), pi0.to_vec()]);
}
