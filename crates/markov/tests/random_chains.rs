//! Property tests on randomly generated chains: the different solution
//! engines must agree with each other and with structural invariants.

use markov::steady::{steady_state, SteadyMethod};
use markov::transient::{self, Method, Options};
use markov::Ctmc;
use proptest::prelude::*;

/// A random dense-ish CTMC over `n` states with rates in (0, scale].
fn arb_ctmc(n: usize, scale: f64) -> impl Strategy<Value = Ctmc> {
    proptest::collection::vec(0.0..1.0f64, n * n).prop_map(move |raw| {
        let mut transitions = Vec::new();
        for (k, v) in raw.iter().enumerate() {
            let (i, j) = (k / n, k % n);
            if i != j && *v > 0.3 {
                transitions.push((i, j, *v * scale));
            }
        }
        // Guarantee irreducibility with a base cycle.
        for i in 0..n {
            transitions.push((i, (i + 1) % n, 0.05 * scale));
        }
        Ctmc::from_transitions(n, transitions).expect("valid random chain")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn transient_engines_agree(chain in arb_ctmc(5, 3.0), t in 0.01..20.0f64) {
        let pi0 = chain.point_distribution(0);
        let uni = Options {
            method: Method::Uniformization,
            max_uniformization_steps: 50_000_000,
            steady_state_detection: false,
            ..Default::default()
        };
        let exp = Options {
            method: Method::MatrixExponential,
            ..Default::default()
        };

        let a = transient::distribution(&chain, &pi0, t, &uni).unwrap();
        let b = transient::distribution(&chain, &pi0, t, &exp).unwrap();
        prop_assert!(sparsela::vector::diff_norm_inf(&a, &b) < 1e-8,
            "uniformization vs expm at t={t}");
        prop_assert!(sparsela::vector::is_stochastic(&a, 1e-9));
        prop_assert!(sparsela::vector::is_stochastic(&b, 1e-7));
    }

    #[test]
    fn occupancy_engines_agree_and_sum_to_t(
        chain in arb_ctmc(4, 2.0),
        t in 0.1..10.0f64,
    ) {
        let pi0 = chain.point_distribution(0);
        let uni = Options {
            method: Method::Uniformization,
            max_uniformization_steps: 50_000_000,
            steady_state_detection: false,
            ..Default::default()
        };
        let exp = Options {
            method: Method::MatrixExponential,
            ..Default::default()
        };

        let a = transient::occupancy(&chain, &pi0, t, &uni).unwrap();
        let b = transient::occupancy(&chain, &pi0, t, &exp).unwrap();
        prop_assert!(sparsela::vector::diff_norm_inf(&a, &b) < 1e-7);
        prop_assert!((a.iter().sum::<f64>() - t).abs() < 1e-7);
    }

    #[test]
    fn steady_methods_agree(chain in arb_ctmc(6, 1.0)) {
        let direct = steady_state(&chain, &SteadyMethod::Direct).unwrap();
        let power = steady_state(&chain, &SteadyMethod::Power {
            max_iterations: 2_000_000,
            tolerance: 1e-13,
        }).unwrap();
        prop_assert!(sparsela::vector::diff_norm_inf(&direct, &power) < 1e-7);
        // Stationarity: π·Q ≈ 0.
        prop_assert!(markov::steady::stationarity_residual(&chain, &direct) < 1e-10);
    }

    #[test]
    fn long_transient_approaches_steady_state(chain in arb_ctmc(5, 2.0)) {
        let pi0 = chain.point_distribution(0);
        let pi_t = transient::distribution(&chain, &pi0, 1e4, &Options::default()).unwrap();
        let pi_inf = steady_state(&chain, &SteadyMethod::Direct).unwrap();
        prop_assert!(sparsela::vector::diff_norm_inf(&pi_t, &pi_inf) < 1e-6);
    }

    #[test]
    fn hitting_time_mean_consistent_with_cdf(
        chain in arb_ctmc(4, 1.5),
        target in 1usize..4,
    ) {
        // E[T∧H] for growing H converges to E[T] (non-defective here since
        // the chain is irreducible).
        let pi0 = chain.point_distribution(0);
        let moments = markov::first_passage::hitting_moments(&chain, &[target]).unwrap();
        let mean = moments.mean_from(&pi0, chain.n_states()).unwrap();
        let horizon = mean * 50.0 + 10.0;
        let truncated = markov::first_passage::truncated_mean_hitting_time(
            &chain, &pi0, &[target], horizon, &Options::default(),
        ).unwrap();
        prop_assert!((truncated - mean).abs() < 0.02 * mean.max(0.1),
            "truncated {truncated} vs mean {mean}");
    }
}
