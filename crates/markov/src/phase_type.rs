//! Continuous phase-type (PH) distributions.
//!
//! A phase-type distribution is the law of the time to absorption of a CTMC
//! with one absorbing state — exactly the objects the guarded-operation
//! study manipulates implicitly: the detection-time density `h(τ)` and the
//! post-recovery failure density `f(x)` are both (defective) phase-type
//! laws of the `RMGd`/`RMNd` chains. This module makes them first-class:
//! construct from a chain and a target set, then evaluate CDF/density,
//! moments, and quantiles.

use sparsela::DenseMatrix;

use crate::{expm, transient, Ctmc, MarkovError, Result};

/// A (possibly defective) continuous phase-type distribution `PH(π, S)`.
///
/// `S` is the sub-generator over transient phases and `π` the initial phase
/// distribution; absorption may be incomplete (defective) when some phases
/// cannot reach the target — the missing mass is reported by
/// [`PhaseType::total_mass`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseType {
    /// Sub-generator over the transient phases (dense; PH models are small).
    s: DenseMatrix,
    /// Exit-rate vector into absorption, `s⁰ = −S·1` restricted to target
    /// flows.
    exit: Vec<f64>,
    /// Initial distribution over phases (may sum to < 1 when some initial
    /// mass starts absorbed).
    alpha: Vec<f64>,
    /// Initial mass already absorbed.
    point_mass_at_zero: f64,
}

impl PhaseType {
    /// Builds the phase-type law of the first-passage time of `ctmc` into
    /// `targets`, starting from `pi0`.
    ///
    /// Unlike classical PH construction, flows between non-target states
    /// are kept and flows into the target become the exit vector; flows out
    /// of target states are ignored (the clock stops at absorption).
    ///
    /// # Errors
    ///
    /// * [`MarkovError::InvalidDistribution`] when `pi0` is invalid.
    /// * [`MarkovError::AbsorptionStructure`] when `targets` is empty or out
    ///   of range.
    pub fn first_passage(ctmc: &Ctmc, pi0: &[f64], targets: &[usize]) -> Result<Self> {
        ctmc.check_distribution(pi0)?;
        let n = ctmc.n_states();
        if targets.is_empty() {
            return Err(MarkovError::AbsorptionStructure {
                context: "empty target set".to_string(),
            });
        }
        let mut is_target = vec![false; n];
        for &t in targets {
            if t >= n {
                return Err(MarkovError::AbsorptionStructure {
                    context: format!("target state {t} outside state space 0..{n}"),
                });
            }
            is_target[t] = true;
        }
        let phases: Vec<usize> = (0..n).filter(|&s| !is_target[s]).collect();
        let index: std::collections::HashMap<usize, usize> =
            phases.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let m = phases.len();
        let mut s_mat = DenseMatrix::zeros(m, m);
        let mut exit = vec![0.0; m];
        for (r, c, v) in ctmc.generator().iter() {
            if let Some(&i) = index.get(&r) {
                if let Some(&j) = index.get(&c) {
                    s_mat[(i, j)] = v;
                } else if r != c {
                    exit[i] += v;
                }
            }
        }
        let alpha: Vec<f64> = phases.iter().map(|&s| pi0[s]).collect();
        let point_mass_at_zero = 1.0 - alpha.iter().sum::<f64>();
        Ok(PhaseType {
            s: s_mat,
            exit,
            alpha,
            point_mass_at_zero: point_mass_at_zero.max(0.0),
        })
    }

    /// Builds a PH law directly from its representation `(π, S)`.
    ///
    /// The exit vector is derived as `s⁰ = −S·1`; any initial mass missing
    /// from `π` becomes a point mass at zero.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::InvalidModel`] when `S` is not square, has a
    ///   positive diagonal / negative off-diagonal entry, a positive row
    ///   sum, or when `π` has the wrong length, a negative entry, or mass
    ///   above one.
    pub fn from_representation(alpha: Vec<f64>, s: DenseMatrix) -> Result<Self> {
        let m = alpha.len();
        if s.rows() != m || s.cols() != m {
            return Err(MarkovError::InvalidModel {
                context: format!(
                    "sub-generator is {}x{} but the initial vector has {m} phases",
                    s.rows(),
                    s.cols()
                ),
            });
        }
        let mut exit = vec![0.0; m];
        for i in 0..m {
            let mut row_sum = 0.0;
            for j in 0..m {
                let v = s[(i, j)];
                if !v.is_finite() || (i == j && v > 0.0) || (i != j && v < 0.0) {
                    return Err(MarkovError::InvalidModel {
                        context: format!("sub-generator entry S[{i},{j}] = {v} is invalid"),
                    });
                }
                row_sum += v;
            }
            if row_sum > 1e-9 {
                return Err(MarkovError::InvalidModel {
                    context: format!("sub-generator row {i} sums to {row_sum} > 0"),
                });
            }
            exit[i] = (-row_sum).max(0.0);
        }
        let mass: f64 = alpha.iter().sum();
        if alpha.iter().any(|&a| !a.is_finite() || a < 0.0) || mass > 1.0 + 1e-9 {
            return Err(MarkovError::InvalidDistribution {
                context: format!("initial phase vector {alpha:?} is not sub-stochastic"),
            });
        }
        Ok(PhaseType {
            s,
            exit,
            alpha,
            point_mass_at_zero: (1.0 - mass).max(0.0),
        })
    }

    /// The exponential law of rate `nu` as a one-phase PH distribution.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidModel`] unless `nu` is finite and
    /// positive.
    pub fn exponential(nu: f64) -> Result<Self> {
        Self::erlang(1, nu)
    }

    /// The Erlang(`k`, `rate`) law — `k` exponential stages of rate `rate`
    /// in series. `k = 1` degenerates to the exponential law.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidModel`] when `k == 0` or `rate` is not
    /// finite and positive.
    pub fn erlang(k: usize, rate: f64) -> Result<Self> {
        if k == 0 || !rate.is_finite() || rate <= 0.0 {
            return Err(MarkovError::InvalidModel {
                context: format!(
                    "Erlang needs k >= 1 stages and a positive rate, got ({k}, {rate})"
                ),
            });
        }
        let mut s = DenseMatrix::zeros(k, k);
        for i in 0..k {
            s[(i, i)] = -rate;
            if i + 1 < k {
                s[(i, i + 1)] = rate;
            }
        }
        let mut alpha = vec![0.0; k];
        alpha[0] = 1.0;
        Self::from_representation(alpha, s)
    }

    /// The hyperexponential law of `branches = [(weight, rate), ...]`: an
    /// initial probabilistic choice among parallel exponential branches.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidModel`] when no branch is given, a
    /// weight or rate is out of domain, or the weights do not sum to one
    /// (tolerance `1e-6`).
    pub fn hyperexponential(branches: &[(f64, f64)]) -> Result<Self> {
        if branches.is_empty() {
            return Err(MarkovError::InvalidModel {
                context: "hyperexponential needs at least one branch".to_string(),
            });
        }
        let mut total = 0.0;
        for &(w, r) in branches {
            if !w.is_finite() || w < 0.0 || !r.is_finite() || r <= 0.0 {
                return Err(MarkovError::InvalidModel {
                    context: format!("hyperexponential branch ({w}, {r}) is out of domain"),
                });
            }
            total += w;
        }
        if (total - 1.0).abs() > 1e-6 {
            return Err(MarkovError::InvalidModel {
                context: format!("hyperexponential branch weights sum to {total}, expected 1"),
            });
        }
        let m = branches.len();
        let mut s = DenseMatrix::zeros(m, m);
        let mut alpha = vec![0.0; m];
        for (i, &(w, r)) in branches.iter().enumerate() {
            s[(i, i)] = -r;
            alpha[i] = w;
        }
        // Normalize away the 1e-6 tolerance so the law is exactly proper.
        let scale: f64 = alpha.iter().sum();
        for a in &mut alpha {
            *a /= scale;
        }
        Self::from_representation(alpha, s)
    }

    /// An Erlang approximation of the deterministic duration `mean`, using
    /// `stages` phases of rate `stages / mean`.
    ///
    /// The approximation preserves the mean exactly; its standard deviation
    /// is `mean / sqrt(stages)`, so the error shrinks as `stages` grows
    /// (Chebyshev: `P[|T − mean| > ε] ≤ mean² / (stages·ε²)`).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidModel`] when `stages == 0` or `mean`
    /// is not finite and positive.
    pub fn deterministic_approx(mean: f64, stages: usize) -> Result<Self> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(MarkovError::InvalidModel {
                context: format!("deterministic approximation needs a positive mean, got {mean}"),
            });
        }
        Self::erlang(stages, stages as f64 / mean)
    }

    /// Number of transient phases.
    pub fn n_phases(&self) -> usize {
        self.alpha.len()
    }

    /// The initial phase distribution `π` (may sum to < 1 for laws with a
    /// point mass at zero).
    pub fn initial(&self) -> &[f64] {
        &self.alpha
    }

    /// The sub-generator `S` over the transient phases.
    pub fn sub_generator(&self) -> &DenseMatrix {
        &self.s
    }

    /// The exit-rate vector `s⁰` into absorption.
    pub fn exit_rates(&self) -> &[f64] {
        &self.exit
    }

    /// `P[T ≤ t]` (includes any point mass at zero).
    ///
    /// # Errors
    ///
    /// Propagates matrix-exponential failures; `t` must be non-negative and
    /// finite.
    pub fn cdf(&self, t: f64) -> Result<f64> {
        if !t.is_finite() || t < 0.0 {
            return Err(MarkovError::InvalidModel {
                context: format!("cdf time must be finite and >= 0, got {t}"),
            });
        }
        if self.n_phases() == 0 {
            return Ok(self.point_mass_at_zero);
        }
        let mut st = self.s.clone();
        st.scale(t);
        let e = expm::expm(&st)?;
        // P[T > t] = α·exp(S·t)·1 (survivors still in a phase).
        let surviving: f64 = e.vec_mul(&self.alpha).iter().sum();
        Ok((1.0 - surviving).clamp(0.0, 1.0))
    }

    /// The defect-corrected density `f(t) = α·exp(S·t)·s⁰` (zero at any
    /// point where mass cannot exit).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`PhaseType::cdf`].
    pub fn density(&self, t: f64) -> Result<f64> {
        if !t.is_finite() || t < 0.0 {
            return Err(MarkovError::InvalidModel {
                context: format!("density time must be finite and >= 0, got {t}"),
            });
        }
        if self.n_phases() == 0 {
            return Ok(0.0);
        }
        let mut st = self.s.clone();
        st.scale(t);
        let e = expm::expm(&st)?;
        let at = e.vec_mul(&self.alpha);
        Ok(sparsela::vector::dot(&at, &self.exit).max(0.0))
    }

    /// Total absorbed mass `P[T < ∞]`; `1.0` for a non-defective law.
    ///
    /// # Errors
    ///
    /// Propagates linear-solver failures (cannot happen when every phase
    /// eventually exits).
    pub fn total_mass(&self) -> Result<f64> {
        if self.n_phases() == 0 {
            return Ok(self.point_mass_at_zero);
        }
        // P[absorb | phase] solves (−S)·p = s⁰ — but only over phases that
        // can reach the exit at all; for a defective law (−S) is singular
        // on the unreachable part, where p = 0 by definition.
        let m = self.n_phases();
        let mut reaches = vec![false; m];
        for (i, &e) in self.exit.iter().enumerate() {
            reaches[i] = e > 0.0;
        }
        // Fixed-point backward reachability over the dense S graph.
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..m {
                if reaches[i] {
                    continue;
                }
                for j in 0..m {
                    if i != j && self.s[(i, j)] > 0.0 && reaches[j] {
                        reaches[i] = true;
                        changed = true;
                        break;
                    }
                }
            }
        }
        let live: Vec<usize> = (0..m).filter(|&i| reaches[i]).collect();
        if live.is_empty() {
            return Ok(self.point_mass_at_zero);
        }
        let mut neg_s = DenseMatrix::zeros(live.len(), live.len());
        for (k, &i) in live.iter().enumerate() {
            for (l, &j) in live.iter().enumerate() {
                neg_s[(k, l)] = -self.s[(i, j)];
            }
        }
        let rhs: Vec<f64> = live.iter().map(|&i| self.exit[i]).collect();
        let lu = neg_s.lu().map_err(MarkovError::from)?;
        let p = lu.solve(&rhs).map_err(MarkovError::from)?;
        let absorbed: f64 = live
            .iter()
            .enumerate()
            .map(|(k, &i)| self.alpha[i] * p[k])
            .sum();
        Ok(self.point_mass_at_zero + absorbed)
    }

    /// The `k`-th raw moment `E[Tᵏ]` for a **non-defective** law:
    /// `k!·α·(−S)⁻ᵏ·1`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::AbsorptionStructure`] when the law is
    /// defective (the moment would be infinite), and propagates solver
    /// failures.
    pub fn moment(&self, k: u32) -> Result<f64> {
        if k == 0 {
            return Ok(1.0);
        }
        let mass = self.total_mass()?;
        if mass < 1.0 - 1e-9 {
            return Err(MarkovError::AbsorptionStructure {
                context: format!("defective phase-type law (mass {mass}); moments are infinite"),
            });
        }
        if self.n_phases() == 0 {
            return Ok(0.0);
        }
        let mut neg_s = self.s.clone();
        neg_s.scale(-1.0);
        let lu = neg_s.lu().map_err(MarkovError::from)?;
        // v₀ = 1; v_i = (−S)⁻¹ v_{i−1}; E[Tᵏ] = k!·α·v_k.
        let mut v = vec![1.0; self.n_phases()];
        let mut factorial = 1.0;
        for i in 1..=k {
            v = lu.solve(&v).map_err(MarkovError::from)?;
            factorial *= i as f64;
        }
        Ok(factorial * sparsela::vector::dot(&self.alpha, &v))
    }

    /// Quantile by bisection on the CDF.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidModel`] when `p` is outside `(0, 1)`
    /// or exceeds the law's total mass, and propagates CDF failures.
    pub fn quantile(&self, p: f64, tolerance: f64) -> Result<f64> {
        if !(0.0..1.0).contains(&p) || p <= 0.0 {
            return Err(MarkovError::InvalidModel {
                context: format!("quantile level must be in (0, 1), got {p}"),
            });
        }
        if p <= self.point_mass_at_zero {
            return Ok(0.0);
        }
        if p >= self.total_mass()? {
            return Err(MarkovError::InvalidModel {
                context: format!("quantile level {p} exceeds the law's total mass"),
            });
        }
        // Bracket: expand until CDF exceeds p.
        let mut hi = 1.0;
        while self.cdf(hi)? < p {
            hi *= 2.0;
            if hi > 1e15 {
                return Err(MarkovError::InvalidModel {
                    context: "quantile bracket expansion failed".to_string(),
                });
            }
        }
        let mut lo = 0.0;
        while hi - lo > tolerance.max(1e-12) * hi.max(1.0) {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid)? < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// Samples the distribution CDF on a uniform grid (utility for plotting
    /// and for quadrature in tests).
    ///
    /// # Errors
    ///
    /// Propagates CDF failures.
    pub fn cdf_grid(&self, t_max: f64, points: usize) -> Result<Vec<(f64, f64)>> {
        let points = points.max(2);
        (0..points)
            .map(|i| {
                let t = t_max * i as f64 / (points - 1) as f64;
                Ok((t, self.cdf(t)?))
            })
            .collect()
    }
}

/// Convenience: the phase-type law of hitting `targets` compared against
/// the transient solver (used by tests; exposed for cross-validation).
pub fn cdf_via_transient(ctmc: &Ctmc, pi0: &[f64], targets: &[usize], t: f64) -> Result<f64> {
    crate::first_passage::hitting_probability_by(
        ctmc,
        pi0,
        targets,
        t,
        &transient::Options::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exponential(nu: f64) -> (Ctmc, Vec<f64>) {
        let c = Ctmc::from_transitions(2, [(0, 1, nu)]).unwrap();
        let pi0 = c.point_distribution(0);
        (c, pi0)
    }

    #[test]
    fn exponential_law() {
        let nu = 1.7;
        let (c, pi0) = exponential(nu);
        let ph = PhaseType::first_passage(&c, &pi0, &[1]).unwrap();
        assert_eq!(ph.n_phases(), 1);
        for t in [0.0, 0.3, 1.0, 4.0] {
            let want = 1.0 - (-nu * t).exp();
            assert!((ph.cdf(t).unwrap() - want).abs() < 1e-12);
            assert!((ph.density(t).unwrap() - nu * (-nu * t).exp()).abs() < 1e-10);
        }
        assert!((ph.total_mass().unwrap() - 1.0).abs() < 1e-12);
        assert!((ph.moment(1).unwrap() - 1.0 / nu).abs() < 1e-12);
        assert!((ph.moment(2).unwrap() - 2.0 / (nu * nu)).abs() < 1e-12);
    }

    #[test]
    fn erlang_law() {
        let nu = 2.0;
        let c = Ctmc::from_transitions(3, [(0, 1, nu), (1, 2, nu)]).unwrap();
        let pi0 = c.point_distribution(0);
        let ph = PhaseType::first_passage(&c, &pi0, &[2]).unwrap();
        let t = 1.1;
        let x = nu * t;
        let want_cdf = 1.0 - (1.0 + x) * (-x).exp();
        assert!((ph.cdf(t).unwrap() - want_cdf).abs() < 1e-11);
        let want_pdf = nu * x * (-x).exp();
        assert!((ph.density(t).unwrap() - want_pdf).abs() < 1e-10);
        assert!((ph.moment(1).unwrap() - 2.0 / nu).abs() < 1e-12);
        // Median of Erlang(2): solve numerically and cross-check.
        let med = ph.quantile(0.5, 1e-10).unwrap();
        assert!((ph.cdf(med).unwrap() - 0.5).abs() < 1e-8);
    }

    #[test]
    fn defective_law_reports_mass_and_refuses_moments() {
        // Competing risks: absorb in target 1 w.p. 0.25, elsewhere 0.75.
        let c = Ctmc::from_transitions(3, [(0, 1, 1.0), (0, 2, 3.0)]).unwrap();
        let pi0 = c.point_distribution(0);
        let ph = PhaseType::first_passage(&c, &pi0, &[1]).unwrap();
        assert!((ph.total_mass().unwrap() - 0.25).abs() < 1e-12);
        assert!(ph.cdf(1e6).unwrap() <= 0.25 + 1e-9);
        assert!(matches!(
            ph.moment(1),
            Err(MarkovError::AbsorptionStructure { .. })
        ));
        assert!(ph.quantile(0.5, 1e-9).is_err());
        assert!(ph.quantile(0.2, 1e-9).is_ok());
    }

    #[test]
    fn initial_mass_on_target_is_point_mass_at_zero() {
        let c = Ctmc::from_transitions(2, [(0, 1, 1.0)]).unwrap();
        let ph = PhaseType::first_passage(&c, &[0.4, 0.6], &[1]).unwrap();
        assert!((ph.cdf(0.0).unwrap() - 0.6).abs() < 1e-12);
        assert_eq!(ph.quantile(0.5, 1e-9).unwrap(), 0.0);
    }

    #[test]
    fn agrees_with_transient_solver() {
        // Richer chain: cycle with a side exit.
        let c = Ctmc::from_transitions(
            4,
            [
                (0, 1, 2.0),
                (1, 0, 1.0),
                (1, 2, 0.7),
                (2, 3, 1.3),
                (0, 3, 0.1),
            ],
        )
        .unwrap();
        let pi0 = c.point_distribution(0);
        let ph = PhaseType::first_passage(&c, &pi0, &[3]).unwrap();
        for t in [0.5, 2.0, 8.0] {
            let a = ph.cdf(t).unwrap();
            let b = cdf_via_transient(&c, &pi0, &[3], t).unwrap();
            assert!((a - b).abs() < 1e-9, "t={t}: {a} vs {b}");
        }
    }

    #[test]
    fn cdf_grid_is_monotone() {
        let (c, pi0) = exponential(1.0);
        let ph = PhaseType::first_passage(&c, &pi0, &[1]).unwrap();
        let grid = ph.cdf_grid(5.0, 20).unwrap();
        assert_eq!(grid.len(), 20);
        for w in grid.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (c, pi0) = exponential(1.0);
        assert!(PhaseType::first_passage(&c, &pi0, &[]).is_err());
        assert!(PhaseType::first_passage(&c, &pi0, &[9]).is_err());
        let ph = PhaseType::first_passage(&c, &pi0, &[1]).unwrap();
        assert!(ph.cdf(-1.0).is_err());
        assert!(ph.density(f64::NAN).is_err());
        assert!(ph.quantile(0.0, 1e-9).is_err());
        assert!(ph.quantile(1.0, 1e-9).is_err());
    }

    #[test]
    fn erlang_one_degenerates_to_exponential() {
        let nu = 2.3;
        let ph = PhaseType::erlang(1, nu).unwrap();
        assert_eq!(ph.n_phases(), 1);
        for t in [0.0, 0.4, 1.0, 3.7] {
            let want = 1.0 - (-nu * t).exp();
            assert!((ph.cdf(t).unwrap() - want).abs() < 1e-12, "t = {t}");
            let want_pdf = nu * (-nu * t).exp();
            assert!((ph.density(t).unwrap() - want_pdf).abs() < 1e-10, "t = {t}");
        }
        let direct = PhaseType::exponential(nu).unwrap();
        assert!((direct.moment(1).unwrap() - ph.moment(1).unwrap()).abs() < 1e-15);
        assert!((ph.moment(1).unwrap() - 1.0 / nu).abs() < 1e-12);
        assert!((ph.moment(2).unwrap() - 2.0 / (nu * nu)).abs() < 1e-12);
    }

    #[test]
    fn erlang_constructor_matches_first_passage_chain() {
        let nu = 2.0;
        let direct = PhaseType::erlang(2, nu).unwrap();
        let c = Ctmc::from_transitions(3, [(0, 1, nu), (1, 2, nu)]).unwrap();
        let pi0 = c.point_distribution(0);
        let via_chain = PhaseType::first_passage(&c, &pi0, &[2]).unwrap();
        for t in [0.1, 0.9, 2.5] {
            let a = direct.cdf(t).unwrap();
            let b = via_chain.cdf(t).unwrap();
            assert!((a - b).abs() < 1e-12, "t = {t}: {a} vs {b}");
        }
    }

    #[test]
    fn hyperexponential_weights_must_sum_to_one() {
        assert!(PhaseType::hyperexponential(&[]).is_err());
        assert!(PhaseType::hyperexponential(&[(0.4, 1.0), (0.4, 2.0)]).is_err());
        assert!(PhaseType::hyperexponential(&[(0.7, 1.0), (0.7, 2.0)]).is_err());
        assert!(PhaseType::hyperexponential(&[(0.5, -1.0), (0.5, 2.0)]).is_err());
        assert!(PhaseType::hyperexponential(&[(-0.2, 1.0), (1.2, 2.0)]).is_err());

        let ph = PhaseType::hyperexponential(&[(0.3, 1.0), (0.7, 4.0)]).unwrap();
        assert!((ph.initial().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((ph.total_mass().unwrap() - 1.0).abs() < 1e-9);
        for t in [0.2f64, 1.0, 3.0] {
            let want = 0.3 * (1.0 - (-t).exp()) + 0.7 * (1.0 - (-4.0 * t).exp());
            assert!((ph.cdf(t).unwrap() - want).abs() < 1e-11, "t = {t}");
        }
        let want_mean = 0.3 / 1.0 + 0.7 / 4.0;
        assert!((ph.moment(1).unwrap() - want_mean).abs() < 1e-12);
    }

    #[test]
    fn deterministic_approx_error_bound() {
        let mean = 2.0;
        // The Erlang-k approximation keeps the mean exact and has standard
        // deviation mean/sqrt(k); the CDF mass inside mean ± 3σ must grow
        // towards 1 as k grows.
        let mut last_spread = f64::INFINITY;
        for k in [4, 16, 64] {
            let ph = PhaseType::deterministic_approx(mean, k).unwrap();
            assert!((ph.moment(1).unwrap() - mean).abs() < 1e-10, "k = {k}");
            let var = ph.moment(2).unwrap() - mean * mean;
            let want_var = mean * mean / k as f64;
            assert!(
                (var - want_var).abs() < 1e-8,
                "k = {k}: {var} vs {want_var}"
            );
            // Interquantile spread shrinks like 1/sqrt(k).
            let spread = ph.quantile(0.9, 1e-10).unwrap() - ph.quantile(0.1, 1e-10).unwrap();
            assert!(spread < last_spread, "k = {k}");
            last_spread = spread;
            let sigma = (want_var).sqrt();
            let inside = ph.cdf(mean + 3.0 * sigma).unwrap()
                - ph.cdf((mean - 3.0 * sigma).max(0.0)).unwrap();
            // Chebyshev guarantees >= 1 - 1/9; the Erlang does far better.
            assert!(
                inside > 1.0 - 1.0 / 9.0,
                "k = {k}: mass inside 3σ = {inside}"
            );
        }
        assert!(last_spread < mean);
        assert!(PhaseType::deterministic_approx(0.0, 8).is_err());
        assert!(PhaseType::deterministic_approx(2.0, 0).is_err());
    }

    #[test]
    fn from_representation_rejects_bad_structure() {
        // Positive row sum.
        let s = DenseMatrix::from_vec(1, 1, vec![0.5]).unwrap();
        assert!(PhaseType::from_representation(vec![1.0], s).is_err());
        // Dimension mismatch.
        let s = DenseMatrix::zeros(2, 2);
        assert!(PhaseType::from_representation(vec![1.0], s).is_err());
        // Negative off-diagonal.
        let s = DenseMatrix::from_vec(2, 2, vec![-1.0, -0.5, 0.0, -1.0]).unwrap();
        assert!(PhaseType::from_representation(vec![0.5, 0.5], s).is_err());
        // Super-stochastic initial vector.
        let s = DenseMatrix::from_vec(1, 1, vec![-1.0]).unwrap();
        assert!(PhaseType::from_representation(vec![1.5], s).is_err());
        // Sub-stochastic initial vector => point mass at zero.
        let s = DenseMatrix::from_vec(1, 1, vec![-1.0]).unwrap();
        let ph = PhaseType::from_representation(vec![0.75], s).unwrap();
        assert!((ph.cdf(0.0).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(ph.exit_rates(), &[1.0]);
        assert_eq!(ph.sub_generator()[(0, 0)], -1.0);
    }
}
