//! Continuous-time Markov chains.

use sparsela::{CooMatrix, CsrMatrix};

use crate::{Dtmc, MarkovError, Result};

/// A continuous-time Markov chain, stored as its infinitesimal generator `Q`
/// in sparse form (off-diagonal entries are rates, diagonal entries are the
/// negated exit rates).
///
/// Build with [`Ctmc::from_transitions`]; parallel transitions between the
/// same pair of states are summed.
///
/// # Example
///
/// ```
/// use markov::Ctmc;
///
/// # fn main() -> Result<(), markov::MarkovError> {
/// let ctmc = Ctmc::from_transitions(3, [
///     (0, 1, 2.0),
///     (1, 2, 1.0),
///     (2, 0, 0.5),
/// ])?;
/// assert_eq!(ctmc.n_states(), 3);
/// assert_eq!(ctmc.exit_rate(0), 2.0);
/// assert_eq!(ctmc.generator().get(0, 0), -2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    n: usize,
    /// Full generator including the diagonal.
    q: CsrMatrix,
    /// Exit rate per state (`−q_ii`), cached.
    exit_rates: Vec<f64>,
}

impl Ctmc {
    /// Builds a chain over states `0..n` from `(from, to, rate)` transition
    /// triplets. Self-loops are rejected (they are meaningless in a CTMC);
    /// duplicate pairs are summed.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidModel`] when a state index is out of
    /// range, a rate is negative/non-finite, or a self-loop is supplied.
    pub fn from_transitions<I>(n: usize, transitions: I) -> Result<Self>
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut coo = CooMatrix::new(n, n);
        let mut exit = vec![0.0f64; n];
        for (from, to, rate) in transitions {
            if from >= n || to >= n {
                return Err(MarkovError::InvalidModel {
                    context: format!("transition ({from} -> {to}) outside state space 0..{n}"),
                });
            }
            if !rate.is_finite() || rate < 0.0 {
                return Err(MarkovError::InvalidModel {
                    context: format!("transition ({from} -> {to}) has invalid rate {rate}"),
                });
            }
            if from == to {
                return Err(MarkovError::InvalidModel {
                    context: format!("self-loop on state {from} is not allowed in a CTMC"),
                });
            }
            if rate > 0.0 {
                coo.push(from, to, rate);
                exit[from] += rate;
            }
        }
        for (s, &e) in exit.iter().enumerate() {
            if e > 0.0 {
                coo.push(s, s, -e);
            }
        }
        Ok(Ctmc {
            n,
            q: coo.to_csr(),
            exit_rates: exit,
        })
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// The infinitesimal generator `Q` (diagonal included).
    pub fn generator(&self) -> &CsrMatrix {
        &self.q
    }

    /// The exit rate of state `s` (`−q_ss`).
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.n_states()`.
    pub fn exit_rate(&self, s: usize) -> f64 {
        self.exit_rates[s]
    }

    /// Iterates over the off-diagonal transitions `(from, to, rate)`.
    pub fn transitions(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.q.iter().filter(|&(r, c, _)| r != c)
    }

    /// The largest exit rate; any `Λ ≥` this value is a valid uniformization
    /// rate.
    pub fn max_exit_rate(&self) -> f64 {
        self.exit_rates.iter().fold(0.0, |m, &v| m.max(v))
    }

    /// States with no outgoing transitions (absorbing).
    pub fn absorbing_states(&self) -> Vec<usize> {
        self.exit_rates
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e == 0.0)
            .map(|(s, _)| s)
            .collect()
    }

    /// Builds the uniformized DTMC `P = I + Q/Λ` for a uniformization rate
    /// `Λ`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidModel`] when `Λ` is smaller than the
    /// maximum exit rate (which would produce negative probabilities) or not
    /// positive.
    pub fn uniformized(&self, lambda: f64) -> Result<Dtmc> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(MarkovError::InvalidModel {
                context: format!("uniformization rate must be positive, got {lambda}"),
            });
        }
        let max_exit = self.max_exit_rate();
        if lambda < max_exit * (1.0 - 1e-12) {
            return Err(MarkovError::InvalidModel {
                context: format!("uniformization rate {lambda} below maximum exit rate {max_exit}"),
            });
        }
        let mut coo = CooMatrix::new(self.n, self.n);
        for (r, c, v) in self.q.iter() {
            if r != c {
                coo.push(r, c, v / lambda);
            }
        }
        for s in 0..self.n {
            let stay = 1.0 - self.exit_rates[s] / lambda;
            // Clamp tiny negative rounding noise.
            coo.push(s, s, stay.max(0.0));
        }
        Dtmc::from_matrix(coo.to_csr())
    }

    /// The embedded jump chain: `P[i → j] = q_ij / exit(i)` for non-absorbing
    /// states; absorbing states get a self-loop.
    ///
    /// The jump chain, together with the exit rates, fully determines the
    /// CTMC; it is the object iterative steady-state methods and simulation
    /// both walk.
    ///
    /// # Errors
    ///
    /// Cannot fail for a validly constructed chain; solver errors are
    /// propagated defensively.
    pub fn embedded_dtmc(&self) -> Result<Dtmc> {
        let mut rows = Vec::new();
        for (from, to, rate) in self.transitions() {
            rows.push((from, to, rate / self.exit_rates[from]));
        }
        Dtmc::from_rows(self.n, rows)
    }

    /// Validates that `pi` is a probability distribution over this chain's
    /// states.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidDistribution`] on length mismatch,
    /// negative entries, non-finite entries, or a total differing from 1 by
    /// more than `1e-9`.
    pub fn check_distribution(&self, pi: &[f64]) -> Result<()> {
        if pi.len() != self.n {
            return Err(MarkovError::InvalidDistribution {
                context: format!(
                    "distribution length {} does not match {} states",
                    pi.len(),
                    self.n
                ),
            });
        }
        if !sparsela::vector::all_finite(pi) {
            return Err(MarkovError::InvalidDistribution {
                context: "distribution contains non-finite entries".to_string(),
            });
        }
        if pi.iter().any(|&p| p < -1e-12) {
            return Err(MarkovError::InvalidDistribution {
                context: "distribution contains negative entries".to_string(),
            });
        }
        let total: f64 = pi.iter().sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(MarkovError::InvalidDistribution {
                context: format!("distribution sums to {total}, expected 1"),
            });
        }
        Ok(())
    }

    /// The point distribution concentrated on state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.n_states()`.
    pub fn point_distribution(&self, s: usize) -> Vec<f64> {
        assert!(s < self.n, "state {s} out of range");
        let mut pi = vec![0.0; self.n];
        pi[s] = 1.0;
        pi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_rows_sum_to_zero() {
        let c = Ctmc::from_transitions(3, [(0, 1, 2.0), (0, 2, 3.0), (1, 0, 1.0)]).unwrap();
        for s in c.generator().row_sums() {
            assert!(s.abs() < 1e-12);
        }
        assert_eq!(c.exit_rate(0), 5.0);
        assert_eq!(c.exit_rate(2), 0.0);
    }

    #[test]
    fn duplicate_transitions_are_summed() {
        let c = Ctmc::from_transitions(2, [(0, 1, 1.0), (0, 1, 2.0)]).unwrap();
        assert_eq!(c.exit_rate(0), 3.0);
        assert_eq!(c.generator().get(0, 1), 3.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(Ctmc::from_transitions(2, [(0, 2, 1.0)]).is_err());
        assert!(Ctmc::from_transitions(2, [(0, 1, -1.0)]).is_err());
        assert!(Ctmc::from_transitions(2, [(0, 1, f64::NAN)]).is_err());
        assert!(Ctmc::from_transitions(2, [(0, 0, 1.0)]).is_err());
    }

    #[test]
    fn zero_rate_transitions_dropped() {
        let c = Ctmc::from_transitions(2, [(0, 1, 0.0)]).unwrap();
        assert_eq!(c.absorbing_states(), vec![0, 1]);
        assert_eq!(c.transitions().count(), 0);
    }

    #[test]
    fn absorbing_states_found() {
        let c = Ctmc::from_transitions(3, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        assert_eq!(c.absorbing_states(), vec![2]);
    }

    #[test]
    fn uniformized_is_stochastic() {
        let c = Ctmc::from_transitions(3, [(0, 1, 2.0), (1, 2, 4.0), (2, 0, 1.0)]).unwrap();
        let lambda = c.max_exit_rate() * 1.05;
        let p = c.uniformized(lambda).unwrap();
        for s in p.matrix().row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Self-loop probability on the fastest state.
        assert!((p.matrix().get(1, 1) - (1.0 - 4.0 / lambda)).abs() < 1e-12);
    }

    #[test]
    fn uniformized_rejects_small_rate() {
        let c = Ctmc::from_transitions(2, [(0, 1, 10.0)]).unwrap();
        assert!(c.uniformized(5.0).is_err());
        assert!(c.uniformized(0.0).is_err());
        assert!(c.uniformized(10.0).is_ok());
    }

    #[test]
    fn check_distribution_validates() {
        let c = Ctmc::from_transitions(2, [(0, 1, 1.0)]).unwrap();
        assert!(c.check_distribution(&[1.0, 0.0]).is_ok());
        assert!(c.check_distribution(&[0.5, 0.5]).is_ok());
        assert!(c.check_distribution(&[1.0]).is_err());
        assert!(c.check_distribution(&[2.0, -1.0]).is_err());
        assert!(c.check_distribution(&[0.7, 0.7]).is_err());
        assert!(c.check_distribution(&[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn point_distribution_is_valid() {
        let c = Ctmc::from_transitions(3, [(0, 1, 1.0)]).unwrap();
        let pi = c.point_distribution(1);
        assert_eq!(pi, vec![0.0, 1.0, 0.0]);
        c.check_distribution(&pi).unwrap();
    }

    #[test]
    fn embedded_chain_jump_probabilities() {
        let c = Ctmc::from_transitions(3, [(0, 1, 1.0), (0, 2, 3.0), (1, 0, 5.0)]).unwrap();
        let jump = c.embedded_dtmc().unwrap();
        assert!((jump.matrix().get(0, 1) - 0.25).abs() < 1e-12);
        assert!((jump.matrix().get(0, 2) - 0.75).abs() < 1e-12);
        assert_eq!(jump.matrix().get(1, 0), 1.0);
        // Absorbing state 2 becomes a self-loop.
        assert_eq!(jump.matrix().get(2, 2), 1.0);
    }

    #[test]
    fn embedded_chain_steady_state_relates_to_ctmc() {
        // π_ctmc(s) ∝ π_jump(s)/exit(s) for positive-recurrent chains.
        let c = Ctmc::from_transitions(2, [(0, 1, 2.0), (1, 0, 3.0)]).unwrap();
        let jump = c.embedded_dtmc().unwrap();
        let pj = jump.steady_state(100_000, 1e-13).unwrap();
        let mut weighted: Vec<f64> = (0..2).map(|s| pj[s] / c.exit_rate(s)).collect();
        sparsela::vector::normalize_l1(&mut weighted);
        let pc = crate::steady::steady_state(&c, &Default::default()).unwrap();
        for (a, b) in weighted.iter().zip(&pc) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn transitions_iterator_excludes_diagonal() {
        let c = Ctmc::from_transitions(2, [(0, 1, 2.0), (1, 0, 3.0)]).unwrap();
        let ts: Vec<_> = c.transitions().collect();
        assert_eq!(ts, vec![(0, 1, 2.0), (1, 0, 3.0)]);
    }
}
