//! Poisson probability windows for uniformization (Fox–Glynn).
//!
//! Uniformization expresses the transient distribution of a CTMC as a
//! Poisson-weighted sum of DTMC powers:
//!
//! ```text
//! π(t) = Σ_{k≥0}  e^{−Λt} (Λt)^k / k!  ·  π(0) P^k
//! ```
//!
//! For large `Λt` almost all Poisson mass lies in a window of width
//! `O(√(Λt))` around the mean, and naive evaluation of `e^{−Λt}(Λt)^k/k!`
//! underflows. Fox & Glynn (CACM 1988) compute a truncated, renormalized
//! window. We implement the numerically robust *normalized recurrence*
//! formulation: anchor the recurrence at the mode (where the pmf is
//! maximal), recurse outward until terms fall below a relative threshold,
//! and normalize the window to sum to the captured mass.

use crate::{MarkovError, Result};

/// A truncated Poisson probability window.
///
/// `weights[i]` approximates `P[N = left + i]` for `N ~ Poisson(lambda)`;
/// the window `[left, right]` captures at least `1 − 2·epsilon` of the mass,
/// and the weights are normalized so that they sum to exactly the captured
/// total mass estimate (≤ 1, numerically ≈ 1).
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonWindow {
    /// First index of the window (inclusive).
    pub left: usize,
    /// Last index of the window (inclusive).
    pub right: usize,
    /// Probabilities for indices `left..=right`.
    pub weights: Vec<f64>,
}

impl PoissonWindow {
    /// Computes the window for `Poisson(lambda)` with per-tail truncation
    /// error at most `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidModel`] when `lambda` is negative or not
    /// finite, or when `epsilon` is outside `(0, 1)`.
    pub fn compute(lambda: f64, epsilon: f64) -> Result<Self> {
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(MarkovError::InvalidModel {
                context: format!("Poisson rate must be finite and >= 0, got {lambda}"),
            });
        }
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(MarkovError::InvalidModel {
                context: format!("truncation epsilon must be in (0, 1), got {epsilon}"),
            });
        }
        if lambda == 0.0 {
            return Ok(PoissonWindow {
                left: 0,
                right: 0,
                weights: vec![1.0],
            });
        }

        let mode = lambda.floor() as usize;
        // Unnormalized weights anchored at w[mode] = 1; the true pmf is
        // w_k · pmf(mode), but we only need ratios because we renormalize.
        //
        // Window size heuristic: k standard deviations where the Gaussian
        // tail bound guarantees the requested epsilon; widen generously,
        // extra terms are cheap to store.
        let sigma = lambda.sqrt();
        let half_width = ((2.0 * (1.0 / epsilon).ln()).sqrt() * sigma).ceil() as usize + 10;

        let left_guess = mode.saturating_sub(half_width);
        let right_guess = mode + half_width;

        // Downward recurrence: w_{k-1} = w_k * k / lambda.
        let mut down: Vec<f64> = Vec::new();
        {
            let mut w = 1.0f64;
            let mut k = mode;
            while k > left_guess {
                w *= k as f64 / lambda;
                if w < f64::MIN_POSITIVE * 1e10 {
                    break;
                }
                down.push(w);
                k -= 1;
            }
        }
        // Upward recurrence: w_{k+1} = w_k * lambda / (k+1).
        let mut up: Vec<f64> = Vec::new();
        {
            let mut w = 1.0f64;
            let mut k = mode;
            while k < right_guess {
                w *= lambda / (k + 1) as f64;
                if w < f64::MIN_POSITIVE * 1e10 {
                    break;
                }
                up.push(w);
                k += 1;
            }
        }

        let left = mode - down.len();
        let right = mode + up.len();
        let mut weights: Vec<f64> = Vec::with_capacity(right - left + 1);
        weights.extend(down.iter().rev());
        weights.push(1.0);
        weights.extend(up.iter());

        // Trim relative-negligible tails, then normalize. We keep terms down
        // to epsilon/width relative to the total so the truncation error per
        // tail stays below epsilon.
        let total: f64 = weights.iter().sum();
        let cutoff = total * epsilon / (weights.len() as f64);
        let mut lo = 0usize;
        while lo + 1 < weights.len() && weights[lo] < cutoff {
            lo += 1;
        }
        let mut hi = weights.len() - 1;
        while hi > lo && weights[hi] < cutoff {
            hi -= 1;
        }
        let trimmed: Vec<f64> = weights[lo..=hi].to_vec();
        let left = left + lo;
        let right = left + trimmed.len() - 1;

        let trimmed_total: f64 = trimmed.iter().sum();
        let norm = 1.0 / trimmed_total;
        let weights: Vec<f64> = trimmed.iter().map(|w| w * norm).collect();

        if telemetry::enabled() {
            // The unnormalized weights are ratios anchored at the mode
            // (w[mode] = 1), so the captured probability mass is
            // trimmed_total · pmf(mode) and the truncated remainder follows.
            let captured = trimmed_total * poisson_pmf(lambda, mode);
            telemetry::counter("fox_glynn.windows", 1);
            telemetry::observe("fox_glynn.window_len", weights.len() as f64);
            telemetry::observe("fox_glynn.truncated_mass", (1.0 - captured).max(0.0));
            telemetry::gauge("fox_glynn.last_lambda", lambda);
            telemetry::gauge("fox_glynn.last_window_len", weights.len() as f64);
        }

        Ok(PoissonWindow {
            left,
            right,
            weights,
        })
    }

    /// Number of terms in the window.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` when the window is empty (cannot happen for valid inputs).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Total captured probability mass (after normalization this is 1 up to
    /// rounding).
    pub fn total_mass(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// The weight for count `k`, zero outside the window.
    pub fn weight(&self, k: usize) -> f64 {
        if k < self.left || k > self.right {
            0.0
        } else {
            self.weights[k - self.left]
        }
    }

    /// Cumulative right-tail sums: `tail(k) = Σ_{j>k} weight(j)`, used by the
    /// accumulated-reward uniformization formula.
    pub fn right_tails(&self) -> Vec<f64> {
        // tails[i] = sum of weights strictly after index i.
        let mut tails = vec![0.0; self.weights.len()];
        let mut acc = 0.0;
        for i in (0..self.weights.len()).rev() {
            tails[i] = acc;
            acc += self.weights[i];
        }
        tails
    }
}

/// Exact Poisson pmf by direct computation in log space; reference for tests
/// and for small rates.
pub fn poisson_pmf(lambda: f64, k: usize) -> f64 {
    if lambda == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    let kf = k as f64;
    let log_p = -lambda + kf * lambda.ln() - ln_factorial(k);
    log_p.exp()
}

/// `ln(k!)` via Stirling's series for large `k`, exact accumulation for
/// small `k`.
pub fn ln_factorial(k: usize) -> f64 {
    if k < 2 {
        return 0.0;
    }
    if k < 256 {
        return (2..=k).map(|i| (i as f64).ln()).sum();
    }
    let x = (k + 1) as f64;
    // Stirling series for ln Γ(x).
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    (x - 0.5) * x.ln() - x
        + 0.5 * (2.0 * std::f64::consts::PI).ln()
        + inv / 12.0 * (1.0 - inv2 / 30.0 * (1.0 - inv2 / 3.5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_lambda_is_point_mass() {
        let w = PoissonWindow::compute(0.0, 1e-10).unwrap();
        assert_eq!(w.left, 0);
        assert_eq!(w.right, 0);
        assert_eq!(w.weights, vec![1.0]);
    }

    #[test]
    fn small_lambda_matches_exact_pmf() {
        let lambda = 3.7;
        let w = PoissonWindow::compute(lambda, 1e-12).unwrap();
        for k in w.left..=w.right {
            let exact = poisson_pmf(lambda, k);
            assert!(
                (w.weight(k) - exact).abs() < 1e-10,
                "k={k}: window {} vs exact {exact}",
                w.weight(k)
            );
        }
    }

    #[test]
    fn large_lambda_does_not_underflow() {
        let lambda = 2.0e7;
        let w = PoissonWindow::compute(lambda, 1e-10).unwrap();
        assert!((w.total_mass() - 1.0).abs() < 1e-9);
        // Window is centred on the mode and much narrower than [0, 2λ].
        assert!(w.left > 1_000_000);
        assert!((w.len() as f64) < 100.0 * lambda.sqrt());
        // Mode weight should be ≈ 1/√(2πλ).
        let mode = lambda as usize;
        let expect = 1.0 / (2.0 * std::f64::consts::PI * lambda).sqrt();
        assert!((w.weight(mode) - expect).abs() / expect < 1e-2);
    }

    #[test]
    fn weights_sum_to_one_after_normalization() {
        for &lambda in &[0.5, 1.0, 10.0, 123.456, 9999.0] {
            let w = PoissonWindow::compute(lambda, 1e-11).unwrap();
            assert!((w.total_mass() - 1.0).abs() < 1e-12, "lambda={lambda}");
        }
    }

    #[test]
    fn mean_is_recovered() {
        let lambda = 500.0;
        let w = PoissonWindow::compute(lambda, 1e-13).unwrap();
        let mean: f64 = (w.left..=w.right).map(|k| k as f64 * w.weight(k)).sum();
        assert!((mean - lambda).abs() < 1e-6 * lambda);
    }

    #[test]
    fn right_tails_are_decreasing_partial_sums() {
        let w = PoissonWindow::compute(20.0, 1e-12).unwrap();
        let tails = w.right_tails();
        assert_eq!(tails.len(), w.len());
        assert!(tails[0] <= 1.0);
        assert_eq!(*tails.last().unwrap(), 0.0);
        for i in 1..tails.len() {
            assert!(tails[i] <= tails[i - 1] + 1e-15);
        }
        // tails[0] = 1 - weight(left).
        assert!((tails[0] - (1.0 - w.weights[0])).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(PoissonWindow::compute(-1.0, 1e-9).is_err());
        assert!(PoissonWindow::compute(f64::NAN, 1e-9).is_err());
        assert!(PoissonWindow::compute(1.0, 0.0).is_err());
        assert!(PoissonWindow::compute(1.0, 1.5).is_err());
    }

    #[test]
    fn ln_factorial_matches_direct() {
        // Check the Stirling branch against the exact accumulation branch.
        let exact: f64 = (2..=300usize).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(300) - exact).abs() < 1e-8);
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn weight_outside_window_is_zero() {
        let w = PoissonWindow::compute(100.0, 1e-10).unwrap();
        assert_eq!(w.weight(0), 0.0);
        assert_eq!(w.weight(10_000), 0.0);
    }

    proptest! {
        #[test]
        fn window_mass_and_mean(lambda in 0.1..5000.0f64) {
            let w = PoissonWindow::compute(lambda, 1e-10).unwrap();
            prop_assert!((w.total_mass() - 1.0).abs() < 1e-9);
            let mean: f64 = (w.left..=w.right).map(|k| k as f64 * w.weight(k)).sum();
            prop_assert!((mean - lambda).abs() < 1e-4 * lambda.max(1.0));
        }

        #[test]
        fn window_matches_exact_for_moderate_lambda(lambda in 0.1..200.0f64) {
            let w = PoissonWindow::compute(lambda, 1e-12).unwrap();
            let mode = lambda.floor() as usize;
            let exact = poisson_pmf(lambda, mode);
            prop_assert!((w.weight(mode) - exact).abs() < 1e-8);
        }
    }
}
